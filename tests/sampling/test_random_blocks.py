"""Tests for Blelloch block random sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sampling.random_blocks import block_random_sample


class TestBlockRandomSample:
    def test_one_per_block(self, rng):
        keys = np.arange(100)
        out = block_random_sample(keys, 10, rng)
        assert len(out) == 10
        # Sample t must come from block t: [10t, 10(t+1)).
        blocks = out // 10
        assert np.array_equal(blocks, np.arange(10))

    def test_sorted_output(self, rng):
        keys = np.arange(1000)
        out = block_random_sample(keys, 37, rng)
        assert np.all(np.diff(out) > 0)

    def test_s_exceeds_n(self, rng):
        keys = np.arange(5)
        out = block_random_sample(keys, 50, rng)
        assert np.array_equal(out, keys)

    def test_empty(self, rng):
        assert len(block_random_sample(np.empty(0, np.int64), 4, rng)) == 0

    def test_invalid_s(self, rng):
        with pytest.raises(ConfigError):
            block_random_sample(np.arange(10), 0, rng)

    def test_randomness_varies(self):
        keys = np.arange(10_000)
        a = block_random_sample(keys, 100, np.random.default_rng(1))
        b = block_random_sample(keys, 100, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_stratification_covers_range(self, rng):
        """The defining property vs plain sampling: every n/s block is hit."""
        keys = np.arange(10_000)
        out = block_random_sample(keys, 100, rng)
        blocks_hit = np.unique(out // 100)
        assert len(blocks_hit) == 100

    @given(st.integers(1, 300), st.integers(1, 40))
    @settings(max_examples=50)
    def test_size_invariant(self, n, s):
        rng = np.random.default_rng(n * 41 + s)
        out = block_random_sample(np.arange(n), s, rng)
        assert len(out) == min(s, n)
