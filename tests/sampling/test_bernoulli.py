"""Tests for Bernoulli sampling (Sampling Method 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.bernoulli import (
    bernoulli_sample,
    bernoulli_sample_in_intervals,
    expected_total_sample,
)
from repro.theory.bounds import binomial_upper_quantile


class TestBernoulliSample:
    def test_prob_zero_empty(self, rng):
        keys = np.arange(100)
        assert len(bernoulli_sample(keys, 0.0, rng)) == 0

    def test_prob_one_everything(self, rng):
        keys = np.arange(100)
        out = bernoulli_sample(keys, 1.0, rng)
        assert np.array_equal(out, keys)

    def test_prob_clipped(self, rng):
        keys = np.arange(10)
        assert len(bernoulli_sample(keys, 5.0, rng)) == 10
        assert len(bernoulli_sample(keys, -1.0, rng)) == 0

    def test_empty_input(self, rng):
        keys = np.empty(0, dtype=np.int64)
        assert len(bernoulli_sample(keys, 0.5, rng)) == 0

    def test_subset_without_duplicates(self, rng):
        keys = np.arange(1000)
        out = bernoulli_sample(keys, 0.3, rng)
        assert len(np.unique(out)) == len(out)
        assert np.all(np.isin(out, keys))

    def test_preserves_relative_order(self, rng):
        keys = np.arange(1000)  # sorted input -> sample must be sorted
        out = bernoulli_sample(keys, 0.2, rng)
        assert np.all(np.diff(out) > 0)

    def test_sample_size_concentrates(self):
        # Statistically sound bound: P[fail] < 1e-9 per the Chernoff quantile.
        rng = np.random.default_rng(0)
        n, prob = 100_000, 0.01
        hi = binomial_upper_quantile(n, prob, 1e-9)
        out = bernoulli_sample(np.arange(n), prob, rng)
        assert len(out) <= hi
        assert len(out) >= 2 * n * prob - hi  # symmetric-ish lower guard

    def test_deterministic_under_seed(self):
        keys = np.arange(500)
        a = bernoulli_sample(keys, 0.1, np.random.default_rng(3))
        b = bernoulli_sample(keys, 0.1, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestIntervalSampling:
    def test_no_intervals(self, rng):
        out = bernoulli_sample_in_intervals(np.arange(100), [], 1.0, rng)
        assert len(out) == 0

    def test_closed_interval_includes_endpoints(self, rng):
        keys = np.arange(100)
        out = bernoulli_sample_in_intervals(keys, [(10, 20)], 1.0, rng)
        assert np.array_equal(out, np.arange(10, 21))

    def test_outside_interval_never_sampled(self, rng):
        keys = np.arange(1000)
        out = bernoulli_sample_in_intervals(keys, [(100, 200)], 0.5, rng)
        assert np.all((out >= 100) & (out <= 200))

    def test_multiple_disjoint_intervals(self, rng):
        keys = np.arange(1000)
        out = bernoulli_sample_in_intervals(
            keys, [(0, 49), (500, 549)], 1.0, rng
        )
        assert len(out) == 100
        assert np.all((out <= 49) | ((out >= 500) & (out <= 549)))

    def test_interval_outside_data(self, rng):
        keys = np.arange(100)
        out = bernoulli_sample_in_intervals(keys, [(500, 600)], 1.0, rng)
        assert len(out) == 0

    def test_sentinel_extremes_cover_everything(self, rng):
        keys = np.arange(100, dtype=np.int64)
        info = np.iinfo(np.int64)
        out = bernoulli_sample_in_intervals(
            keys, [(info.min, info.max)], 1.0, rng
        )
        assert len(out) == 100

    def test_unsigned_zero_lo_sentinel(self, rng):
        # Closed semantics: a uint key equal to 0 must still be sampleable.
        keys = np.arange(10, dtype=np.uint64)
        out = bernoulli_sample_in_intervals(
            keys, [(np.uint64(0), np.uint64(2**63))], 1.0, rng
        )
        assert len(out) == 10

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=20)
    def test_output_always_subset(self, prob):
        rng = np.random.default_rng(1)
        keys = np.arange(200)
        out = bernoulli_sample_in_intervals(keys, [(50, 150)], prob, rng)
        assert np.all(np.isin(out, np.arange(50, 151)))


def test_expected_total_sample():
    assert expected_total_sample(1000, 0.1) == pytest.approx(100.0)
    assert expected_total_sample(1000, 2.0) == pytest.approx(1000.0)
    assert expected_total_sample(0, 0.5) == 0.0
