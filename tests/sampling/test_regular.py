"""Tests for regular sampling (evenly spaced block maxima)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sampling.regular import regular_sample


class TestRegularSample:
    def test_exact_division(self):
        keys = np.arange(100)
        out = regular_sample(keys, 4)
        assert np.array_equal(out, [24, 49, 74, 99])

    def test_last_element_always_included(self):
        for n, s in [(100, 7), (13, 3), (50, 49)]:
            keys = np.arange(n)
            assert regular_sample(keys, s)[-1] == n - 1

    def test_s_one(self):
        out = regular_sample(np.arange(10), 1)
        assert np.array_equal(out, [9])

    def test_s_exceeds_n(self):
        keys = np.arange(5)
        out = regular_sample(keys, 100)
        assert np.array_equal(out, keys)

    def test_empty(self):
        assert len(regular_sample(np.empty(0, np.int64), 3)) == 0

    def test_invalid_s(self):
        with pytest.raises(ConfigError):
            regular_sample(np.arange(10), 0)

    def test_deterministic(self):
        keys = np.arange(1000)
        assert np.array_equal(regular_sample(keys, 17), regular_sample(keys, 17))

    @given(st.integers(1, 200), st.integers(1, 50))
    @settings(max_examples=60)
    def test_sample_size_and_sortedness(self, n, s):
        keys = np.arange(n)
        out = regular_sample(keys, s)
        assert len(out) == min(s, n)
        assert np.all(np.diff(out) > 0)

    @given(st.integers(10, 500), st.integers(1, 20))
    @settings(max_examples=60)
    def test_block_rank_bound(self, n, s):
        """Theorem 4.1.2's ingredient: consecutive samples are ≤ ⌈n/s⌉ apart."""
        if s >= n:
            return
        keys = np.arange(n)
        out = regular_sample(keys, s)
        gaps = np.diff(np.concatenate(([-1], out)))
        assert gaps.max() <= int(np.ceil(n / s))
