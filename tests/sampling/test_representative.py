"""Tests for representative samples and the §3.4 rank oracle."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sampling.representative import (
    RepresentativeSample,
    representative_sample_size,
)


class TestSampleSize:
    def test_formula(self):
        import math

        p, eps = 1024, 0.05
        expected = math.ceil(math.sqrt(2 * p * math.log(p)) / eps)
        assert representative_sample_size(p, eps) == expected

    def test_grows_with_p_and_shrinks_with_eps(self):
        assert representative_sample_size(4096, 0.05) > representative_sample_size(
            256, 0.05
        )
        assert representative_sample_size(256, 0.01) > representative_sample_size(
            256, 0.1
        )

    def test_invalid(self):
        with pytest.raises(ConfigError):
            representative_sample_size(0, 0.05)
        with pytest.raises(ConfigError):
            representative_sample_size(16, 0.0)


class TestRepresentativeSample:
    def make(self, n=10_000, s=100, seed=0):
        keys = np.sort(np.random.default_rng(seed).integers(0, 10**9, n))
        return keys, RepresentativeSample(keys, s, np.random.default_rng(seed + 1))

    def test_resident_size(self):
        keys, rep = self.make()
        assert rep.s == 100
        assert rep.keys_per_sample == pytest.approx(100.0)
        assert rep.nbytes == rep.sample.nbytes

    def test_estimate_bounds_by_one_block(self):
        """The Theorem 3.4.1 ingredient: per-processor error ≤ one block."""
        keys, rep = self.make()
        queries = np.sort(np.random.default_rng(5).integers(0, 10**9, 200))
        estimates = rep.local_rank_estimate(queries)
        truth = np.searchsorted(keys, queries, side="right")
        assert np.max(np.abs(estimates - truth)) <= rep.keys_per_sample

    def test_estimate_monotone(self):
        keys, rep = self.make()
        queries = np.sort(np.random.default_rng(6).integers(0, 10**9, 500))
        estimates = rep.local_rank_estimate(queries)
        assert np.all(np.diff(estimates) >= 0)

    def test_extreme_queries(self):
        keys, rep = self.make()
        assert rep.local_rank_estimate(np.array([-1]))[0] == 0.0
        assert rep.local_rank_estimate(np.array([2**62]))[0] == pytest.approx(
            len(keys)
        )

    def test_exact_bounds_contain_truth(self):
        keys, rep = self.make(n=5000, s=50)
        queries = np.sort(np.random.default_rng(7).integers(0, 10**9, 100))
        lo, hi = rep.local_rank_exact_bounds(queries)
        truth = np.searchsorted(keys, queries, side="right")
        assert np.all(lo <= truth + 1e-9)
        assert np.all(truth <= hi + 1e-9)

    def test_empty_input(self):
        rep = RepresentativeSample(
            np.empty(0, dtype=np.int64), 10, np.random.default_rng(0)
        )
        assert rep.s == 0
        assert np.array_equal(rep.local_rank_estimate(np.array([5])), [0.0])

    def test_unbiasedness_statistical(self):
        """Mean estimate over many resamples approaches the true rank."""
        keys = np.sort(np.random.default_rng(1).integers(0, 10**6, 2000))
        q = np.array([500_000])
        truth = float(np.searchsorted(keys, q, side="right")[0])
        estimates = [
            RepresentativeSample(keys, 40, np.random.default_rng(t))
            .local_rank_estimate(q)[0]
            for t in range(300)
        ]
        # Std of the mean ~ block/sqrt(300) = 50/17 ≈ 3; allow 6 sigma.
        assert abs(np.mean(estimates) - truth) < 20.0
