"""Property-based tests: every sorter satisfies the §2.1 contract.

Hypothesis generates adversarial shard layouts (uneven sizes, duplicates,
extreme values, empty ranks) and we assert the three problem-statement
predicates on the output.  These are the tests most likely to find
rendezvous bugs, boundary-condition bugs in bucketing, and off-by-ones in
splitter selection.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import parallel_sort
from repro.core.config import HSSConfig
from repro.core.api import hss_sort
from repro.metrics import verify_sorted_output

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def shard_layouts(draw, min_ranks=2, max_ranks=8, max_keys=300, allow_empty=True):
    """Random per-rank int64 arrays with adversarial values."""
    p = draw(st.integers(min_ranks, max_ranks))
    sizes = draw(
        st.lists(
            st.integers(0 if allow_empty else 1, max_keys),
            min_size=p,
            max_size=p,
        )
    )
    if sum(sizes) < p:  # need at least one key per part for splitters
        sizes = [s + 1 for s in sizes]
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    style = draw(st.sampled_from(["uniform", "narrow", "clustered", "sorted"]))
    shards = []
    for n in sizes:
        if style == "uniform":
            keys = rng.integers(-(2**60), 2**60, n)
        elif style == "narrow":
            keys = rng.integers(0, 50, n)
        elif style == "clustered":
            centers = rng.integers(-(2**50), 2**50, 3)
            keys = rng.choice(centers, n) + rng.integers(0, 1000, n)
        else:
            keys = np.sort(rng.integers(0, 2**40, n))
        shards.append(keys.astype(np.int64))
    return shards


class TestHSSContract:
    @given(shard_layouts())
    @settings(**COMMON)
    def test_sorted_permutation_balanced(self, shards):
        cfg = HSSConfig(eps=0.25, seed=7, tag_duplicates=True)
        run = hss_sort(shards, config=cfg, verify=False)
        verify_sorted_output(shards, run.shards, 0.25)

    @given(shard_layouts(), st.integers(0, 3))
    @settings(**COMMON)
    def test_seed_only_changes_internals_not_contract(self, shards, seed):
        cfg = HSSConfig(eps=0.25, seed=seed, tag_duplicates=True)
        run = hss_sort(shards, config=cfg, verify=False)
        verify_sorted_output(shards, run.shards, 0.25)


class TestBaselineContracts:
    @given(shard_layouts())
    @settings(**COMMON)
    def test_sample_regular(self, shards):
        run = parallel_sort(shards, "sample-regular", eps=0.3, verify=False)
        verify_sorted_output(shards, run.shards)

    @given(shard_layouts())
    @settings(**COMMON)
    def test_over_partition(self, shards):
        run = parallel_sort(shards, "over-partition", eps=0.3, verify=False)
        verify_sorted_output(shards, run.shards)

    @given(shard_layouts(allow_empty=False))
    @settings(**COMMON)
    def test_radix(self, shards):
        run = parallel_sort(shards, "radix", eps=0.3, verify=False)
        verify_sorted_output(shards, run.shards)

    @given(st.integers(0, 2**31), st.integers(0, 2), st.integers(16, 64))
    @settings(**COMMON)
    def test_bitonic_power_of_two(self, seed, logp_minus_1, n_per):
        p = 2 ** (logp_minus_1 + 1)
        rng = np.random.default_rng(seed)
        shards = [rng.integers(-(2**50), 2**50, n_per) for _ in range(p)]
        run = parallel_sort(shards, "bitonic", eps=0.3, verify=False)
        verify_sorted_output(shards, run.shards)


class TestCrossAlgorithmEquivalence:
    @given(shard_layouts(max_ranks=6, max_keys=150))
    @settings(**COMMON)
    def test_hss_and_sample_sort_agree(self, shards):
        reference = np.sort(np.concatenate(shards))
        a = hss_sort(
            shards,
            config=HSSConfig(eps=0.3, seed=1, tag_duplicates=True),
            verify=False,
        )
        b = parallel_sort(shards, "sample-regular", eps=0.3, verify=False)
        assert np.array_equal(np.concatenate(a.shards), reference)
        assert np.array_equal(np.concatenate(b.shards), reference)
