"""Property-based tests for the two-level node sort (§6.1).

Random rank counts, node widths and shard sizes — including ragged last
nodes and single-node machines — must always yield a sorted permutation
within the combined load bound.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bsp import BSPEngine
from repro.bsp.node import NodeLayout
from repro.core.config import HSSConfig
from repro.core.node_sort import combined_eps, hss_node_sort_program
from repro.machines import get_machine
from repro.metrics import verify_sorted_output

LAPTOP = get_machine("laptop")

COMMON = dict(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def node_worlds(draw):
    p = draw(st.integers(2, 12))
    cores = draw(st.integers(1, 6))
    n_per = draw(st.integers(50, 400))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    shards = [rng.integers(0, 2**60, n_per) for _ in range(p)]
    return p, cores, shards


class TestNodeSortContract:
    @given(node_worlds())
    @settings(**COMMON)
    def test_sorted_permutation_balanced(self, world):
        p, cores, shards = world
        engine = BSPEngine(
            p,
            machine=LAPTOP.with_(cores_per_node=cores),
            node_layout=NodeLayout(p, cores),
        )
        cfg = HSSConfig(eps=0.2, within_node_eps=0.2, node_level=True, seed=3)
        res = engine.run(
            hss_node_sort_program, rank_args=[(x,) for x in shards], cfg=cfg
        )
        outs = [r[0].keys for r in res.returns]
        verify_sorted_output(shards, outs, combined_eps(0.2, 0.2))

    @given(node_worlds())
    @settings(**COMMON)
    def test_within_node_traffic_never_on_network(self, world):
        p, cores, shards = world
        engine = BSPEngine(
            p,
            machine=LAPTOP.with_(cores_per_node=cores),
            node_layout=NodeLayout(p, cores),
        )
        cfg = HSSConfig(eps=0.2, within_node_eps=0.2, node_level=True, seed=5)
        res = engine.run(
            hss_node_sort_program, rank_args=[(x,) for x in shards], cfg=cfg
        )
        for record in res.trace.records:
            if record.op.startswith("node:"):
                assert record.nbytes == 0 and record.messages == 0
