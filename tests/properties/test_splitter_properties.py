"""Property-based tests for splitter-interval invariants (§3.3).

The proofs of Theorems 3.3.1/3.3.2 rest on structural invariants of the
``[L_j, U_j]`` bookkeeping; we check them under arbitrary probe sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.splitters import SplitterState


@st.composite
def probe_sequences(draw):
    """(N, p, eps, rounds of distinct sorted probe-rank arrays)."""
    n = draw(st.integers(10, 5000))
    p = draw(st.integers(2, min(32, n)))
    eps = draw(st.sampled_from([0.01, 0.05, 0.2, 0.5]))
    rounds = []
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    for _ in range(draw(st.integers(1, 5))):
        count = int(rng.integers(0, min(n, 64)))
        ranks = np.unique(rng.integers(0, n, count)).astype(np.int64)
        rounds.append(ranks)
    return n, p, eps, rounds


class TestIntervalInvariants:
    @given(probe_sequences())
    @settings(max_examples=60, deadline=None)
    def test_bounds_monotone_and_bracketing(self, data):
        n, p, eps, rounds = data
        state = SplitterState(n, p, eps)
        for ranks in rounds:
            prev_lo = state.lo_rank.copy()
            prev_hi = state.hi_rank.copy()
            state.update(ranks, ranks)
            # Monotone tightening (Theorem 3.3.1's precondition).
            assert np.all(state.lo_rank >= prev_lo)
            assert np.all(state.hi_rank <= prev_hi)
            # Bracketing: L <= target <= U always.
            assert np.all(state.lo_rank <= state.targets)
            assert np.all(state.hi_rank >= state.targets)

    @given(probe_sequences())
    @settings(max_examples=60, deadline=None)
    def test_mass_never_grows(self, data):
        n, p, eps, rounds = data
        state = SplitterState(n, p, eps)
        prev_mass = state.candidate_mass()
        for ranks in rounds:
            state.update(ranks, ranks)
            mass = state.candidate_mass()
            assert mass <= prev_mass
            prev_mass = mass

    @given(probe_sequences())
    @settings(max_examples=60, deadline=None)
    def test_merged_intervals_disjoint_and_sorted(self, data):
        n, p, eps, rounds = data
        state = SplitterState(n, p, eps)
        for ranks in rounds:
            state.update(ranks, ranks)
        merged = state.merged_intervals()
        if merged.count > 1:
            assert np.all(merged.lo_ranks[1:] > merged.hi_ranks[:-1])
        assert np.all(merged.hi_ranks >= merged.lo_ranks)

    @given(probe_sequences())
    @settings(max_examples=60, deadline=None)
    def test_final_splitters_sorted_and_error_bounded_by_interval(self, data):
        n, p, eps, rounds = data
        state = SplitterState(n, p, eps)
        for ranks in rounds:
            state.update(ranks, ranks)
        chosen = state.final_splitter_ranks()
        if state.all_finalized():
            # Monotonicity is guaranteed once every splitter is inside its
            # window (adjacent windows cannot overlap for eps <= 1); before
            # that, diagnostic output may momentarily invert.  Compare
            # elementwise — np.diff overflows int64 across sentinels.
            keys = state.final_splitters()
            assert np.all(keys[:-1] <= keys[1:])
            assert np.all(chosen[:-1] <= chosen[1:])
        # The chosen rank is always the closer interval endpoint.
        err = np.abs(chosen - state.targets)
        other = np.where(
            chosen == state.lo_rank, state.hi_rank, state.lo_rank
        )
        assert np.all(err <= np.abs(other - state.targets))

    @given(probe_sequences())
    @settings(max_examples=40, deadline=None)
    def test_finalized_iff_within_tolerance(self, data):
        n, p, eps, rounds = data
        state = SplitterState(n, p, eps)
        for ranks in rounds:
            state.update(ranks, ranks)
        mask = state.finalized_mask()
        err_lo = state.targets - state.lo_rank
        err_hi = state.hi_rank - state.targets
        best = np.minimum(err_lo, err_hi)
        assert np.array_equal(mask, best <= state.tolerance)
