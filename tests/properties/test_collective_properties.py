"""Property-based tests for collective algebra on the BSP engine.

Classic identities: gather∘scatter = id, allreduce = reduce; bcast,
alltoall conservation, scan prefix property — under random payload shapes.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bsp import BSPEngine

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def rank_values(draw, max_ranks=8):
    p = draw(st.integers(1, max_ranks))
    values = draw(
        st.lists(st.integers(-(2**31), 2**31), min_size=p, max_size=p)
    )
    return p, values


class TestIdentities:
    @given(rank_values())
    @settings(**COMMON)
    def test_scatter_gather_roundtrip(self, data):
        p, values = data

        def program(ctx):
            chunk = yield from ctx.scatter(
                list(values) if ctx.rank == 0 else None, root=0
            )
            back = yield from ctx.gather(chunk, root=0)
            return back

        res = BSPEngine(p).run(program)
        assert res.returns[0] == values

    @given(rank_values())
    @settings(**COMMON)
    def test_allreduce_equals_reduce_then_bcast(self, data):
        p, values = data

        def program(ctx):
            a = yield from ctx.allreduce(values[ctx.rank])
            r = yield from ctx.reduce(values[ctx.rank], root=0)
            b = yield from ctx.bcast(r, root=0)
            return a, b

        res = BSPEngine(p).run(program)
        for a, b in res.returns:
            assert a == b == sum(values)

    @given(rank_values())
    @settings(**COMMON)
    def test_scan_last_equals_allreduce(self, data):
        p, values = data

        def program(ctx):
            s = yield from ctx.scan(values[ctx.rank])
            total = yield from ctx.allreduce(values[ctx.rank])
            return s, total

        res = BSPEngine(p).run(program)
        assert res.returns[-1][0] == res.returns[-1][1]
        # And scan is the prefix sum at every rank.
        for r, (s, _) in enumerate(res.returns):
            assert s == sum(values[: r + 1])

    @given(rank_values(max_ranks=6), st.integers(0, 2**31))
    @settings(**COMMON)
    def test_alltoall_is_an_involution(self, data, seed):
        p, _ = data
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 100, (p, p))

        def program(ctx):
            once = yield from ctx.alltoall(list(matrix[ctx.rank]))
            twice = yield from ctx.alltoall(list(once))
            return twice

        res = BSPEngine(p).run(program)
        for r in range(p):
            assert list(res.returns[r]) == list(matrix[r])

    @given(rank_values())
    @settings(**COMMON)
    def test_allgather_equals_gather_plus_bcast(self, data):
        p, values = data

        def program(ctx):
            ag = yield from ctx.allgather(values[ctx.rank])
            g = yield from ctx.gather(values[ctx.rank], root=0)
            gb = yield from ctx.bcast(g, root=0)
            return ag, gb

        res = BSPEngine(p).run(program)
        for ag, gb in res.returns:
            assert ag == gb == values

    @given(rank_values(max_ranks=6))
    @settings(**COMMON)
    def test_min_max_reductions(self, data):
        p, values = data

        def program(ctx):
            lo = yield from ctx.allreduce(values[ctx.rank], op="min")
            hi = yield from ctx.allreduce(values[ctx.rank], op="max")
            return lo, hi

        res = BSPEngine(p).run(program)
        assert res.returns[0] == (min(values), max(values))
