"""Property-based tests for the tagged key space (§4.3).

The central claim: tagged positions define a *strict total order* on all
(key, PE, index) triples that is consistent with key order, and summed
local positions give each probe a globally consistent rank.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keyspace import TaggedKeySpace


@st.composite
def duplicate_worlds(draw):
    """p sorted local arrays drawn from a tiny alphabet (heavy duplicates)."""
    p = draw(st.integers(2, 6))
    alphabet = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    locals_ = [
        np.sort(rng.integers(0, alphabet, int(rng.integers(1, 60))).astype(np.int64))
        for _ in range(p)
    ]
    return p, locals_


class TestTaggedOrder:
    @given(duplicate_worlds())
    @settings(max_examples=40, deadline=None)
    def test_global_ranks_strictly_increasing(self, world):
        p, locals_ = world
        ks = TaggedKeySpace(np.int64)
        rng = np.random.default_rng(0)
        pieces = [ks.sample(locals_[r], r, None, 1.0, rng) for r in range(p)]
        probes = ks.sort_unique_probes(pieces)
        ranks = sum(ks.local_counts(locals_[r], r, probes) for r in range(p))
        # Every input element is a probe; tag order is strict.
        assert len(probes) == sum(len(x) for x in locals_)
        assert np.array_equal(ranks, np.arange(len(probes)))

    @given(duplicate_worlds())
    @settings(max_examples=40, deadline=None)
    def test_rank_consistent_with_key_order(self, world):
        p, locals_ = world
        ks = TaggedKeySpace(np.int64)
        rng = np.random.default_rng(1)
        pieces = [ks.sample(locals_[r], r, None, 1.0, rng) for r in range(p)]
        probes = ks.sort_unique_probes(pieces)
        ranks = sum(ks.local_counts(locals_[r], r, probes) for r in range(p))
        # Rank order must refine key order: if key_a < key_b then rank_a < rank_b.
        order = np.argsort(ranks)
        keys_by_rank = probes["key"][order]
        assert np.all(np.diff(keys_by_rank) >= 0)

    @given(duplicate_worlds())
    @settings(max_examples=40, deadline=None)
    def test_bucket_positions_partition_everything(self, world):
        p, locals_ = world
        ks = TaggedKeySpace(np.int64)
        rng = np.random.default_rng(2)
        pieces = [ks.sample(locals_[r], r, None, 1.0, rng) for r in range(p)]
        probes = ks.sort_unique_probes(pieces)
        total = sum(len(x) for x in locals_)
        if len(probes) < p:
            return
        # Choose p-1 arbitrary splitters from probes.
        idx = np.linspace(1, len(probes) - 1, p - 1).astype(int)
        splitters = probes[idx]
        loads = np.zeros(p, dtype=np.int64)
        for r in range(p):
            pos = ks.bucket_positions(locals_[r], r, splitters)
            bounds = np.concatenate(([0], pos, [len(locals_[r])]))
            assert np.all(np.diff(bounds) >= 0)
            loads += np.diff(bounds)
        assert loads.sum() == total
