"""Empirical validation of every theorem in the paper.

Each test realizes a theorem's random experiment many times (or once at a
size where the w.h.p. bound is overwhelming) and checks the claimed event.
Thresholds are set so a correct implementation fails with probability
≪ 10⁻⁶ while implementations violating the theorem's mechanism fail
immediately.  Rank-space execution makes the experiments cheap.
"""

import math

import numpy as np
import pytest

from repro.core.config import HSSConfig
from repro.core.rankspace import RankSpaceSimulator
from repro.core.scanning import scanning_sample_probability, scanning_splitters
from repro.sampling.random_blocks import block_random_sample
from repro.sampling.regular import regular_sample
from repro.sampling.representative import (
    RepresentativeSample,
    representative_sample_size,
)


class TestTheorem321Scanning:
    """Sampling ratio s = 2/ε ⇒ the scan's last bucket ≤ N(1+ε)/p w.h.p."""

    def test_last_bucket_within_cap(self):
        rng = np.random.default_rng(0)
        n, p, eps = 500_000, 64, 0.1
        prob = scanning_sample_probability(n, p, eps)
        failures = 0
        for trial in range(20):
            picks = np.where(rng.random(n) < prob)[0].astype(np.int64)
            res = scanning_splitters(picks, picks, n, p, eps)
            if res.max_load > (1 + eps) * n / p:
                failures += 1
        # Theorem bound: per-trial failure ≤ exp(-p ε²/2(1+ε)²) ≈ e-0.26…
        # loose at this size, but empirically failures are rare; allow 3/20.
        assert failures <= 3


class TestTheorem322OneRound:
    """Inclusion probability 2p·ln p/(εN) hits every window T_i w.h.p."""

    def test_every_window_sampled(self):
        n, p, eps = 2_000_000, 256, 0.05
        cfg = HSSConfig.one_round(eps, seed=1)
        failures = 0
        for seed in range(10):
            stats = RankSpaceSimulator(
                n, p, HSSConfig.one_round(eps, seed=seed)
            ).run()
            if not stats.all_finalized:
                failures += 1
        # Theorem failure budget 1/p per trial -> P[≥2 of 10] < 1e-3.
        assert failures <= 1
        del cfg


class TestTheorem331MassShrinkage:
    """E[G_j] ≤ 2N/s_j: measured candidate mass obeys the envelope."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_mass_under_envelope(self, k):
        n, p, eps = 4_000_000, 1024, 0.05
        cfg = HSSConfig.k_rounds(k, eps=eps, seed=7)
        stats = RankSpaceSimulator(n, p, cfg).run()
        for j in range(1, len(stats.rounds)):
            s_j = cfg.schedule.ratio(j, p, eps)
            mass_after_j = stats.rounds[j].candidate_mass_before
            # Theorem 3.3.2 w.h.p. envelope: G_j ≤ 6N/s_j.
            assert mass_after_j <= 6 * n / s_j


class TestTheorem333SampleSize:
    """Per-round sample ≤ 7·p·s_j/s_{j−1} w.h.p."""

    def test_round_samples_bounded(self):
        n, p, eps, k = 4_000_000, 1024, 0.05, 3
        cfg = HSSConfig.k_rounds(k, eps=eps, seed=11)
        stats = RankSpaceSimulator(n, p, cfg).run()
        ratio_step = (2 * math.log(p) / eps) ** (1.0 / k)
        for r in stats.rounds:
            assert r.sample_size <= 7 * p * ratio_step


class TestTheorem334Termination:
    """The k-th round's ratio 2·ln p/ε finalizes every splitter w.h.p."""

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_finalizes_in_k_rounds(self, k):
        n, p, eps = 2_000_000, 512, 0.05
        stats = RankSpaceSimulator(
            n, p, HSSConfig.k_rounds(k, eps=eps, seed=13)
        ).run()
        assert stats.all_finalized
        assert stats.num_rounds <= k
        assert stats.max_rank_error <= eps * n / (2 * p)


class TestTheorem341RankOracle:
    """Representative-sample rank estimates are within εN/p w.h.p."""

    def test_global_estimate_error(self):
        p, n_per, eps = 64, 20_000, 0.1
        n = p * n_per
        rng = np.random.default_rng(3)
        locals_ = [
            np.sort(rng.integers(0, 2**40, n_per)) for _ in range(p)
        ]
        s = representative_sample_size(p, eps)
        oracles = [
            RepresentativeSample(locals_[r], s, np.random.default_rng(100 + r))
            for r in range(p)
        ]
        everything = np.sort(np.concatenate(locals_))
        queries = everything[np.linspace(0, n - 1, 50).astype(int)]
        estimate = sum(o.local_rank_estimate(queries) for o in oracles)
        truth = np.searchsorted(everything, queries, side="right")
        # Theorem budget εN/p; failure prob ≤ 2p^-4 per query.
        assert np.max(np.abs(estimate - truth)) <= eps * n / p


class TestTheorem411RandomSampling:
    """Blelloch oversampling s = Θ(ln N/ε²) balances w.h.p."""

    def test_balance(self):
        p, n_per, eps = 16, 5_000, 0.2
        n = p * n_per
        rng = np.random.default_rng(5)
        locals_ = [np.sort(rng.integers(0, 2**40, n_per)) for _ in range(p)]
        s = math.ceil(4 * (1 + eps) * math.log(n) / eps**2)
        sample = np.sort(
            np.concatenate(
                [
                    block_random_sample(
                        locals_[r], s, np.random.default_rng(200 + r)
                    )
                    for r in range(p)
                ]
            )
        )
        m = len(sample)
        idx = np.clip((np.arange(1, p) * (m // p)) - 1, 0, m - 1)
        splitters = sample[idx]
        everything = np.sort(np.concatenate(locals_))
        bounds = np.searchsorted(everything, splitters, side="left")
        loads = np.diff(np.concatenate(([0], bounds, [n])))
        assert loads.max() <= (1 + eps) * n / p


class TestTheorem412RegularSampling:
    """|R(S_i) − Ni/p| < N/(2s) — deterministic, so exact."""

    @pytest.mark.parametrize("s", [4, 16, 64])
    def test_rank_error_bound(self, s):
        p, n_per = 8, 4_096
        n = p * n_per
        rng = np.random.default_rng(9)
        locals_ = [np.sort(rng.integers(0, 2**50, n_per)) for r in range(p)]
        combined = np.sort(
            np.concatenate([regular_sample(x, s) for x in locals_])
        )
        everything = np.sort(np.concatenate(locals_))
        for i in range(1, p):
            idx_1based = s * i - p // 2
            splitter = combined[np.clip(idx_1based - 1, 0, len(combined) - 1)]
            rank = int(np.searchsorted(everything, splitter, side="left"))
            assert abs(rank - n * i / p) <= n / (2 * s) + n_per / s


class TestLemma332ConstantOversampling:
    """O(log(log p/ε)) rounds with O(p) samples per round suffice."""

    def test_rounds_scale_like_loglog(self):
        eps = 0.05
        rounds_at = {}
        for p in (256, 4096, 65536):
            stats = RankSpaceSimulator(
                p * 2_000, p, HSSConfig.constant_oversampling(5.0, eps=eps, seed=21)
            ).run()
            assert stats.all_finalized
            rounds_at[p] = stats.num_rounds
        # 256x more processors: rounds grow by at most +2 (log log).
        assert rounds_at[65536] <= rounds_at[256] + 2


class TestDistributionFreeness:
    """HSS's splitter phase depends only on ranks — the rank-space engine's
    premise — so the *SPMD* round count must match across wildly different
    key distributions with the same N, p and seed."""

    def test_rounds_invariant_across_distributions(self):
        from repro.core.api import hss_sort
        from repro.workloads.distributions import make_distributed

        p, n_per = 8, 2_000
        cfg = HSSConfig.constant_oversampling(5.0, eps=0.05, seed=33)
        rounds = set()
        for name in ("uniform", "lognormal", "staircase"):
            shards = make_distributed(name, p, n_per, 3)
            run = hss_sort(shards, config=cfg, verify=False)
            rounds.add(run.splitter_stats.num_rounds)
        assert len(rounds) <= 2  # sampling noise only, no distribution term
