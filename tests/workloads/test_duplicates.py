"""Tests for heavy-duplicate workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.duplicates import (
    constant_shards,
    few_distinct_shards,
    hotspot_shards,
    zipf_duplicate_shards,
)


class TestConstant:
    def test_all_equal(self):
        shards = constant_shards(4, 100, value=9)
        for s in shards:
            assert np.all(s == 9)

    def test_shapes(self):
        shards = constant_shards(3, 50)
        assert len(shards) == 3 and all(len(s) == 50 for s in shards)


class TestFewDistinct:
    def test_alphabet_size(self):
        shards = few_distinct_shards(4, 500, 3, distinct=5)
        values = np.unique(np.concatenate(shards))
        assert len(values) <= 5

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            few_distinct_shards(2, 10, distinct=0)


class TestHotspot:
    def test_hot_fraction(self):
        shards = hotspot_shards(4, 1000, 3, hot_fraction=0.6)
        keys = np.concatenate(shards)
        values, counts = np.unique(keys, return_counts=True)
        assert counts.max() / len(keys) == pytest.approx(0.6, abs=0.01)

    def test_cold_keys_mostly_unique(self):
        shards = hotspot_shards(4, 1000, 3, hot_fraction=0.5)
        keys = np.concatenate(shards)
        _, counts = np.unique(keys, return_counts=True)
        assert np.sum(counts == 1) > 0.4 * len(keys)

    def test_invalid_fraction(self):
        with pytest.raises(WorkloadError):
            hotspot_shards(2, 10, hot_fraction=1.5)


class TestZipf:
    def test_head_dominates(self):
        shards = zipf_duplicate_shards(4, 2000, 3, alphabet=100, exponent=2.0)
        keys = np.concatenate(shards)
        _, counts = np.unique(keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 10 * counts[-1]

    def test_invalid_alphabet(self):
        with pytest.raises(WorkloadError):
            zipf_duplicate_shards(2, 10, alphabet=0)

    def test_determinism(self):
        a = zipf_duplicate_shards(2, 300, 7)
        b = zipf_duplicate_shards(2, 300, 7)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
