"""Workload registry: specs, registration contract, catalog view, README."""

import pathlib
import re

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.records import RecordSchema
from repro.workloads import (
    WORKLOAD_SPECS,
    WORKLOADS,
    WorkloadSpec,
    available_workloads,
    get_workload,
    make_workload,
    register_workload,
)


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("uniform", "staircase", "changa-dwarf", "zipf-duplicates"):
            assert name in WORKLOAD_SPECS

    def test_get_workload_resolves(self):
        spec = get_workload("uniform")
        assert isinstance(spec, WorkloadSpec)
        assert spec.name == "uniform"
        assert spec.record_schema is None

    def test_get_workload_unknown_lists_choices(self):
        with pytest.raises(WorkloadError, match="choose from"):
            get_workload("nope")

    def test_available_workloads_sorted(self):
        names = available_workloads()
        assert names == sorted(names)
        assert "uniform" in names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(WorkloadError, match="already registered"):
            register_workload("uniform", description="again")(lambda p, n, rng=0: [])

    def test_register_and_generate(self):
        name = "test-registry-probe"
        try:

            @register_workload(
                name,
                description="probe",
                paper_section="0.0",
                record_schema={"w": "f8"},
            )
            def probe(p, n_per, rng=0):
                return [np.arange(n_per, dtype=np.int64) for _ in range(p)]

            spec = get_workload(name)
            assert spec.record_schema == RecordSchema.from_mapping({"w": "f8"})
            shards = spec.generate(3, 5)
            assert len(shards) == 3 and len(shards[0]) == 5
            # The legacy catalog entry points at the same generator.
            assert WORKLOADS[name] is probe
        finally:
            WORKLOAD_SPECS.pop(name, None)

    def test_changa_declares_particle_schema(self):
        schema = get_workload("changa-dwarf").record_schema
        assert schema is not None
        assert schema.column_names == ("mass", "vx", "vy", "vz", "id")
        assert schema.record_nbytes() == 32  # 8-byte key + 24 payload bytes


class TestCatalogView:
    def test_mapping_protocol(self):
        assert len(WORKLOADS) == len(WORKLOAD_SPECS)
        assert set(WORKLOADS) == set(WORKLOAD_SPECS)
        assert "uniform" in WORKLOADS
        assert callable(WORKLOADS["uniform"])

    def test_make_workload_matches_direct_call(self):
        via_catalog = make_workload("uniform", 2, 10, rng=7)
        via_spec = get_workload("uniform").generate(2, 10, rng=7)
        for a, b in zip(via_catalog, via_spec):
            np.testing.assert_array_equal(a, b)


class TestReadmeWorkloadsTable:
    def test_readme_table_matches_registry(self):
        """The README workloads table is generated from WORKLOAD_SPECS."""
        readme = (
            pathlib.Path(__file__).parents[2] / "README.md"
        ).read_text()
        rows = re.findall(
            r"^\| `([a-z0-9-]+)` \| §([0-9.]+) \| ([^|]+) \| ([^|]+) \|",
            readme,
            re.M,
        )
        documented = {
            name: (section, records.strip(), desc.strip())
            for name, section, records, desc in rows
        }
        registered = {
            name: (
                spec.paper_section,
                f"`{spec.record_schema.compact()}`"
                if spec.record_schema is not None
                else "—",
                spec.description,
            )
            for name, spec in WORKLOAD_SPECS.items()
        }
        assert documented == registered
