"""Tests for ChaNGa-like cosmological particle workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.changa import (
    dwarf_like_shards,
    lambb_like_shards,
    morton_keys_from_positions,
    plummer_positions,
)


class TestPlummer:
    def test_shapes_and_bounds(self, rng):
        pts = plummer_positions(1000, rng)
        assert pts.shape == (1000, 3)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_centered(self, rng):
        pts = plummer_positions(5000, rng, center=(0.5, 0.5, 0.5), scale=0.01)
        assert np.allclose(pts.mean(axis=0), 0.5, atol=0.02)

    def test_concentration_scales(self, rng):
        tight = plummer_positions(2000, rng, scale=0.001)
        loose = plummer_positions(2000, rng, scale=0.1)
        r_tight = np.linalg.norm(tight - 0.5, axis=1)
        r_loose = np.linalg.norm(loose - 0.5, axis=1)
        assert np.median(r_tight) < np.median(r_loose)

    def test_zero_particles(self, rng):
        assert plummer_positions(0, rng).shape == (0, 3)

    def test_negative_rejected(self, rng):
        with pytest.raises(WorkloadError):
            plummer_positions(-1, rng)


class TestMortonKeys:
    def test_dtype_and_range(self, rng):
        keys = morton_keys_from_positions(rng.random((100, 3)))
        assert keys.dtype == np.uint64
        assert int(keys.max()) < 1 << 63

    def test_bad_shape(self, rng):
        with pytest.raises(WorkloadError):
            morton_keys_from_positions(rng.random((10, 2)))


class TestDatasets:
    def test_dwarf_shapes(self):
        shards = dwarf_like_shards(4, 500, 3)
        assert len(shards) == 4 and all(len(s) == 500 for s in shards)
        assert all(s.dtype == np.uint64 for s in shards)

    def test_lambb_shapes(self):
        shards = lambb_like_shards(4, 500, 3)
        assert len(shards) == 4 and all(len(s) == 500 for s in shards)

    def test_deterministic(self):
        a = dwarf_like_shards(2, 200, 9)
        b = dwarf_like_shards(2, 200, 9)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_dwarf_more_skewed_than_lambb(self):
        """Dwarf = one dominant halo; its key mass concentrates harder.

        Metric: fraction of key-space span holding 90% of the keys.
        """

        def span_fraction(shards, q=0.9):
            keys = np.sort(np.concatenate(shards).astype(np.float64))
            n = len(keys)
            lo, hi = keys[int(0.05 * n)], keys[int(0.95 * n)]
            return (hi - lo) / max(1.0, keys[-1] - keys[0])

        dwarf = span_fraction(dwarf_like_shards(4, 2000, 1))
        lambb = span_fraction(lambb_like_shards(4, 2000, 1))
        uniform_keys = np.random.default_rng(0).integers(
            0, 1 << 62, 8000
        ).astype(np.float64)
        uniform = (
            np.quantile(uniform_keys, 0.95) - np.quantile(uniform_keys, 0.05)
        ) / (
            uniform_keys.max() - uniform_keys.min()
        )
        assert dwarf < lambb < uniform

    def test_lambb_invalid_nhalos(self):
        with pytest.raises(WorkloadError):
            lambb_like_shards(2, 100, nhalos=1)

    def test_hss_sorts_both(self):
        from repro.core.api import hss_sort
        from repro.core.config import HSSConfig
        from repro.metrics import verify_sorted_output

        for maker in (dwarf_like_shards, lambb_like_shards):
            shards = maker(8, 800, 5)
            run = hss_sort(
                shards, config=HSSConfig(eps=0.1, seed=1, tag_duplicates=True)
            )
            verify_sorted_output(shards, run.shards, 0.1)


class TestSoneiraPeebles:
    def test_shapes_and_bounds(self, rng):
        from repro.workloads.changa import soneira_peebles_positions

        pts = soneira_peebles_positions(2000, rng, levels=4)
        assert pts.shape == (2000, 3)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_hierarchy_deepens_concentration(self, rng):
        """More levels -> more key mass packs into the densest bins."""
        import numpy as np

        from repro.workloads.changa import (
            morton_keys_from_positions,
            soneira_peebles_positions,
        )

        def top_bin_mass(levels, seed):
            g = np.random.default_rng(seed)
            pts = soneira_peebles_positions(8000, g, levels=levels)
            keys = morton_keys_from_positions(pts).astype(np.float64)
            counts, _ = np.histogram(keys, bins=512)
            counts = np.sort(counts)[::-1]
            return counts[:8].sum() / counts.sum()

        assert top_bin_mass(8, 3) > top_bin_mass(2, 3)

    def test_invalid_params(self, rng):
        from repro.errors import WorkloadError
        from repro.workloads.changa import soneira_peebles_positions

        import pytest as _pytest

        with _pytest.raises(WorkloadError):
            soneira_peebles_positions(10, rng, levels=0)
        with _pytest.raises(WorkloadError):
            soneira_peebles_positions(10, rng, ratio=1.5)
        with _pytest.raises(WorkloadError):
            soneira_peebles_positions(10, rng, levels=20, eta=4)


class TestFractalDatasets:
    def test_shapes(self):
        from repro.workloads.changa import (
            fractal_dwarf_shards,
            fractal_lambb_shards,
        )

        for maker in (fractal_dwarf_shards, fractal_lambb_shards):
            shards = maker(4, 400, 3)
            assert len(shards) == 4 and all(len(s) == 400 for s in shards)

    def test_dwarf_deeper_than_lambb_for_bisection(self):
        """The Fig 6.2 ordering: classic histogram sort pays more rounds on
        the fractal dwarf than on the web."""
        import numpy as np

        from repro.core.rankspace import simulate_histogram_sort_rounds
        from repro.workloads.changa import (
            fractal_dwarf_shards,
            fractal_lambb_shards,
        )

        def rounds_for(maker):
            keys = np.sort(np.concatenate(maker(4, 25_000, 5)))
            keys = (
                (keys >> np.uint64(1))
                + np.arange(len(keys), dtype=np.uint64)
            ).astype(np.int64)

            def rank_of(q):
                return np.searchsorted(
                    keys, np.asarray(q, dtype=np.int64)
                ).astype(np.int64)

            sim = simulate_histogram_sort_rounds(
                len(keys), 64, 0.05, rank_of, int(keys[0]), int(keys[-1]),
                probes_per_splitter=3, max_rounds=300, key_dtype=np.int64,
            )
            return sim.rounds

        assert rounds_for(fractal_dwarf_shards) >= rounds_for(
            fractal_lambb_shards
        )
