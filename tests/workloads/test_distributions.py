"""Tests for parametric workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    DISTRIBUTIONS,
    make_distributed,
    nearly_sorted_shards,
    reversed_shards,
    staircase_shards,
    uniform_shards,
)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_shape_and_dtype(self, name):
        shards = make_distributed(name, 4, 300, 7)
        assert len(shards) == 4
        assert all(len(s) == 300 for s in shards)
        assert all(s.dtype == np.int64 for s in shards)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_deterministic(self, name):
        a = make_distributed(name, 3, 100, 5)
        b = make_distributed(name, 3, 100, 5)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_unknown_name(self):
        with pytest.raises(WorkloadError, match="unknown distribution"):
            make_distributed("cauchy", 2, 10)

    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_keys_stay_clear_of_dtype_extremes(self, name):
        """Sentinel safety: keys must avoid int64 min/max."""
        shards = make_distributed(name, 4, 200, 3)
        info = np.iinfo(np.int64)
        for s in shards:
            assert s.min() > info.min and s.max() < info.max


class TestShapes:
    def test_uniform_spreads(self):
        shards = uniform_shards(4, 2000, 0)
        keys = np.concatenate(shards)
        # Quartiles roughly even for uniform keys.
        q = np.quantile(keys, [0.25, 0.5, 0.75]) / 2**62
        assert np.allclose(q, [0.25, 0.5, 0.75], atol=0.05)

    def test_staircase_concentrates_mass(self):
        shards = staircase_shards(4, 2000, 0, steps=4, ratio=1e6)
        keys = np.concatenate(shards)
        # All keys live in 4 narrow windows: unique key-space coverage tiny.
        span = keys.max() - keys.min()
        coverage = sum(
            np.ptp(keys[(keys >= lo) & (keys < lo + span // 4 + 1)])
            for lo in np.linspace(keys.min(), keys.max(), 4, endpoint=False)
        )
        assert coverage < span / 100

    def test_staircase_invalid(self):
        with pytest.raises(WorkloadError):
            staircase_shards(2, 10, steps=0)

    def test_nearly_sorted_placement(self):
        shards = nearly_sorted_shards(8, 500, 0, swap_fraction=0.0)
        for k in range(7):
            assert shards[k][-1] <= shards[k + 1][0]

    def test_nearly_sorted_with_swaps_disrupts(self):
        shards = nearly_sorted_shards(8, 500, 0, swap_fraction=0.05)
        merged = np.concatenate(shards)
        assert np.any(np.diff(merged) < 0)

    def test_reversed_is_descending(self):
        shards = reversed_shards(4, 100, 0)
        merged = np.concatenate(shards)
        assert np.all(np.diff(merged) <= 0)


class TestSortability:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_hss_handles_every_distribution(self, name):
        from repro.core.api import hss_sort
        from repro.core.config import HSSConfig

        shards = make_distributed(name, 8, 600, 11)
        cfg = HSSConfig(eps=0.1, seed=2, tag_duplicates=True)
        run = hss_sort(shards, config=cfg)
        assert run.imbalance <= 1.1 + 1e-9
