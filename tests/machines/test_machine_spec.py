"""Tests for MachineSpec: validation, overrides, JSON round-trips."""

import pytest

from repro.bsp.machine import MachineModel
from repro.bsp.network import Torus
from repro.errors import ConfigError
from repro.machines import MACHINES, MachineSpec, get_machine_spec


def toy_spec(**kw):
    defaults = dict(
        name="toy",
        alpha=1e-6,
        beta=1e-9,
        topology="torus",
        topology_params={"dims": 3, "base_endpoints": 8},
        cores_per_node=4,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="name"):
            toy_spec(name="")

    def test_negative_scalar_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="alpha"):
            toy_spec(alpha=-1.0)

    def test_unknown_topology_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="unknown topology"):
            toy_spec(topology="moebius")

    def test_bad_topology_params_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="valid parameters"):
            toy_spec(topology_params={"dims": 3, "radius": 2})

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError, match="cores_per_node"):
            toy_spec(cores_per_node=0)


class TestModel:
    def test_model_matches_hand_built(self):
        spec = toy_spec()
        model = spec.model()
        assert isinstance(model, MachineModel)
        assert model == MachineModel(
            name="toy",
            alpha=1e-6,
            beta=1e-9,
            topology=Torus(dims=3, base_endpoints=8),
            cores_per_node=4,
        )

    def test_scalar_fields_carried_verbatim(self):
        spec = toy_spec(
            gamma_key_compare=3e-10, round_sync_per_level=1e-4, node_alpha=0.0
        )
        model = spec.model()
        assert model.gamma_key_compare == 3e-10
        assert model.round_sync_per_level == 1e-4
        assert model.node_alpha == 0.0  # fallback applies at pricing time

    def test_describe_block(self):
        assert toy_spec().describe() == {
            "name": "toy", "topology": "torus", "cores_per_node": 4,
        }


class TestOverride:
    def test_override_replaces_fields(self):
        spec = toy_spec().override(cores_per_node=2, alpha=9e-6)
        assert (spec.cores_per_node, spec.alpha) == (2, 9e-6)
        # Untouched fields survive.
        assert spec.topology_params == {"dims": 3, "base_endpoints": 8}

    def test_override_is_validated(self):
        with pytest.raises(ConfigError, match="beta"):
            toy_spec().override(beta=-1.0)

    def test_unknown_override_names_valid_fields(self):
        with pytest.raises(ConfigError, match="cores_per_node"):
            toy_spec().override(cores=4)

    def test_name_is_not_overridable(self):
        with pytest.raises(ConfigError, match="unknown override"):
            toy_spec().override(name="impostor")


class TestSerialization:
    def test_json_round_trip_is_bit_identical(self):
        spec = toy_spec(note="a note", paper_section="6.1")
        restored = MachineSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.to_json() == spec.to_json()

    @pytest.mark.parametrize("name", sorted(MACHINES))
    def test_every_preset_round_trips(self, name):
        spec = get_machine_spec(name)
        restored = MachineSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.model() == spec.model()

    def test_topology_serialized_by_name(self):
        data = toy_spec().to_dict()
        assert data["topology"] == {
            "name": "torus", "params": {"dims": 3, "base_endpoints": 8},
        }

    def test_from_dict_accepts_bare_topology_name(self):
        spec = MachineSpec.from_dict(
            {"name": "flat", "topology": "fully-connected"}
        )
        assert spec.topology == "fully-connected"

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="ghz"):
            MachineSpec.from_dict(
                {"name": "x", "topology": "fully-connected", "ghz": 3.2}
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="JSON"):
            MachineSpec.from_json("{not json")
