"""Tests for the machine registry: presets, aliases, resolution, README."""

import pathlib
import re

import pytest

from repro.bsp.machine import MachineModel
from repro.errors import ConfigError
from repro.machines import (
    MACHINES,
    MachineSpec,
    available_machines,
    get_machine,
    get_machine_spec,
    machine_summary,
    register_machine,
    resolve_machine,
)

EXPECTED_PRESETS = [
    "cloud-ethernet",
    "dragonfly-hpc",
    "fat-tree-hpc",
    "generic-cluster",
    "jittery-cloud",
    "laptop",
    "mira-like-bgq",
]


class TestCatalog:
    def test_at_least_six_presets(self):
        assert available_machines() == EXPECTED_PRESETS

    def test_every_preset_models(self):
        for name in available_machines():
            model = get_machine(name)
            assert isinstance(model, MachineModel)
            assert model.name == name

    def test_every_preset_has_provenance_note(self):
        for name in available_machines():
            assert get_machine_spec(name).note, f"{name} lacks a note"

    def test_legacy_constants_preserved(self):
        # The catalog keeps the exact values of the retired module
        # constants — modeled metrics must not shift under the refactor.
        mira = get_machine("mira-like-bgq")
        assert mira.alpha == 2.5e-6
        assert mira.beta == 1.0 / 2.0e8
        assert mira.gamma_compare == 4.0e-8
        assert mira.cores_per_node == 16
        assert mira.topology.dims == 5
        assert mira.round_sync_per_level == 1.0e-3
        laptop = get_machine("laptop")
        assert laptop.alpha == 2.0e-7
        assert laptop.cores_per_node == 8
        cluster = get_machine("generic-cluster")
        assert cluster.topology.bisection == 0.5
        assert cluster.cores_per_node == 64

    def test_legacy_module_attributes_still_resolve(self):
        from repro.bsp import machine as machine_module

        assert machine_module.MIRA_LIKE == get_machine("mira-like-bgq")
        assert machine_module.LAPTOP == get_machine("laptop")
        assert machine_module.GENERIC_CLUSTER == get_machine("generic-cluster")
        with pytest.raises(AttributeError):
            machine_module.NO_SUCH_PRESET

    def test_legacy_package_level_imports_still_resolve(self):
        # Third-party code also used the package path (repro.bsp.LAPTOP).
        import repro.bsp

        assert repro.bsp.MIRA_LIKE == get_machine("mira-like-bgq")
        assert repro.bsp.LAPTOP == get_machine("laptop")
        with pytest.raises(AttributeError):
            repro.bsp.NO_SUCH_PRESET


class TestLookup:
    def test_aliases(self):
        assert get_machine("mira") == get_machine("mira-like-bgq")
        assert get_machine("cluster") == get_machine("generic-cluster")

    def test_unknown_machine_lists_choices(self):
        with pytest.raises(ConfigError, match="mira-like-bgq"):
            get_machine("cray-xt5")

    def test_overrides(self):
        flat = get_machine("mira-like-bgq", overrides={"cores_per_node": 1})
        assert flat.cores_per_node == 1
        assert flat.alpha == get_machine("mira-like-bgq").alpha

    def test_overrides_do_not_mutate_the_registry(self):
        get_machine("laptop", overrides={"cores_per_node": 999})
        assert get_machine("laptop").cores_per_node == 8

    def test_bad_override_rejected(self):
        with pytest.raises(ConfigError, match="valid fields"):
            get_machine("laptop", overrides={"turbo": True})


class TestRegisterMachine:
    def test_direct_and_duplicate(self):
        spec = MachineSpec(name="test-rig", alpha=1e-6)
        try:
            register_machine(spec)
            assert get_machine("test-rig").alpha == 1e-6
            # Idempotent for an identical spec...
            register_machine(spec)
            # ...but a conflicting one is rejected.
            with pytest.raises(ConfigError, match="already registered"):
                register_machine(MachineSpec(name="test-rig", alpha=2e-6))
        finally:
            MACHINES.pop("test-rig", None)

    def test_factory_decorator(self):
        try:

            @register_machine
            def test_factory_rig() -> MachineSpec:
                return MachineSpec(name="test-factory-rig", beta=1e-8)

            assert get_machine("test-factory-rig").beta == 1e-8
        finally:
            MACHINES.pop("test-factory-rig", None)

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError, match="MachineSpec"):
            register_machine(lambda: {"name": "nope"})

    def test_alias_collision_rejected(self):
        with pytest.raises(ConfigError, match="alias"):
            register_machine(MachineSpec(name="mira"))


class TestResolveMachine:
    def test_none_is_laptop(self):
        assert resolve_machine(None) == get_machine("laptop")

    def test_name_spec_model_all_resolve_identically(self):
        by_name = resolve_machine("dragonfly-hpc")
        by_spec = resolve_machine(get_machine_spec("dragonfly-hpc"))
        by_model = resolve_machine(by_name)
        assert by_name == by_spec == by_model

    def test_spec_overrides(self):
        model = resolve_machine(
            get_machine_spec("laptop"), {"cores_per_node": 2}
        )
        assert model.cores_per_node == 2

    def test_model_with_overrides_rejected(self):
        with pytest.raises(ConfigError, match="with_"):
            resolve_machine(get_machine("laptop"), {"cores_per_node": 2})

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="cannot resolve"):
            resolve_machine(42)

    def test_summary(self):
        assert machine_summary("mira", {"cores_per_node": 1}) == {
            "name": "mira-like-bgq",
            "topology": "torus",
            "cores_per_node": 1,
        }


class TestReadmeCatalogTable:
    def test_readme_table_matches_registry(self):
        """The README machine table is generated from this registry."""
        readme = (
            pathlib.Path(__file__).parents[2] / "README.md"
        ).read_text()
        rows = re.findall(
            r"^\| `([a-z0-9-]+)` \| ([^|]+) \| (\d+) \|", readme, re.M
        )
        documented = {
            name: (topo.strip(), int(cores)) for name, topo, cores in rows
        }
        registered = {
            name: (spec.topology, spec.cores_per_node)
            for name, spec in MACHINES.items()
        }
        assert documented == registered
