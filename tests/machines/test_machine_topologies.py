"""Tests for the topology plugin registry and the Dragonfly model."""

from dataclasses import dataclass

import pytest

from repro.bsp.network import Dragonfly, FatTree, FullyConnected, Topology, Torus
from repro.errors import ConfigError
from repro.machines import (
    available_topologies,
    get_topology_cls,
    make_topology,
    register_topology,
    topology_from_dict,
    topology_to_dict,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_topologies() == [
            "dragonfly", "fat-tree", "fully-connected",
            "jittered-dragonfly", "jittered-fat-tree", "torus",
        ]

    def test_get_cls(self):
        assert get_topology_cls("torus") is Torus
        assert get_topology_cls("fat-tree") is FatTree
        assert get_topology_cls("fully-connected") is FullyConnected
        assert get_topology_cls("dragonfly") is Dragonfly

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError, match="dragonfly"):
            get_topology_cls("hypercube")

    def test_reregistering_same_class_is_idempotent(self):
        assert register_topology(Torus) is Torus

    def test_conflicting_registration_rejected(self):
        @dataclass(frozen=True)
        class FakeTorus(Topology):
            name: str = "torus"

        with pytest.raises(ConfigError, match="already registered"):
            register_topology(FakeTorus)

    def test_non_dataclass_rejected(self):
        class Loose(Topology):
            name = "loose"

        with pytest.raises(ConfigError, match="dataclass"):
            register_topology(Loose)

    def test_third_party_plugin_round_trips(self):
        @dataclass(frozen=True)
        class Star(Topology):
            arms: int = 4
            name: str = "test-star"

            def alltoall_contention(self, n):
                return float(self.arms)

            def diameter(self, n):
                return 2

        try:
            register_topology(Star)
            topo = make_topology("test-star", arms=7)
            assert topology_from_dict(topology_to_dict(topo)) == topo
        finally:
            from repro.machines import TOPOLOGIES

            TOPOLOGIES.pop("test-star", None)


class TestMakeTopology:
    def test_defaults(self):
        assert make_topology("fully-connected") == FullyConnected()

    def test_params_forwarded(self):
        topo = make_topology("torus", dims=3, base_endpoints=8)
        assert (topo.dims, topo.base_endpoints) == (3, 8)

    def test_unknown_param_names_valid_ones(self):
        with pytest.raises(ConfigError, match="base_endpoints"):
            make_topology("torus", radius=3)

    def test_name_is_not_a_parameter(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            make_topology("torus", name="sneaky")

    def test_invalid_value_becomes_config_error(self):
        with pytest.raises(ConfigError, match="bisection"):
            make_topology("fat-tree", bisection=0.0)


class TestSerialization:
    @pytest.mark.parametrize(
        "topo",
        [
            FullyConnected(),
            Torus(dims=3, base_endpoints=16),
            FatTree(bisection=0.25),
            Dragonfly(group_size=64, global_taper=0.25),
        ],
        ids=lambda t: t.name,
    )
    def test_round_trip(self, topo):
        data = topology_to_dict(topo)
        assert data["name"] == topo.name
        assert topology_from_dict(data) == topo

    def test_params_omitted_means_defaults(self):
        assert topology_from_dict({"name": "torus"}) == Torus()

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigError, match="name"):
            topology_from_dict({"params": {}})


class TestDragonfly:
    def test_no_contention_within_group(self):
        d = Dragonfly(group_size=64, global_taper=0.5)
        assert d.alltoall_contention(64) == 1.0

    def test_constant_contention_across_groups(self):
        d = Dragonfly(group_size=64, global_taper=0.5)
        assert d.alltoall_contention(128) == 2.0
        assert d.alltoall_contention(1 << 20) == 2.0  # scale-free

    def test_diameter(self):
        d = Dragonfly(group_size=64)
        assert d.diameter(8) == 1
        assert d.diameter(4096) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="group_size"):
            Dragonfly(group_size=0)
        with pytest.raises(ValueError, match="global_taper"):
            Dragonfly(global_taper=1.5)

    def test_between_torus_and_fat_tree_at_scale(self):
        # The design point: worse than a full-bisection fat tree, better
        # than a torus once the torus contention grows past the taper.
        n = 1 << 18
        dragonfly = Dragonfly(group_size=1024, global_taper=0.5)
        torus = Torus(dims=5, base_endpoints=32)
        fat = FatTree(bisection=1.0)
        assert (
            fat.alltoall_contention(n)
            < dragonfly.alltoall_contention(n)
            < torus.alltoall_contention(n)
        )
