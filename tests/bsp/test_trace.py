"""Tests for superstep traces and phase breakdowns."""

import pytest

from repro.bsp.trace import PhaseBreakdown, SuperstepRecord, Trace


def record(op="bcast", phase="work", compute=None, comm=2.0, nbytes=10, messages=3):
    return SuperstepRecord(
        index=0,
        op=op,
        phase=phase,
        compute_by_phase=compute if compute is not None else {"work": 1.0},
        comm_seconds=comm,
        nbytes=nbytes,
        messages=messages,
        endpoints=4,
    )


class TestSuperstepRecord:
    def test_totals(self):
        r = record(compute={"a": 1.0, "b": 0.5}, comm=2.0)
        assert r.compute_seconds == pytest.approx(1.5)
        assert r.total_seconds == pytest.approx(3.5)


class TestTrace:
    def test_makespan_sums(self):
        t = Trace()
        t.append(record())
        t.append(record(comm=5.0))
        assert t.makespan == pytest.approx(1.0 + 2.0 + 1.0 + 5.0)

    def test_breakdown_splits_compute_and_comm(self):
        t = Trace()
        t.append(record(phase="comm-phase", compute={"cpu-phase": 1.0}, comm=2.0))
        b = t.breakdown()
        assert b.compute["cpu-phase"] == pytest.approx(1.0)
        assert b.comm["comm-phase"] == pytest.approx(2.0)
        assert b.total() == pytest.approx(3.0)

    def test_counting(self):
        t = Trace()
        t.append(record(op="bcast"))
        t.append(record(op="reduce"))
        t.append(record(op="bcast"))
        assert t.count_collectives() == 3
        assert t.count_collectives("bcast") == 2
        assert t.total_bytes() == 30
        assert t.total_messages() == 9

    def test_final_marker_not_counted(self):
        t = Trace()
        t.append(record(op="__final__"))
        assert t.count_collectives() == 0

    def test_iteration_and_len(self):
        t = Trace()
        t.append(record())
        assert len(t) == 1
        assert [r.op for r in t] == ["bcast"]


class TestPhaseBreakdown:
    def test_add_and_total(self):
        b = PhaseBreakdown()
        b.add("x", 1.0, 2.0)
        b.add("x", 0.5, 0.0)
        assert b.total("x") == pytest.approx(3.5)

    def test_phase_order_preserved(self):
        b = PhaseBreakdown()
        b.add("later", 0, 1)
        b.add("earlier", 1, 0)
        assert b.phases() == ["later", "earlier"]

    def test_merged(self):
        a = PhaseBreakdown({"x": 1.0}, {"x": 2.0})
        c = a.merged(PhaseBreakdown({"x": 1.0, "y": 3.0}, {}))
        assert c.total("x") == pytest.approx(4.0)
        assert c.total("y") == pytest.approx(3.0)
        assert a.total("x") == pytest.approx(3.0)  # original untouched

    def test_table_renders(self):
        b = PhaseBreakdown()
        b.add("phase-one", 1.0, 2.0)
        text = b.table()
        assert "phase-one" in text
        assert "TOTAL" in text
