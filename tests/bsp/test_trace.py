"""Tests for superstep traces and phase breakdowns."""

import pytest

from repro.bsp.trace import PhaseBreakdown, SuperstepRecord, Trace


def record(op="bcast", phase="work", compute=None, comm=2.0, nbytes=10, messages=3):
    return SuperstepRecord(
        index=0,
        op=op,
        phase=phase,
        compute_by_phase=compute if compute is not None else {"work": 1.0},
        comm_seconds=comm,
        nbytes=nbytes,
        messages=messages,
        endpoints=4,
    )


class TestSuperstepRecord:
    def test_totals(self):
        r = record(compute={"a": 1.0, "b": 0.5}, comm=2.0)
        assert r.compute_seconds == pytest.approx(1.5)
        assert r.total_seconds == pytest.approx(3.5)


class TestTrace:
    def test_makespan_sums(self):
        t = Trace()
        t.append(record())
        t.append(record(comm=5.0))
        assert t.makespan == pytest.approx(1.0 + 2.0 + 1.0 + 5.0)

    def test_breakdown_splits_compute_and_comm(self):
        t = Trace()
        t.append(record(phase="comm-phase", compute={"cpu-phase": 1.0}, comm=2.0))
        b = t.breakdown()
        assert b.compute["cpu-phase"] == pytest.approx(1.0)
        assert b.comm["comm-phase"] == pytest.approx(2.0)
        assert b.total() == pytest.approx(3.0)

    def test_counting(self):
        t = Trace()
        t.append(record(op="bcast"))
        t.append(record(op="reduce"))
        t.append(record(op="bcast"))
        assert t.count_collectives() == 3
        assert t.count_collectives("bcast") == 2
        assert t.total_bytes() == 30
        assert t.total_messages() == 9

    def test_final_marker_not_counted(self):
        t = Trace()
        t.append(record(op="__final__"))
        assert t.count_collectives() == 0

    def test_iteration_and_len(self):
        t = Trace()
        t.append(record())
        assert len(t) == 1
        assert [r.op for r in t] == ["bcast"]


class TestPhaseBreakdown:
    def test_add_and_total(self):
        b = PhaseBreakdown()
        b.add("x", 1.0, 2.0)
        b.add("x", 0.5, 0.0)
        assert b.total("x") == pytest.approx(3.5)

    def test_phase_order_preserved(self):
        b = PhaseBreakdown()
        b.add("later", 0, 1)
        b.add("earlier", 1, 0)
        assert b.phases() == ["later", "earlier"]

    def test_merged(self):
        a = PhaseBreakdown({"x": 1.0}, {"x": 2.0})
        c = a.merged(PhaseBreakdown({"x": 1.0, "y": 3.0}, {}))
        assert c.total("x") == pytest.approx(4.0)
        assert c.total("y") == pytest.approx(3.0)
        assert a.total("x") == pytest.approx(3.0)  # original untouched

    def test_table_renders(self):
        b = PhaseBreakdown()
        b.add("phase-one", 1.0, 2.0)
        text = b.table()
        assert "phase-one" in text
        assert "TOTAL" in text


class TestEngineTraceAccounting:
    """Trace/CommStats accounting driven through the real engine, on
    machines resolved from the named-topology registry path."""

    @staticmethod
    def _program(ctx, value):
        with ctx.phase("alpha"):
            ctx.charge_compare(100)
            yield from ctx.bcast(value, root=0)
            yield from ctx.gather(value, root=0)
        with ctx.phase("beta"):
            yield from ctx.bcast(value, root=0)
            yield from ctx.barrier()
        return value

    def _run(self, machine_name):
        from repro.bsp import BSPEngine
        from repro.machines import get_machine

        engine = BSPEngine(4, machine=get_machine(machine_name))
        return engine.run(self._program, rank_args=[(r,) for r in range(4)])

    def test_by_op_counts_every_collective(self):
        res = self._run("dragonfly-hpc")
        assert res.stats.by_op == {"bcast": 2, "gather": 1, "barrier": 1}
        assert res.stats.collectives == 4

    def test_by_op_agrees_with_trace_counts(self):
        res = self._run("mira-like-bgq")
        for op, count in res.stats.by_op.items():
            assert res.trace.count_collectives(op) == count
        assert res.trace.count_collectives() == res.stats.collectives

    def test_stats_totals_agree_with_trace(self):
        res = self._run("cloud-ethernet")
        assert res.stats.bytes == res.trace.total_bytes()
        assert res.stats.messages == res.trace.total_messages()
        assert res.stats.comm_seconds == pytest.approx(
            sum(r.comm_seconds for r in res.trace.records)
        )

    def test_breakdown_attributes_compute_to_the_charging_phase(self):
        res = self._run("fat-tree-hpc")
        b = res.breakdown()
        assert set(b.phases()) >= {"alpha", "beta"}
        # All 100 comparisons were charged under "alpha".
        assert b.compute.get("beta", 0.0) == 0.0
        assert b.compute["alpha"] > 0.0
        assert res.makespan == pytest.approx(b.total())

    def test_contention_separates_topologies(self):
        # Same program, same scalars, different named topology: the torus
        # machine must not price identically to its flat-crossbar twin.
        from repro.bsp import BSPEngine
        from repro.machines import get_machine_spec
        import numpy as np

        def exchange_heavy(ctx, chunk):
            parts = [chunk] * ctx.nprocs
            yield from ctx.alltoall(parts)
            return None

        def run_on(topology, params):
            spec = get_machine_spec("mira-like-bgq").override(
                topology=topology, topology_params=params,
                cores_per_node=1,
            )
            engine = BSPEngine(64, machine=spec.model())
            chunk = np.arange(256, dtype=np.int64)
            return engine.run(
                exchange_heavy, rank_args=[(chunk,)] * 64
            )

        torus = run_on("torus", {"dims": 2, "base_endpoints": 4})
        flat = run_on("fully-connected", {})
        assert torus.stats.by_op == flat.stats.by_op == {"alltoallv": 1}
        assert torus.stats.bytes == flat.stats.bytes
        assert torus.makespan > flat.makespan
