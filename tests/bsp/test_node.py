"""Tests for the node layout (rank-to-node mapping)."""

import numpy as np
import pytest

from repro.bsp.node import NodeLayout
from repro.errors import ConfigError


class TestNodeLayout:
    def test_even_split(self):
        layout = NodeLayout(16, 4)
        assert layout.nnodes == 4
        assert layout.node_of(0) == 0
        assert layout.node_of(15) == 3
        assert list(layout.ranks_on_node(1)) == [4, 5, 6, 7]

    def test_ragged_last_node(self):
        layout = NodeLayout(10, 4)
        assert layout.nnodes == 3
        assert list(layout.ranks_on_node(2)) == [8, 9]
        assert np.array_equal(layout.node_sizes(), [4, 4, 2])

    def test_single_core_nodes(self):
        layout = NodeLayout(5, 1)
        assert layout.nnodes == 5
        assert layout.node_of(3) == 3

    def test_leaders(self):
        layout = NodeLayout(12, 4)
        assert layout.node_leader(2) == 8
        assert layout.is_leader(8)
        assert not layout.is_leader(9)

    def test_out_of_range(self):
        layout = NodeLayout(8, 4)
        with pytest.raises(IndexError):
            layout.node_of(8)
        with pytest.raises(IndexError):
            layout.ranks_on_node(2)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            NodeLayout(0, 4)
        with pytest.raises(ConfigError):
            NodeLayout(4, 0)

    def test_message_reduction_factor(self):
        # 64 cores in 4 nodes: p(p-1)=4032 vs n(n-1)=12 -> 336x fewer.
        layout = NodeLayout(64, 16)
        assert layout.message_reduction_factor() == pytest.approx(4032 / 12)

    def test_message_reduction_single_node(self):
        layout = NodeLayout(16, 16)
        assert layout.message_reduction_factor() >= 1.0

    def test_sizes_sum_to_nprocs(self):
        for p, c in [(7, 3), (16, 16), (100, 7)]:
            assert NodeLayout(p, c).node_sizes().sum() == p
