"""Tests for the alpha-beta collective cost model."""

import pytest

from repro.bsp.cost_model import CostModel
from repro.bsp.machine import MachineModel
from repro.machines import get_machine
from repro.bsp.network import FullyConnected, Torus
from repro.bsp.node import NodeLayout

MIRA_LIKE = get_machine("mira-like-bgq")
GENERIC_CLUSTER = get_machine("generic-cluster")
LAPTOP = get_machine("laptop")


def model(p=64, machine=None, layout=None):
    return CostModel(machine or LAPTOP, p, layout)


class TestPricingBasics:
    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            model().price("gossip", max_bytes=1, total_bytes=1)

    def test_barrier_latency_only(self):
        cost = model().price("barrier", max_bytes=0, total_bytes=0)
        assert cost.comm_seconds > 0
        assert cost.nbytes == 0

    def test_bcast_cost_grows_with_size(self):
        small = model().price("bcast", max_bytes=100, total_bytes=100)
        large = model().price("bcast", max_bytes=10**7, total_bytes=10**7)
        assert large.comm_seconds > small.comm_seconds

    def test_bcast_pipelined_beats_binomial_for_large(self):
        cost = model(p=1024).price("bcast", max_bytes=10**8, total_bytes=10**8)
        assert cost.algorithm == "pipelined"

    def test_bcast_picks_cheaper_algorithm(self):
        # Under pure alpha-beta formulas the pipelined variant dominates for
        # p > 4 (binomial pays S*beta per tree level); verify the model takes
        # the min rather than a fixed choice.
        m = LAPTOP
        cost = model(p=1024, machine=m).price("bcast", max_bytes=8, total_bytes=8)
        import math

        lg = math.log2(1024)
        binomial = (m.alpha + 8 * m.beta) * lg
        pipelined = m.alpha * lg + 2 * 8 * m.beta
        assert cost.comm_seconds == pytest.approx(min(binomial, pipelined))

    def test_reduce_charges_compute(self):
        cost = model().price("reduce", max_bytes=10**6, total_bytes=10**6)
        assert cost.compute_seconds > 0

    def test_gather_scales_with_total(self):
        small = model().price("gather", max_bytes=10, total_bytes=10 * 64)
        large = model().price("gather", max_bytes=10, total_bytes=10**7)
        assert large.comm_seconds > small.comm_seconds

    def test_monotone_in_p(self):
        costs = [
            CostModel(LAPTOP, p)
            .price("barrier", max_bytes=0, total_bytes=0)
            .comm_seconds
            for p in (2, 16, 256, 4096)
        ]
        assert costs == sorted(costs)


class TestAllToAll:
    def test_contention_on_torus(self):
        torus = MachineModel(topology=Torus(dims=3, base_endpoints=8))
        flat = MachineModel(topology=FullyConnected())
        big = 10**8
        c_torus = CostModel(torus, 4096).price(
            "alltoallv", max_bytes=big, total_bytes=big * 4096
        )
        c_flat = CostModel(flat, 4096).price(
            "alltoallv", max_bytes=big, total_bytes=big * 4096
        )
        assert c_torus.comm_seconds > c_flat.comm_seconds

    def test_bruck_chosen_for_small_messages(self):
        cost = model(p=4096).price("alltoallv", max_bytes=64, total_bytes=64 * 4096)
        assert cost.algorithm == "bruck"

    def test_pairwise_chosen_for_large_messages(self):
        cost = model(p=16).price(
            "alltoallv", max_bytes=10**8, total_bytes=16 * 10**8
        )
        assert cost.algorithm == "pairwise"

    def test_node_combining_reduces_messages(self):
        layout = NodeLayout(256, 16)
        cm = CostModel(MIRA_LIKE, 256, layout)
        combined = cm.price(
            "alltoallv", max_bytes=10**7, total_bytes=256 * 10**7, node_combining=True
        )
        separate = cm.price(
            "alltoallv", max_bytes=10**7, total_bytes=256 * 10**7, node_combining=False
        )
        assert combined.messages < separate.messages
        assert combined.endpoints == 16
        assert separate.endpoints == 256


class TestNodeScope:
    def test_node_scope_cheaper_than_network(self):
        cm = model(p=64)
        net = cm.price("allreduce", max_bytes=10**6, total_bytes=10**6)
        shm = cm.price(
            "allreduce", max_bytes=10**6, total_bytes=10**6, scope="node", group_size=8
        )
        assert shm.comm_seconds < net.comm_seconds

    def test_node_scope_zero_network_traffic(self):
        cost = model().price(
            "gather", max_bytes=100, total_bytes=800, scope="node", group_size=8
        )
        assert cost.messages == 0 and cost.nbytes == 0
        assert cost.algorithm == "shared-memory"

    def test_node_scope_requires_group_size(self):
        with pytest.raises(ValueError, match="group_size"):
            model().price("barrier", max_bytes=0, total_bytes=0, scope="node")

    def test_unknown_scope(self):
        with pytest.raises(ValueError, match="scope"):
            model().price("barrier", max_bytes=0, total_bytes=0, scope="rack")


class TestCommStats:
    def test_record_accumulates(self):
        from repro.bsp.cost_model import CommStats

        stats = CommStats()
        cost = model().price("bcast", max_bytes=80, total_bytes=80)
        stats.record("bcast", cost)
        stats.record("bcast", cost)
        assert stats.collectives == 2
        assert stats.by_op == {"bcast": 2}
        assert stats.bytes == 2 * cost.nbytes


class TestEndpoints:
    def test_endpoints_with_and_without_combining(self):
        layout = NodeLayout(64, 16)
        cm = CostModel(MIRA_LIKE, 64, layout)
        assert cm.endpoints(True) == 4
        assert cm.endpoints(False) == 64

    def test_endpoints_without_layout(self):
        cm = CostModel(LAPTOP, 64, None)
        assert cm.endpoints(True) == 64


class TestMachinePresets:
    def test_presets_valid(self):
        for machine in (MIRA_LIKE, GENERIC_CLUSTER, LAPTOP):
            assert machine.alpha >= 0
            assert machine.nodes_for(100) >= 1

    def test_with_override(self):
        faster = MIRA_LIKE.with_(alpha=1e-9)
        assert faster.alpha == 1e-9
        assert faster.beta == MIRA_LIKE.beta

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1.0)
        with pytest.raises(ValueError):
            MachineModel(cores_per_node=0)

    def test_conversions(self):
        assert LAPTOP.compare_seconds(10) == pytest.approx(10 * LAPTOP.gamma_compare)
        assert LAPTOP.copy_seconds(100) == pytest.approx(100 * LAPTOP.gamma_byte)
        assert LAPTOP.transfer_seconds(100, 2.0) == pytest.approx(
            200 * LAPTOP.beta
        )


class TestResolvedFallbacks:
    """The "0 means inherit" rules live in one place: MachineModel.resolved."""

    def test_zeros_resolve_to_source_fields(self):
        m = MachineModel(
            gamma_compare=3e-9, gamma_key_compare=0.0,
            alpha=5e-6, node_alpha=0.0,
        )
        r = m.resolved()
        assert r.gamma_key_compare == m.gamma_compare
        assert r.node_alpha == m.alpha

    def test_explicit_values_pass_through(self):
        m = MachineModel(gamma_key_compare=7e-10, node_alpha=3e-7)
        assert m.resolved() is m  # nothing to resolve: same object

    def test_resolved_is_idempotent_and_cached(self):
        m = MachineModel(gamma_key_compare=0.0)
        r = m.resolved()
        assert r.resolved() is r
        assert m.resolved() is r

    def test_zeroed_spec_prices_identically_to_explicit(self):
        """Regression: derived-field zeros must price like spelled-out values.

        Before centralization each use site re-implemented its own
        fallback (or forgot to): node-scoped collectives priced
        node_alpha=0 as literally free latency while key comparisons
        inherited gamma_compare.
        """
        zeroed = MachineModel(
            alpha=4e-6, gamma_compare=2e-9,
            gamma_key_compare=0.0, node_alpha=0.0,
        )
        explicit = zeroed.with_(gamma_key_compare=2e-9, node_alpha=4e-6)
        layout = NodeLayout(64, 16)
        ops = [
            ("bcast", dict(max_bytes=4096, total_bytes=4096)),
            ("alltoallv", dict(max_bytes=8192, total_bytes=8192 * 64)),
            ("reduce", dict(max_bytes=1024, total_bytes=1024)),
            ("gather", dict(max_bytes=512, total_bytes=512 * 64,
                            scope="node", group_size=16)),
            ("alltoall", dict(max_bytes=2048, total_bytes=2048 * 16,
                              scope="node", group_size=16)),
            ("barrier", dict(max_bytes=0, total_bytes=0,
                             scope="node", group_size=16)),
        ]
        for op, kwargs in ops:
            a = CostModel(zeroed, 64, layout).price(op, **kwargs)
            b = CostModel(explicit, 64, layout).price(op, **kwargs)
            assert a == b, op
        assert zeroed.key_compare_seconds(1000) == pytest.approx(
            explicit.key_compare_seconds(1000)
        )

    def test_cost_model_keeps_the_unresolved_machine_visible(self):
        m = MachineModel(gamma_key_compare=0.0)
        cm = CostModel(m, 8)
        assert cm.machine is m
