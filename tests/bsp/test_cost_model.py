"""Tests for the alpha-beta collective cost model."""

import pytest

from repro.bsp.cost_model import CostModel
from repro.bsp.machine import GENERIC_CLUSTER, LAPTOP, MIRA_LIKE, MachineModel
from repro.bsp.network import FullyConnected, Torus
from repro.bsp.node import NodeLayout


def model(p=64, machine=None, layout=None):
    return CostModel(machine or LAPTOP, p, layout)


class TestPricingBasics:
    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            model().price("gossip", max_bytes=1, total_bytes=1)

    def test_barrier_latency_only(self):
        cost = model().price("barrier", max_bytes=0, total_bytes=0)
        assert cost.comm_seconds > 0
        assert cost.nbytes == 0

    def test_bcast_cost_grows_with_size(self):
        small = model().price("bcast", max_bytes=100, total_bytes=100)
        large = model().price("bcast", max_bytes=10**7, total_bytes=10**7)
        assert large.comm_seconds > small.comm_seconds

    def test_bcast_pipelined_beats_binomial_for_large(self):
        cost = model(p=1024).price("bcast", max_bytes=10**8, total_bytes=10**8)
        assert cost.algorithm == "pipelined"

    def test_bcast_picks_cheaper_algorithm(self):
        # Under pure alpha-beta formulas the pipelined variant dominates for
        # p > 4 (binomial pays S*beta per tree level); verify the model takes
        # the min rather than a fixed choice.
        m = LAPTOP
        cost = model(p=1024, machine=m).price("bcast", max_bytes=8, total_bytes=8)
        import math

        lg = math.log2(1024)
        binomial = (m.alpha + 8 * m.beta) * lg
        pipelined = m.alpha * lg + 2 * 8 * m.beta
        assert cost.comm_seconds == pytest.approx(min(binomial, pipelined))

    def test_reduce_charges_compute(self):
        cost = model().price("reduce", max_bytes=10**6, total_bytes=10**6)
        assert cost.compute_seconds > 0

    def test_gather_scales_with_total(self):
        small = model().price("gather", max_bytes=10, total_bytes=10 * 64)
        large = model().price("gather", max_bytes=10, total_bytes=10**7)
        assert large.comm_seconds > small.comm_seconds

    def test_monotone_in_p(self):
        costs = [
            CostModel(LAPTOP, p)
            .price("barrier", max_bytes=0, total_bytes=0)
            .comm_seconds
            for p in (2, 16, 256, 4096)
        ]
        assert costs == sorted(costs)


class TestAllToAll:
    def test_contention_on_torus(self):
        torus = MachineModel(topology=Torus(dims=3, base_endpoints=8))
        flat = MachineModel(topology=FullyConnected())
        big = 10**8
        c_torus = CostModel(torus, 4096).price(
            "alltoallv", max_bytes=big, total_bytes=big * 4096
        )
        c_flat = CostModel(flat, 4096).price(
            "alltoallv", max_bytes=big, total_bytes=big * 4096
        )
        assert c_torus.comm_seconds > c_flat.comm_seconds

    def test_bruck_chosen_for_small_messages(self):
        cost = model(p=4096).price("alltoallv", max_bytes=64, total_bytes=64 * 4096)
        assert cost.algorithm == "bruck"

    def test_pairwise_chosen_for_large_messages(self):
        cost = model(p=16).price(
            "alltoallv", max_bytes=10**8, total_bytes=16 * 10**8
        )
        assert cost.algorithm == "pairwise"

    def test_node_combining_reduces_messages(self):
        layout = NodeLayout(256, 16)
        cm = CostModel(MIRA_LIKE, 256, layout)
        combined = cm.price(
            "alltoallv", max_bytes=10**7, total_bytes=256 * 10**7, node_combining=True
        )
        separate = cm.price(
            "alltoallv", max_bytes=10**7, total_bytes=256 * 10**7, node_combining=False
        )
        assert combined.messages < separate.messages
        assert combined.endpoints == 16
        assert separate.endpoints == 256


class TestNodeScope:
    def test_node_scope_cheaper_than_network(self):
        cm = model(p=64)
        net = cm.price("allreduce", max_bytes=10**6, total_bytes=10**6)
        shm = cm.price(
            "allreduce", max_bytes=10**6, total_bytes=10**6, scope="node", group_size=8
        )
        assert shm.comm_seconds < net.comm_seconds

    def test_node_scope_zero_network_traffic(self):
        cost = model().price(
            "gather", max_bytes=100, total_bytes=800, scope="node", group_size=8
        )
        assert cost.messages == 0 and cost.nbytes == 0
        assert cost.algorithm == "shared-memory"

    def test_node_scope_requires_group_size(self):
        with pytest.raises(ValueError, match="group_size"):
            model().price("barrier", max_bytes=0, total_bytes=0, scope="node")

    def test_unknown_scope(self):
        with pytest.raises(ValueError, match="scope"):
            model().price("barrier", max_bytes=0, total_bytes=0, scope="rack")


class TestCommStats:
    def test_record_accumulates(self):
        from repro.bsp.cost_model import CommStats

        stats = CommStats()
        cost = model().price("bcast", max_bytes=80, total_bytes=80)
        stats.record("bcast", cost)
        stats.record("bcast", cost)
        assert stats.collectives == 2
        assert stats.by_op == {"bcast": 2}
        assert stats.bytes == 2 * cost.nbytes


class TestEndpoints:
    def test_endpoints_with_and_without_combining(self):
        layout = NodeLayout(64, 16)
        cm = CostModel(MIRA_LIKE, 64, layout)
        assert cm.endpoints(True) == 4
        assert cm.endpoints(False) == 64

    def test_endpoints_without_layout(self):
        cm = CostModel(LAPTOP, 64, None)
        assert cm.endpoints(True) == 64


class TestMachinePresets:
    def test_presets_valid(self):
        for machine in (MIRA_LIKE, GENERIC_CLUSTER, LAPTOP):
            assert machine.alpha >= 0
            assert machine.nodes_for(100) >= 1

    def test_with_override(self):
        faster = MIRA_LIKE.with_(alpha=1e-9)
        assert faster.alpha == 1e-9
        assert faster.beta == MIRA_LIKE.beta

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1.0)
        with pytest.raises(ValueError):
            MachineModel(cores_per_node=0)

    def test_conversions(self):
        assert LAPTOP.compare_seconds(10) == pytest.approx(10 * LAPTOP.gamma_compare)
        assert LAPTOP.copy_seconds(100) == pytest.approx(100 * LAPTOP.gamma_byte)
        assert LAPTOP.transfer_seconds(100, 2.0) == pytest.approx(
            200 * LAPTOP.beta
        )
