"""Tests for the BSP SPMD engine: rendezvous, SPMD checks, cost accounting."""

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.machines import get_machine
from repro.errors import BSPError, CollectiveMismatchError, DeadlockError

LAPTOP = get_machine("laptop")


def run(engine, program, args=None, **kw):
    return engine.run(program, rank_args=args, **kw)


class TestBasics:
    def test_returns_per_rank(self):
        def program(ctx):
            yield from ctx.barrier()
            return ctx.rank * 10

        res = run(BSPEngine(4), program)
        assert res.returns == [0, 10, 20, 30]

    def test_single_rank(self):
        def program(ctx):
            total = yield from ctx.allreduce(5)
            return total

        assert run(BSPEngine(1), program).returns == [5]

    def test_no_collectives_program(self):
        def program(ctx):
            ctx.charge_seconds(1e-6)
            return ctx.rank
            yield  # pragma: no cover — makes this a generator

        res = run(BSPEngine(3), program)
        assert res.returns == [0, 1, 2]
        assert res.makespan >= 1e-6

    def test_rank_args(self):
        def program(ctx, a, b):
            s = yield from ctx.allreduce(a + b)
            return s

        res = run(BSPEngine(2), program, args=[(1, 2), (3, 4)])
        assert res.returns == [10, 10]

    def test_shared_kwargs(self):
        def program(ctx, *, offset):
            yield from ctx.barrier()
            return ctx.rank + offset

        res = BSPEngine(2).run(program, offset=100)
        assert res.returns == [100, 101]

    def test_plain_function_rejected(self):
        def not_a_generator(ctx):
            return 1

        with pytest.raises(BSPError, match="generator"):
            run(BSPEngine(2), not_a_generator)

    def test_wrong_rank_args_length(self):
        def program(ctx):
            yield from ctx.barrier()

        with pytest.raises(BSPError, match="length"):
            run(BSPEngine(3), program, args=[()])

    def test_zero_ranks_rejected(self):
        with pytest.raises(BSPError):
            BSPEngine(0)


class TestCollectiveSemantics:
    def test_bcast_gather_roundtrip(self):
        def program(ctx):
            value = yield from ctx.bcast(
                "hello" if ctx.rank == 0 else None, root=0
            )
            gathered = yield from ctx.gather(ctx.rank, root=0)
            return value, gathered

        res = run(BSPEngine(3), program)
        assert res.returns[1][0] == "hello"
        assert res.returns[0][1] == [0, 1, 2]
        assert res.returns[2][1] is None

    def test_allreduce_array(self):
        def program(ctx):
            out = yield from ctx.allreduce(np.full(3, ctx.rank))
            return out

        res = run(BSPEngine(4), program)
        assert np.array_equal(res.returns[2], np.full(3, 6))

    def test_scan(self):
        def program(ctx):
            out = yield from ctx.scan(1)
            return out

        assert run(BSPEngine(5), program).returns == [1, 2, 3, 4, 5]

    def test_scatter(self):
        def program(ctx):
            chunk = yield from ctx.scatter(
                list(range(100, 104)) if ctx.rank == 0 else None, root=0
            )
            return chunk

        assert run(BSPEngine(4), program).returns == [100, 101, 102, 103]

    def test_alltoall(self):
        def program(ctx):
            out = yield from ctx.alltoall(
                [ctx.rank * 10 + dst for dst in range(ctx.nprocs)]
            )
            return out

        res = run(BSPEngine(3), program)
        assert res.returns[1] == [1, 11, 21]

    def test_exchange(self):
        def program(ctx):
            partner = ctx.rank ^ 1
            theirs = yield from ctx.exchange(partner, ctx.rank * 2)
            return theirs

        assert run(BSPEngine(4), program).returns == [2, 0, 6, 4]


class TestSPMDEnforcement:
    def test_mismatched_ops(self):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.barrier()
            else:
                yield from ctx.allreduce(1)

        with pytest.raises(CollectiveMismatchError):
            run(BSPEngine(2), program)

    def test_mismatched_roots(self):
        def program(ctx):
            yield from ctx.bcast(1, root=ctx.rank % 2)

        with pytest.raises(CollectiveMismatchError):
            run(BSPEngine(2), program)

    def test_early_finisher_deadlocks(self):
        def program(ctx):
            if ctx.rank == 0:
                return 0
            yield from ctx.barrier()
            return 1

        with pytest.raises(DeadlockError, match="finished"):
            run(BSPEngine(3), program)

    def test_yielding_garbage_rejected(self):
        def program(ctx):
            yield "not a call"

        with pytest.raises(BSPError, match="yield"):
            run(BSPEngine(2), program)

    def test_rank_exception_propagates(self):
        class Boom(RuntimeError):
            pass

        def program(ctx):
            yield from ctx.barrier()
            if ctx.rank == 1:
                raise Boom("rank 1 failed")
            yield from ctx.barrier()

        with pytest.raises(Boom):
            run(BSPEngine(2), program)


class TestStructuredDiagnostics:
    """SPMD violations name the superstep and the ranks involved.

    The chaos backend leans on these fields to attribute injected
    faults; the service layer's structured error replies lean on the
    message text.  Both the prose and the machine-readable attributes
    are pinned here.
    """

    def test_deadlock_names_superstep_and_rank_sets(self):
        def program(ctx):
            yield from ctx.barrier()
            if ctx.rank == 2:
                return "early"
            yield from ctx.allreduce(1)

        with pytest.raises(DeadlockError) as info:
            run(BSPEngine(4), program)
        message = str(info.value)
        assert message.startswith("superstep 1: ")
        assert "ranks [2] finished" in message
        assert "ranks [0, 1, 3] wait on 'allreduce'" in message
        assert "not SPMD" in message
        assert info.value.superstep == 1
        assert info.value.finished_ranks == (2,)
        assert info.value.stuck_ranks == (0, 1, 3)

    def test_mismatch_names_superstep_and_disagreeing_ranks(self):
        def program(ctx):
            if ctx.rank == 1:
                yield from ctx.gather(1, root=0)
            else:
                yield from ctx.bcast(1, root=0)

        with pytest.raises(CollectiveMismatchError) as info:
            run(BSPEngine(3), program)
        assert "disagreeing ranks [1]" in str(info.value)
        assert info.value.superstep == 0
        assert 1 in info.value.ranks

    def test_mismatched_roots_report_disagreement(self):
        def program(ctx):
            yield from ctx.bcast(1, root=ctx.rank % 2)

        with pytest.raises(CollectiveMismatchError) as info:
            run(BSPEngine(4), program)
        assert info.value.superstep == 0
        assert info.value.ranks  # the minority root holders are named


class TestCostAccounting:
    def test_compute_charges_appear_in_makespan(self):
        def program(ctx):
            ctx.charge_seconds(1e-3)
            yield from ctx.barrier()

        res = run(BSPEngine(2), program)
        assert res.makespan >= 1e-3

    def test_superstep_takes_max_not_sum(self):
        def program(ctx):
            ctx.charge_seconds(1e-3 if ctx.rank == 0 else 1e-6)
            yield from ctx.barrier()

        res = run(BSPEngine(4), program)
        compute = sum(r.compute_seconds for r in res.trace)
        assert 1e-3 <= compute < 1.5e-3

    def test_negative_charge_rejected(self):
        def program(ctx):
            ctx.charge_seconds(-1.0)
            yield from ctx.barrier()

        with pytest.raises(BSPError, match="negative"):
            run(BSPEngine(1), program)

    def test_phase_attribution(self):
        def program(ctx):
            with ctx.phase("alpha"):
                ctx.charge_seconds(1e-4)
                yield from ctx.barrier()
            with ctx.phase("beta"):
                ctx.charge_seconds(2e-4)
            yield from ctx.barrier()

        res = run(BSPEngine(2), program)
        breakdown = res.breakdown()
        assert breakdown.compute["alpha"] == pytest.approx(1e-4)
        assert breakdown.compute["beta"] == pytest.approx(2e-4)

    def test_charge_helpers_scale_with_machine(self):
        def program(ctx):
            ctx.charge_sort(1000)
            ctx.charge_merge(1000, 4)
            ctx.charge_binary_searches(10, 1000)
            yield from ctx.barrier()

        res = run(BSPEngine(1, machine=LAPTOP), program)
        assert res.makespan > 0

    def test_message_and_byte_stats(self):
        def program(ctx):
            yield from ctx.bcast(np.zeros(100, np.int64), root=0)

        res = run(BSPEngine(4), program)
        assert res.stats.collectives == 1
        assert res.stats.messages == 3
        assert res.stats.bytes == 800 * 3

    def test_trailing_compute_recorded(self):
        def program(ctx):
            yield from ctx.barrier()
            with ctx.phase("tail"):
                ctx.charge_seconds(5e-4)

        res = run(BSPEngine(2), program)
        assert res.breakdown().compute.get("tail", 0) == pytest.approx(5e-4)


class TestNodeCommunicators:
    def engine(self, p=8, cores=4):
        return BSPEngine(p, machine=LAPTOP.with_(cores_per_node=cores))

    def test_node_allreduce(self):
        def program(ctx):
            node = ctx.node_comm()
            s = yield from node.allreduce(ctx.rank)
            return node.node, s

        res = run(self.engine(), program)
        assert res.returns[0] == (0, 0 + 1 + 2 + 3)
        assert res.returns[7] == (1, 4 + 5 + 6 + 7)

    def test_node_local_ranks(self):
        def program(ctx):
            node = ctx.node_comm()
            yield from node.barrier()
            return node.rank, node.nprocs, node.global_rank

        res = run(self.engine(6, 4), program)
        assert res.returns[5] == (1, 2, 5)  # last node has 2 cores

    def test_node_gather_rooted_at_leader(self):
        def program(ctx):
            node = ctx.node_comm()
            got = yield from node.gather(ctx.rank, root=0)
            return got

        res = run(self.engine(), program)
        assert res.returns[0] == [0, 1, 2, 3]
        assert res.returns[4] == [4, 5, 6, 7]
        assert res.returns[1] is None

    def test_node_collectives_inject_no_network_messages(self):
        def program(ctx):
            node = ctx.node_comm()
            yield from node.allreduce(1)

        res = run(self.engine(), program)
        assert res.stats.messages == 0
        assert res.stats.bytes == 0

    def test_node_scope_is_concurrent_across_nodes(self):
        def program(ctx):
            node = ctx.node_comm()
            ctx.charge_seconds(1e-3)
            yield from node.barrier()

        res = run(self.engine(8, 4), program)
        # Two node groups, same sweep: makespan counts the max, not 2x.
        compute = sum(r.compute_seconds for r in res.trace)
        assert compute == pytest.approx(1e-3)

    def test_global_and_node_mix_in_same_sweep_rejected(self):
        def program(ctx):
            if ctx.rank < 4:
                node = ctx.node_comm()
                yield from node.barrier()
            else:
                yield from ctx.barrier()

        with pytest.raises((CollectiveMismatchError, DeadlockError)):
            run(self.engine(), program)

    def test_node_comm_requires_layout(self):
        def program(ctx):
            node = ctx.node_comm()
            yield from node.barrier()

        eng = BSPEngine(4, machine=LAPTOP.with_(cores_per_node=1))
        with pytest.raises(BSPError, match="NodeLayout"):
            run(eng, program)

    def test_node_charges_flow_to_parent(self):
        def program(ctx):
            node = ctx.node_comm()
            with ctx.phase("inner"):
                node.charge_seconds(1e-4)
            yield from ctx.barrier()

        res = run(self.engine(), program)
        assert res.breakdown().compute["inner"] == pytest.approx(1e-4)
