"""Tests for interconnect topology models."""

import pytest

from repro.bsp.network import FatTree, FullyConnected, Torus


class TestFullyConnected:
    def test_no_contention(self):
        net = FullyConnected()
        assert net.alltoall_contention(2) == 1.0
        assert net.alltoall_contention(10**6) == 1.0
        assert net.diameter(1000) == 1


class TestTorus:
    def test_contention_free_below_base(self):
        net = Torus(dims=5, base_endpoints=64)
        assert net.alltoall_contention(64) == 1.0
        assert net.alltoall_contention(10) == 1.0

    def test_contention_grows_as_root(self):
        net = Torus(dims=5, base_endpoints=1)
        assert net.alltoall_contention(32) == pytest.approx(2.0)
        assert net.alltoall_contention(1024) == pytest.approx(4.0)

    def test_lower_dims_contend_more(self):
        t3 = Torus(dims=3, base_endpoints=1)
        t5 = Torus(dims=5, base_endpoints=1)
        assert t3.alltoall_contention(4096) > t5.alltoall_contention(4096)

    def test_diameter_positive_and_growing(self):
        net = Torus(dims=3)
        assert net.diameter(8) >= 1
        assert net.diameter(4096) > net.diameter(8)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Torus(dims=0)
        with pytest.raises(ValueError):
            Torus(base_endpoints=0)

    def test_describe(self):
        assert "5-D" in Torus(dims=5).describe()


class TestFatTree:
    def test_full_bisection(self):
        assert FatTree(bisection=1.0).alltoall_contention(10**5) == 1.0

    def test_tapered(self):
        assert FatTree(bisection=0.5).alltoall_contention(64) == 2.0

    def test_contention_independent_of_n(self):
        net = FatTree(bisection=0.25)
        assert net.alltoall_contention(16) == net.alltoall_contention(16384)

    def test_invalid_bisection(self):
        with pytest.raises(ValueError):
            FatTree(bisection=0.0)
        with pytest.raises(ValueError):
            FatTree(bisection=1.5)

    def test_diameter(self):
        assert FatTree().diameter(1024) >= 1
