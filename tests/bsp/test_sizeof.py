"""Fast-path ``sizeof`` must agree with the recursive reference walk.

``sizeof`` dispatches through a per-type cache with batched fast paths for
the payload shapes the engine actually ships (ndarrays, scalars, flat
homogeneous sequences); ``sizeof_reference`` is the original recursive
definition.  Any divergence silently skews every byte count in the cost
model, so equivalence is pinned here across the whole payload zoo.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.bsp.collectives import sizeof, sizeof_reference


@dataclass
class Fragment:
    keys: np.ndarray
    origin: int
    label: str


class SlotsOnly:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a = 1
        self.b = np.zeros(3)


class IntSubclass(int):
    pass


class ListSubclass(list):
    pass


RECORD_DTYPE = np.dtype([("mass", "<f8"), ("id", "<u4")])

PAYLOADS = [
    None,
    0,
    3,
    -17,
    3.5,
    True,
    False,
    2 + 3j,
    np.int64(7),
    np.float32(1.5),
    np.bool_(True),
    "",
    "ascii",
    "ünïcödé",
    b"bytes",
    bytearray(b"1234"),
    memoryview(b"123456"),
    np.zeros(0),
    np.zeros(10, dtype=np.int64),
    np.zeros((3, 4), dtype=np.float32),
    np.arange(6, dtype=np.uint8).reshape(2, 3),
    np.zeros(5, dtype=RECORD_DTYPE),
    np.zeros(0, dtype=RECORD_DTYPE),
    np.zeros(3, dtype=RECORD_DTYPE)[0],  # np.void structured scalar
    [np.zeros(3, dtype=RECORD_DTYPE)[i] for i in range(3)],  # flat void seq
    [np.zeros(2, dtype=RECORD_DTYPE), np.zeros(4, dtype=RECORD_DTYPE)],
    np.void(b"\x00\x01\x02"),  # raw void, no fields
    [],
    [1, 2, 3],
    [1.0, 2.0],
    [True, False, True],
    [np.int64(1), np.int64(2)],
    [np.zeros(2, np.int64), np.ones(5, np.float64)],
    [np.zeros(2, np.int64), 1],  # mixed: ndarray + scalar
    [1, 2.5],  # mixed scalar types
    [[1, 2], [3, [4, 5]]],  # nested lists
    [[np.zeros(4)], [np.zeros(2), np.zeros(1)]],
    (1, 2, 3),
    (None, None),
    ("a", "bb", "ccc"),
    {1, 2, 3},
    frozenset({1.0, 2.0}),
    {"a": 1},
    {"key": np.zeros(8), "nested": {"x": [1, 2]}},
    {1: "one", 2.0: b"two"},
    Fragment(keys=np.zeros(16, np.int64), origin=3, label="shard"),
    [Fragment(np.zeros(2, np.int64), 0, "x"), Fragment(np.zeros(3, np.int64), 1, "y")],
    SlotsOnly(),
    IntSubclass(5),
    ListSubclass([1, 2, 3]),
    object(),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
def test_fast_path_matches_reference(payload):
    assert sizeof(payload) == sizeof_reference(payload)


class TestKnownSizes:
    """Absolute anchors so both implementations can't drift together."""

    def test_ndarray_buffer_bytes(self):
        assert sizeof(np.zeros(10, dtype=np.int64)) == 80
        assert sizeof(np.zeros((3, 4), dtype=np.float32)) == 48

    def test_scalars_are_one_word(self):
        assert sizeof(3) == sizeof(3.5) == sizeof(np.int64(1)) == 8

    def test_flat_scalar_sequence_batches(self):
        assert sizeof([1] * 1000) == 8000
        assert sizeof((2.5,) * 7) == 56

    def test_flat_ndarray_sequence_batches(self):
        rows = [np.zeros(k, dtype=np.int64) for k in (1, 2, 3)]
        assert sizeof(rows) == 8 * 6

    def test_dataclass_counts_attributes(self):
        frag = Fragment(keys=np.zeros(4, np.int64), origin=1, label="ab")
        assert sizeof(frag) == 32 + 8 + 2

    def test_dict_counts_keys_and_values(self):
        assert sizeof({"a": 1}) == 9

    def test_structured_array_counts_record_bytes(self):
        # 12-byte records (f8 + u4): the cost model must price real record
        # bytes, not 8 bytes per element.
        recs = np.zeros(10, dtype=RECORD_DTYPE)
        assert sizeof(recs) == 120
        assert sizeof(recs[0]) == 12  # np.void scalar row
        assert sizeof([recs[0], recs[1]]) == 24

    def test_dispatch_cache_handles_new_types(self):
        class Fresh:
            def __init__(self):
                self.x = np.zeros(2, np.int64)

        # First call resolves and memoizes, second call hits the cache;
        # both must agree with the reference.
        assert sizeof(Fresh()) == sizeof_reference(Fresh()) == 16
        assert sizeof(Fresh()) == 16
