"""Tests for collective data semantics (resolve) and payload sizing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bsp.collectives import resolve, sizeof
from repro.errors import BSPError, CollectiveMismatchError


class TestSizeof:
    def test_none(self):
        assert sizeof(None) == 0

    def test_numpy_exact(self):
        assert sizeof(np.zeros(10, dtype=np.int64)) == 80
        assert sizeof(np.zeros((3, 4), dtype=np.float32)) == 48

    def test_scalars(self):
        assert sizeof(3) == 8
        assert sizeof(3.5) == 8
        assert sizeof(np.int64(1)) == 8

    def test_containers(self):
        assert sizeof([np.zeros(2, np.int64), 1]) == 24
        assert sizeof({"a": 1}) == 9
        assert sizeof((None, None)) == 0

    def test_strings_bytes(self):
        assert sizeof("abc") == 3
        assert sizeof(b"abcd") == 4


class TestBarrierBcast:
    def test_barrier(self):
        r = resolve("barrier", [None] * 4, 0)
        assert r.results == [None] * 4

    def test_bcast_from_root(self):
        r = resolve("bcast", [42, None, None], 0)
        assert r.results == [42, 42, 42]

    def test_bcast_nonzero_root(self):
        r = resolve("bcast", [None, None, "hi"], 2)
        assert r.results == ["hi", "hi", "hi"]
        assert r.max_bytes == 2


class TestGatherScatter:
    def test_gather(self):
        r = resolve("gather", [10, 11, 12], 1)
        assert r.results[1] == [10, 11, 12]
        assert r.results[0] is None and r.results[2] is None

    def test_allgather(self):
        r = resolve("allgather", ["a", "b"], 0)
        assert r.results[0] == ["a", "b"] and r.results[1] == ["a", "b"]

    def test_scatter(self):
        r = resolve("scatter", [[5, 6, 7], None, None], 0)
        assert r.results == [5, 6, 7]

    def test_scatter_wrong_length(self):
        with pytest.raises(BSPError, match="length-3"):
            resolve("scatter", [[5, 6], None, None], 0)


class TestReductions:
    def test_reduce_sum_scalars(self):
        r = resolve("reduce", [1, 2, 3], 0)
        assert r.results[0] == 6 and r.results[1] is None

    def test_reduce_arrays(self):
        arrays = [np.arange(4), np.arange(4), np.arange(4)]
        r = resolve("reduce", arrays, 0)
        assert np.array_equal(r.results[0], 3 * np.arange(4))

    def test_reduce_does_not_mutate_inputs(self):
        a = np.ones(3)
        resolve("reduce", [a, np.ones(3)], 0)
        assert np.array_equal(a, np.ones(3))

    def test_reduce_min_max(self):
        assert resolve("reduce", [5, 1, 3], 0, reduce_op="min").results[0] == 1
        assert resolve("reduce", [5, 1, 3], 0, reduce_op="max").results[0] == 5

    def test_allreduce(self):
        r = resolve("allreduce", [1, 2], 0)
        assert r.results == [3, 3]

    def test_unknown_op(self):
        with pytest.raises(BSPError, match="reduction"):
            resolve("reduce", [1, 2], 0, reduce_op="prod")

    def test_scan_inclusive(self):
        r = resolve("scan", [1, 2, 3, 4], 0)
        assert r.results == [1, 3, 6, 10]

    def test_scan_arrays_independent(self):
        arrays = [np.ones(2) for _ in range(3)]
        r = resolve("scan", arrays, 0)
        r.results[2][0] = 99  # mutating one result must not alias others
        assert r.results[1][0] == 2


class TestAllToAll:
    def test_transpose_semantics(self):
        payloads = [[f"{src}->{dst}" for dst in range(3)] for src in range(3)]
        r = resolve("alltoall", payloads, 0)
        for dst in range(3):
            assert r.results[dst] == [f"{src}->{dst}" for src in range(3)]

    def test_bad_row_length(self):
        with pytest.raises(BSPError, match="length-2"):
            resolve("alltoall", [[1], [1, 2]], 0)

    def test_byte_accounting(self):
        payloads = [
            [np.zeros(1, np.int64), np.zeros(2, np.int64)],
            [np.zeros(3, np.int64), np.zeros(4, np.int64)],
        ]
        r = resolve("alltoallv", payloads, 0)
        assert r.total_bytes == 8 * 10
        # rank 1 sends 7*8 and receives 6*8 -> max is rank1's 13*8 = 104.
        assert r.max_bytes == 104

    @given(st.integers(2, 6))
    def test_conservation(self, p):
        rng = np.random.default_rng(p)
        payloads = [
            [rng.integers(0, 100, rng.integers(0, 5)) for _ in range(p)]
            for _ in range(p)
        ]
        r = resolve("alltoallv", payloads, 0)
        sent = sorted(
            x for row in payloads for arr in row for x in arr.tolist()
        )
        got = sorted(
            x for row in r.results for arr in row for x in arr.tolist()
        )
        assert sent == got


class TestExchange:
    def test_symmetric_swap(self):
        r = resolve("exchange", ["a", "b", "c", "d"], 0, partners=[1, 0, 3, 2])
        assert r.results == ["b", "a", "d", "c"]

    def test_self_partner(self):
        r = resolve("exchange", ["x", "y"], 0, partners=[0, 1])
        assert r.results == ["x", "y"]

    def test_asymmetric_raises(self):
        with pytest.raises(CollectiveMismatchError, match="asymmetric"):
            resolve("exchange", ["a", "b", "c"], 0, partners=[1, 2, 0])

    def test_out_of_range_partner(self):
        with pytest.raises(CollectiveMismatchError, match="invalid"):
            resolve("exchange", ["a", "b"], 0, partners=[5, 0])

    def test_missing_partners(self):
        with pytest.raises(BSPError, match="partners"):
            resolve("exchange", ["a", "b"], 0)


def test_unknown_collective():
    with pytest.raises(BSPError, match="unknown collective"):
        resolve("gossip", [1, 2], 0)
