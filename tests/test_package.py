"""Package-level sanity: imports, exports, version, registry coherence."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.bsp",
    "repro.core",
    "repro.baselines",
    "repro.sampling",
    "repro.theory",
    "repro.workloads",
    "repro.metrics",
    "repro.perf",
    "repro.utils",
    "repro.bench",
    "repro.cli",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_api(self):
        assert callable(repro.hss_sort)
        assert callable(repro.parallel_sort)
        assert "hss" in repro.ALGORITHMS


class TestRegistryCoherence:
    def test_registry_matches_docstring_table(self):
        """Every algorithm listed in the parallel_sort docstring exists."""
        import repro.core.api as api

        doc = api.__doc__
        for name in api.ALGORITHMS:
            assert f"``{name}``" in doc, f"{name} undocumented in repro.core.api"

    def test_thirteen_algorithms(self):
        assert len(repro.ALGORITHMS) == 13
