"""Tests for output verification predicates."""

import numpy as np
import pytest

from repro.errors import LoadBalanceError, VerificationError
from repro.metrics.verify import (
    check_globally_sorted,
    check_load_balance,
    check_permutation,
    load_imbalance,
    verify_sorted_output,
)


class TestGloballySorted:
    def test_accepts_sorted(self):
        check_globally_sorted([np.array([1, 2]), np.array([3, 4])])

    def test_accepts_empty_shards(self):
        check_globally_sorted(
            [np.array([1, 2]), np.array([], dtype=np.int64), np.array([3])]
        )

    def test_rejects_local_disorder(self):
        with pytest.raises(VerificationError, match="locally"):
            check_globally_sorted([np.array([2, 1])])

    def test_rejects_cross_shard_disorder(self):
        with pytest.raises(VerificationError, match="below"):
            check_globally_sorted([np.array([5, 6]), np.array([4, 7])])

    def test_boundary_equality_allowed(self):
        check_globally_sorted([np.array([1, 3]), np.array([3, 4])])


class TestPermutation:
    def test_accepts_rearrangement(self):
        check_permutation(
            [np.array([3, 1]), np.array([2])],
            [np.array([1, 2]), np.array([3])],
        )

    def test_rejects_lost_key(self):
        with pytest.raises(VerificationError, match="count"):
            check_permutation([np.array([1, 2])], [np.array([1])])

    def test_rejects_changed_key(self):
        with pytest.raises(VerificationError, match="permutation"):
            check_permutation([np.array([1, 2])], [np.array([1, 3])])

    def test_duplicates_counted(self):
        with pytest.raises(VerificationError):
            check_permutation([np.array([1, 1, 2])], [np.array([1, 2, 2])])

    def test_empty(self):
        check_permutation(
            [np.array([], dtype=np.int64)], [np.array([], dtype=np.int64)]
        )


class TestLoadBalance:
    def test_within_cap(self):
        check_load_balance([np.zeros(10), np.zeros(11)], eps=0.1)

    def test_violation(self):
        with pytest.raises(LoadBalanceError):
            check_load_balance([np.zeros(15), np.zeros(5)], eps=0.1)

    def test_explicit_total(self):
        check_load_balance([np.zeros(5), np.zeros(5)], eps=0.1, total_keys=100)

    def test_imbalance_metric(self):
        assert load_imbalance([np.zeros(10), np.zeros(10)]) == 1.0
        assert load_imbalance([np.zeros(30), np.zeros(10)]) == pytest.approx(1.5)
        assert load_imbalance([np.zeros(0)]) == 1.0


class TestVerifyAll:
    def test_full_pass(self):
        inputs = [np.array([3, 1]), np.array([4, 2])]
        outputs = [np.array([1, 2]), np.array([3, 4])]
        verify_sorted_output(inputs, outputs, eps=0.1)

    def test_eps_none_skips_balance(self):
        inputs = [np.array([1, 2, 3]), np.array([4])]
        outputs = [np.array([1, 2, 3]), np.array([4])]
        verify_sorted_output(inputs, outputs)  # imbalance 1.5, no check
