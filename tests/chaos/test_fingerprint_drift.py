"""Workload fingerprints under drift: the chaos workloads as sensors.

The warm-start contract (PR 7) leans on the key-distribution sketch:
jobs whose data only *resamples* the same shape must share a fingerprint
(and hit the splitter cache), while a drifted distribution — the next
timestep of ``drifting-mixture`` or ``changa-drift`` — must move at
least one quantile across a quantization cell, change the fingerprint,
and miss.  These tests pin both directions with the time-evolving
workloads built for exactly this purpose.
"""

import json

import numpy as np

from repro.algorithms import Dataset
from repro.chaos.workloads import drifting_mixture_shards
from repro.service import SortService
from repro.service.fingerprint import key_sketch, workload_fingerprint

P = 8
N_PER = 5_000


def _dataset(timestep: int, draw_seed: int = 0) -> Dataset:
    # Decouple the trace position from the sampling randomness: the
    # timestep fixes the *shape*, draw_seed only re-rolls the sample.
    rng = np.random.default_rng((draw_seed, timestep))
    shards = drifting_mixture_shards(P, N_PER, rng, timestep=timestep)
    return Dataset(shards)


class TestSketchUnderDrift:
    def test_drifted_timestep_crosses_a_quantization_cell(self):
        early = key_sketch(_dataset(0).shards)
        late = key_sketch(_dataset(4).shards)
        assert early != late

    def test_same_shape_redraw_lands_on_the_same_cells(self):
        a = key_sketch(_dataset(2, draw_seed=0).shards)
        b = key_sketch(_dataset(2, draw_seed=1).shards)
        assert a == b

    def test_fingerprint_tracks_the_sketch(self):
        same_shape = [
            workload_fingerprint("hss", _dataset(2, draw_seed=s))
            for s in (0, 1)
        ]
        drifted = workload_fingerprint("hss", _dataset(4))
        assert same_shape[0] == same_shape[1]
        assert drifted != same_shape[0]


class TestServiceCacheUnderDrift:
    @staticmethod
    def _job(job_id: str, seed: int) -> str:
        # timestep = seed % period: consecutive seeds walk the trace.
        return json.dumps({
            "id": job_id,
            "scenario": {
                "algorithm": "hss",
                "workload": "drifting-mixture",
                "procs": P,
                "keys_per_rank": N_PER,
                "seed": seed,
            },
        })

    def test_drifting_jobs_miss_same_shape_jobs_hit(self):
        service = SortService()
        # Same timestep resubmitted: second job must warm-start.
        first = service.handle_line(self._job("t0-a", 0))
        repeat = service.handle_line(self._job("t0-b", 0))
        assert first["status"] == repeat["status"] == "ok"
        assert first["cache"]["hit"] is False
        assert repeat["cache"]["hit"] is True

        # The next timestep drifts the bump: the sketch moves, the
        # fingerprint changes, and the stale boundaries are NOT reused.
        drifted = service.handle_line(self._job("t3", 3))
        assert drifted["status"] == "ok"
        assert drifted["cache"]["hit"] is False
        assert drifted["fingerprint"] != first["fingerprint"]

    def test_full_trace_replay_warms_only_on_revisit(self):
        service = SortService()
        period = 8
        fingerprints = {}
        for step in range(period):
            reply = service.handle_line(self._job(f"t{step}", step))
            assert reply["status"] == "ok"
            assert reply["cache"]["hit"] is False, step
            fingerprints[step] = reply["fingerprint"]
        # Every timestep had its own shape...
        assert len(set(fingerprints.values())) > 1
        # ...and replaying the trace (seed = period wraps to timestep 0)
        # finds the learned boundaries still cached.
        wrapped = service.handle_line(self._job("t8", period))
        assert wrapped["cache"]["hit"] is True
        assert wrapped["fingerprint"] == fingerprints[0]
