"""The chaos knob on the experiment axes: scenarios, sweeps, documents."""

import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentRunner, Scenario
from repro.experiments.runner import expand_grid


def _cell(**overrides) -> Scenario:
    defaults = dict(
        algorithm="hss", workload="uniform", procs=4, keys_per_rank=500
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestScenarioField:
    def test_default_is_fault_free(self):
        cell = _cell()
        assert cell.chaos == ""
        assert "chaos" not in cell.name

    def test_name_carries_the_plan(self):
        assert (
            _cell(chaos="stragglers").name
            == "uniform/hss@laptop/flat/p4/chaos[stragglers]"
        )

    def test_name_orders_chaos_before_backend(self):
        cell = _cell(chaos="stragglers", backend="process")
        assert cell.name.endswith("/chaos[stragglers]/process")

    def test_unknown_plan_rejected_eagerly(self):
        with pytest.raises(ConfigError, match="unknown fault plan"):
            _cell(chaos="storm")

    def test_variant_backend_spelling_validates(self):
        cell = _cell(backend="chaos:process")
        assert cell.backend == "chaos:process"
        with pytest.raises(ConfigError, match="unknown backend"):
            _cell(backend="quantum:process")

    def test_round_trips_through_dict(self):
        cell = _cell(chaos="mayhem")
        assert Scenario.from_dict(cell.to_dict()) == cell

    def test_chaos_metrics_join_the_cell_metrics(self):
        metrics = _cell(chaos="stragglers").run()["metrics"]
        assert metrics["chaos_slowdown"] > 1.0
        assert metrics["chaos_stragglers"] > 0
        assert metrics["chaos_retries"] == 0
        assert metrics["chaos_delay_s"] > 0.0

    def test_fault_free_cells_carry_no_chaos_metrics(self):
        metrics = _cell().run()["metrics"]
        assert not any(k.startswith("chaos") for k in metrics)

    def test_chaos_composes_with_explicit_chaos_backend(self):
        # 'chaos:process' + a plan wraps the *process* backend once.
        cell = _cell(chaos="stragglers", backend="chaos:process")
        run, outcome = cell.execute()
        assert run.engine_result.measured.backend == "chaos:process"
        assert outcome["metrics"]["chaos_slowdown"] > 1.0


class TestSweepAxis:
    def test_expand_grid_applies_plan_to_every_cell(self):
        cells = expand_grid(
            algorithms="hss", workloads=["uniform", "staircase"],
            chaos="stragglers",
        )
        assert all(c.chaos == "stragglers" for c in cells)

    def test_grid_records_chaos_only_when_set(self):
        runner = ExperimentRunner()
        plain = runner.sweep(
            algorithms="hss", workloads="uniform", procs=2,
            keys_per_rank=200,
        )
        assert "chaos" not in plain.grid
        chaotic = runner.sweep(
            algorithms="hss", workloads="uniform", procs=2,
            keys_per_rank=200, chaos="stragglers",
        )
        assert chaotic.grid["chaos"] == "stragglers"

    def test_injected_fault_records_cell_as_skipped(self):
        doc = ExperimentRunner().sweep(
            algorithms="hss", workloads="uniform", procs=4,
            keys_per_rank=200, chaos="kill-rank",
        )
        (cell,) = doc.cells
        assert cell.status == "skipped"
        assert cell.reason.startswith("injected fault:")
        assert "not SPMD" in cell.reason

    def test_fault_free_failures_still_raise(self):
        # Without a plan, a BSP error is a bug, not a result.
        from repro.errors import BSPError
        from repro.experiments.runner import _run_cell_task

        class Exploding(Scenario):
            def run(self):
                raise BSPError("boom")

        with pytest.raises(BSPError, match="boom"):
            _run_cell_task(
                Exploding(algorithm="hss", workload="uniform")
            )

    def test_parallel_jobs_reproduce_inline_document(self):
        kwargs = dict(
            algorithms="hss", workloads=["uniform", "lognormal"],
            procs=4, keys_per_rank=300, chaos="stragglers",
        )
        inline = ExperimentRunner(1).sweep(**kwargs)
        fanned = ExperimentRunner(2).sweep(**kwargs)
        assert [c.metrics for c in inline.cells] == [
            c.metrics for c in fanned.cells
        ]
