"""Fault-plan validation, registry behaviour and decision determinism."""

import pytest

from repro.chaos import (
    FAULT_PLANS,
    FaultPlan,
    available_fault_plans,
    get_fault_plan,
    make_fault_plan,
    register_fault_plan,
    resolve_fault_plan,
)
from repro.errors import ConfigError


class TestValidation:
    def test_negative_straggler_delay_rejected(self):
        with pytest.raises(ConfigError, match="straggler_delay_s"):
            FaultPlan(straggler_delay_s=-1e-3)

    @pytest.mark.parametrize("prob", [-0.1, 1.5])
    @pytest.mark.parametrize(
        "field", ["straggler_prob", "kill_prob", "drop_prob"]
    )
    def test_probabilities_outside_unit_interval_rejected(self, field, prob):
        with pytest.raises(ConfigError, match=rf"{field}.*\[0, 1\]"):
            FaultPlan(**{field: prob})

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigError, match="seed"):
            FaultPlan(seed=-1)

    def test_kill_rank_below_minus_one_rejected(self):
        with pytest.raises(ConfigError, match="kill_rank"):
            FaultPlan(kill_rank=-2)

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            FaultPlan(max_retries=-1)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_fault_plans() == [
            "dropped-collectives", "kill-rank", "mayhem", "none",
            "stragglers",
        ]

    def test_every_builtin_has_description(self):
        for name, plan in FAULT_PLANS.items():
            assert plan.description, name
            assert plan.name == name

    def test_unknown_plan_lists_choices(self):
        with pytest.raises(ConfigError, match="unknown fault plan 'storm'"):
            get_fault_plan("storm")

    def test_make_rejects_unknown_parameters_naming_valid_keys(self):
        # The PR 3 config-validation convention: the error names both the
        # offending keys and the full valid set.
        with pytest.raises(
            ConfigError, match=r"unknown parameter\(s\) \['bogus'\]"
        ) as info:
            make_fault_plan("stragglers", bogus=1)
        assert "valid parameters:" in str(info.value)
        assert "straggler_prob" in str(info.value)

    def test_make_applies_overrides(self):
        plan = make_fault_plan("stragglers", straggler_prob=0.5)
        assert plan.straggler_prob == 0.5
        # The base registry entry is untouched (plans are frozen).
        assert FAULT_PLANS["stragglers"].straggler_prob != 0.5

    def test_make_revalidates_overrides(self):
        with pytest.raises(ConfigError, match="straggler_prob"):
            make_fault_plan("stragglers", straggler_prob=2.0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_fault_plan(FAULT_PLANS["none"])

    def test_resolve_accepts_none_name_and_plan(self):
        assert resolve_fault_plan(None) is FAULT_PLANS["none"]
        assert resolve_fault_plan("mayhem") is FAULT_PLANS["mayhem"]
        plan = FaultPlan(straggler_prob=0.5, straggler_delay_s=1e-3)
        assert resolve_fault_plan(plan) is plan


class TestDecisions:
    def test_zero_plan_properties(self):
        none = FAULT_PLANS["none"]
        assert none.is_zero
        assert not none.perturbs_time
        assert not FAULT_PLANS["stragglers"].is_zero
        assert FAULT_PLANS["stragglers"].perturbs_time
        # Drops perturb modeled time too: retries are re-priced traffic.
        assert FAULT_PLANS["dropped-collectives"].perturbs_time
        # A deterministic kill alone never changes modeled time — the run
        # errors out instead, so no fault-free baseline twin is needed.
        assert not FAULT_PLANS["kill-rank"].perturbs_time

    def test_decisions_are_pure_functions_of_the_key(self):
        plan = FAULT_PLANS["mayhem"]
        for rank in range(4):
            for step in range(6):
                assert plan.delay_s(rank, step) == plan.delay_s(rank, step)
                assert plan.kills(rank, step) == plan.kills(rank, step)
        for step in range(6):
            assert plan.drop_retries(step) == plan.drop_retries(step)

    def test_seed_changes_decisions(self):
        a = make_fault_plan("stragglers", seed=0)
        b = make_fault_plan("stragglers", seed=1)
        delays_a = [a.delay_s(r, s) for r in range(8) for s in range(8)]
        delays_b = [b.delay_s(r, s) for r in range(8) for s in range(8)]
        assert delays_a != delays_b

    def test_deterministic_kill(self):
        plan = FAULT_PLANS["kill-rank"]
        assert plan.kills(1, 2)
        assert not plan.kills(1, 1)
        assert not plan.kills(0, 2)

    def test_drop_retries_bounded_by_max(self):
        plan = make_fault_plan("dropped-collectives", drop_prob=1.0)
        for step in range(10):
            assert plan.drop_retries(step) == plan.max_retries
