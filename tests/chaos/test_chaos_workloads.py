"""Adversarial/time-evolving workloads: drift, duplication, determinism."""

import numpy as np
import pytest

from repro.chaos.workloads import (
    changa_drift_shards,
    drifting_mixture_shards,
    staircase_duplicate_shards,
)
from repro.errors import WorkloadError
from repro.workloads import WORKLOAD_SPECS, make_workload

P = 8
N_PER = 2_000


def _pooled(shards):
    return np.sort(np.concatenate(shards))


class TestRegistration:
    @pytest.mark.parametrize(
        "name", ["drifting-mixture", "staircase-duplicates", "changa-drift"]
    )
    def test_registered_with_paper_section(self, name):
        spec = WORKLOAD_SPECS[name]
        assert spec.paper_section
        assert spec.description

    def test_changa_drift_declares_particle_schema(self):
        spec = WORKLOAD_SPECS["changa-drift"]
        assert spec.record_schema is not None
        assert "mass" in spec.record_schema.compact()

    def test_reachable_through_make_workload(self):
        shards = make_workload("drifting-mixture", P, N_PER, rng=0)
        assert len(shards) == P
        assert all(len(s) == N_PER for s in shards)


class TestDeterminism:
    @pytest.mark.parametrize(
        "gen",
        [drifting_mixture_shards, staircase_duplicate_shards,
         changa_drift_shards],
        ids=["drifting", "staircase-dup", "changa-drift"],
    )
    def test_same_seed_same_shards(self, gen):
        a = gen(P, N_PER, 7)
        b = gen(P, N_PER, 7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestDrift:
    def test_timestep_moves_the_bump(self):
        early = _pooled(drifting_mixture_shards(P, N_PER, 0, timestep=0))
        late = _pooled(drifting_mixture_shards(P, N_PER, 0, timestep=6))
        # The bump holds most of the mass, so the median tracks it.
        assert np.median(late) > np.median(early)

    def test_seed_drives_timestep_when_not_explicit(self):
        # timestep defaults to seed % period — consecutive service jobs
        # (which only vary the seed) walk the trace automatically.
        implicit = _pooled(drifting_mixture_shards(P, N_PER, 6))
        explicit = _pooled(drifting_mixture_shards(P, N_PER, 6, timestep=6))
        assert np.median(implicit) == pytest.approx(
            np.median(explicit), rel=0.05
        )

    def test_changa_halo_contracts_and_migrates(self):
        early = _pooled(changa_drift_shards(P, N_PER, 0, timestep=0))
        late = _pooled(changa_drift_shards(P, N_PER, 0, timestep=7))
        assert np.median(late) != np.median(early)

    def test_timestep_wraps_at_period(self):
        a = _pooled(drifting_mixture_shards(P, N_PER, 0, timestep=1))
        b = _pooled(drifting_mixture_shards(P, N_PER, 0, timestep=9))
        np.testing.assert_array_equal(a, b)


class TestStaircaseDuplicates:
    def test_distinct_value_count_is_tiny(self):
        shards = staircase_duplicate_shards(
            P, N_PER, 0, steps=8, distinct_per_step=4
        )
        distinct = np.unique(np.concatenate(shards))
        assert len(distinct) <= 8 * 4
        # Heavy duplication: thousands of copies per value on average.
        assert P * N_PER / len(distinct) > 100

    def test_mass_clusters_at_spread_scales(self):
        pooled = _pooled(staircase_duplicate_shards(P, N_PER, 0))
        assert pooled[0] > 0
        assert pooled[-1] / pooled[0] > 5


class TestValidation:
    def test_negative_timestep_rejected(self):
        with pytest.raises(WorkloadError, match="timestep must be >= 0"):
            drifting_mixture_shards(P, 100, 0, timestep=-1)

    def test_bad_period_rejected(self):
        with pytest.raises(WorkloadError, match="period must be >= 1"):
            changa_drift_shards(P, 100, 0, period=0)

    def test_bad_bump_weight_rejected(self):
        with pytest.raises(WorkloadError, match="bump_weight"):
            drifting_mixture_shards(P, 100, 0, bump_weight=1.5)

    def test_bad_halo_fraction_rejected(self):
        with pytest.raises(WorkloadError, match="halo_fraction"):
            changa_drift_shards(P, 100, 0, halo_fraction=-0.1)

    def test_bad_steps_rejected(self):
        with pytest.raises(WorkloadError, match="steps must be >= 1"):
            staircase_duplicate_shards(P, 100, 0, steps=0)
