"""The chaos backend: passthrough purity, determinism, fault surfacing.

The headline contracts pinned here:

* a **zero-fault plan is a literal passthrough** — bit-identical sorted
  output, stats and makespan to the wrapped backend across the full
  algorithm grid, including the error paths (SPMD violations surface
  with byte-identical messages);
* the **same plan seed reproduces everything** — fault schedule, chaos
  metrics, sorted output;
* **kills are detected, not hung**: a killed rank trips the engine's
  deadlock check and the raised error carries the plan's provenance;
* chaos metrics are **backend-independent** — `chaos:simulated` and
  `chaos:process` agree on every injected-fault number.
"""

import numpy as np
import pytest

from repro.algorithms import REGISTRY, Dataset, Sorter, get_spec
from repro.chaos import FaultPlan, make_fault_plan
from repro.errors import (
    BSPError,
    CollectiveMismatchError,
    ConfigError,
    DeadlockError,
)
from repro.runtime import (
    BACKENDS,
    ChaosBackend,
    ProcessBackend,
    SimulatedBackend,
    get_backend,
)

P = 4
N_PER = 300
WORKLOADS = ("uniform", "staircase")

GRID = [
    (algorithm, workload)
    for algorithm in sorted(REGISTRY)
    for workload in WORKLOADS
]


def _run(algorithm: str, workload: str, backend) -> object:
    dataset = Dataset.from_workload(workload, p=P, n_per=N_PER, seed=11)
    kwargs = {"strict": False} if algorithm.startswith("hss-") else {}
    config = get_spec(algorithm).legacy_config(eps=0.2, seed=3, **kwargs)
    return Sorter(
        algorithm, config=config, backend=backend, verify=False
    ).run(dataset)


# --------------------------------------------------------------------- #
# Zero-fault passthrough: the full parity grid.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "algorithm,workload", GRID, ids=[f"{a}-{w}" for a, w in GRID]
)
def test_zero_fault_plan_is_bit_identical(algorithm, workload):
    plain = _run(algorithm, workload, SimulatedBackend())
    chaos = _run(
        algorithm, workload, ChaosBackend(inner="simulated", plan="none")
    )
    for rank, (a, b) in enumerate(zip(plain.shards, chaos.shards)):
        np.testing.assert_array_equal(a, b, err_msg=f"rank {rank} shard")
    assert plain.engine_result.stats == chaos.engine_result.stats
    assert plain.makespan == chaos.makespan
    # Passthrough means *no* chaos block either: the run is untouched.
    assert getattr(chaos.engine_result.measured, "chaos", None) is None


def _mismatch_program(ctx, keys):
    if ctx.rank == 0:
        yield from ctx.bcast(1, root=0)
    else:
        yield from ctx.gather(1, root=0)
    return keys


def _early_return_program(ctx, keys):
    if ctx.rank == 0:
        return keys
    yield from ctx.barrier()
    return keys


def _plain_function(ctx, keys):
    return keys


def _rank_args():
    return [(np.arange(10),) for _ in range(P)]


@pytest.mark.parametrize(
    "program,exc_type",
    [
        (_mismatch_program, CollectiveMismatchError),
        (_early_return_program, DeadlockError),
        (_plain_function, BSPError),
    ],
    ids=["mismatch", "deadlock", "plain-function"],
)
def test_zero_fault_error_paths_identical(program, exc_type):
    messages = []
    for backend in (
        SimulatedBackend(),
        ChaosBackend(inner="simulated", plan="none"),
        ChaosBackend(inner="simulated", plan="stragglers"),
    ):
        with pytest.raises(exc_type) as info:
            backend.run(program, _rank_args())
        messages.append(str(info.value))
    assert messages[0] == messages[1] == messages[2]


# --------------------------------------------------------------------- #
# Determinism: the same seed reproduces the whole picture.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("plan", ["stragglers", "dropped-collectives", "mayhem"])
def test_same_seed_reproduces_metrics_and_output(plan):
    runs = [
        _run("hss", "uniform", ChaosBackend(inner="simulated", plan=plan))
        for _ in range(2)
    ]
    a, b = (r.engine_result.measured.chaos for r in runs)
    assert a == b
    assert runs[0].makespan == runs[1].makespan
    for x, y in zip(runs[0].shards, runs[1].shards):
        np.testing.assert_array_equal(x, y)


def test_different_seed_changes_fault_schedule():
    metrics = [
        _run(
            "hss", "uniform",
            ChaosBackend(
                inner="simulated",
                plan=make_fault_plan("stragglers", seed=seed),
            ),
        ).engine_result.measured.chaos
        for seed in (0, 1)
    ]
    assert metrics[0]["seed"] != metrics[1]["seed"]
    assert (
        metrics[0]["stragglers"] != metrics[1]["stragglers"]
        or metrics[0]["delay_injected_s"] != metrics[1]["delay_injected_s"]
    )


def test_faults_never_corrupt_output():
    plain = _run("hss", "uniform", SimulatedBackend())
    chaos = _run(
        "hss", "uniform", ChaosBackend(inner="simulated", plan="mayhem")
    )
    # Faults perturb time and traffic, never the sort itself.
    for a, b in zip(plain.shards, chaos.shards):
        np.testing.assert_array_equal(a, b)
    info = chaos.engine_result.measured.chaos
    assert info["slowdown"] > 1.0
    assert chaos.makespan == pytest.approx(
        info["fault_free_makespan_s"] * info["slowdown"]
    )
    assert plain.makespan == info["fault_free_makespan_s"]


# --------------------------------------------------------------------- #
# Kills: detection as a feature.
# --------------------------------------------------------------------- #
def test_kill_trips_deadlock_with_provenance():
    with pytest.raises(DeadlockError) as info:
        _run(
            "hss", "uniform",
            ChaosBackend(inner="simulated", plan="kill-rank"),
        )
    exc = info.value
    message = str(exc)
    assert "superstep" in message and "not SPMD" in message
    assert exc.superstep == 2
    assert 1 in exc.finished_ranks
    assert exc.chaos["plan"] == "kill-rank"
    assert exc.chaos["detected_superstep"] == 2
    assert exc.chaos["kill_superstep"] == 2
    assert exc.chaos["supersteps_to_detection"] == 0


def test_kill_detection_identical_across_backends():
    details = []
    for inner in ("simulated", "process"):
        with pytest.raises(DeadlockError) as info:
            _run(
                "hss", "uniform",
                ChaosBackend(inner=inner, plan="kill-rank", workers=2),
            )
        details.append((str(info.value), info.value.chaos))
    assert details[0] == details[1]


# --------------------------------------------------------------------- #
# Backend independence of the injected-fault picture.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("plan", ["stragglers", "mayhem"])
def test_chaos_metrics_backend_independent(plan):
    sim = _run(
        "hss", "uniform", ChaosBackend(inner="simulated", plan=plan)
    )
    proc = _run(
        "hss", "uniform",
        ChaosBackend(inner="process", plan=plan, workers=2),
    )
    sim_info = dict(sim.engine_result.measured.chaos)
    proc_info = dict(proc.engine_result.measured.chaos)
    assert sim.engine_result.measured.backend == "chaos:simulated"
    assert proc.engine_result.measured.backend == "chaos:process"
    assert sim_info == proc_info
    assert sim.makespan == proc.makespan
    assert sim.engine_result.stats == proc.engine_result.stats
    for a, b in zip(sim.shards, proc.shards):
        np.testing.assert_array_equal(a, b)


def test_drop_retries_price_extra_traffic():
    plain = _run("hss", "uniform", SimulatedBackend())
    chaos = _run(
        "hss", "uniform",
        ChaosBackend(inner="simulated", plan="dropped-collectives"),
    )
    info = chaos.engine_result.measured.chaos
    assert info["retries"] > 0
    assert info["delay_injected_s"] == 0.0
    stats, base = chaos.engine_result.stats, plain.engine_result.stats
    assert stats.messages > base.messages
    assert stats.bytes > base.bytes


# --------------------------------------------------------------------- #
# Construction and the ':variant' spelling.
# --------------------------------------------------------------------- #
class TestConstruction:
    def test_variant_spelling_resolves_inner(self):
        backend = get_backend("chaos:process", workers=2)
        assert isinstance(backend, ChaosBackend)
        assert backend.inner.name == "process"
        assert get_backend("chaos").inner.name == "simulated"

    def test_registered_on_the_backend_axis(self):
        assert BACKENDS["chaos"] is ChaosBackend

    def test_cannot_wrap_itself(self):
        with pytest.raises(ConfigError, match="cannot wrap itself"):
            ChaosBackend(inner="chaos")
        with pytest.raises(ConfigError, match="cannot wrap itself"):
            ChaosBackend(inner="chaos:process")
        with pytest.raises(ConfigError, match="cannot wrap itself"):
            ChaosBackend(inner=ChaosBackend())

    def test_unknown_inner_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            ChaosBackend(inner="quantum")

    def test_variant_plus_inner_option_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            get_backend("chaos:process", inner="simulated")

    def test_non_chaos_backends_reject_variants(self):
        with pytest.raises(ConfigError, match="takes no ':variant'"):
            get_backend("simulated:fast")

    def test_unknown_plan_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault plan"):
            ChaosBackend(plan="storm")

    def test_inline_plan_accepted(self):
        plan = FaultPlan(straggler_prob=1.0, straggler_delay_s=1e-4)
        backend = ChaosBackend(plan=plan)
        assert backend.plan is plan
