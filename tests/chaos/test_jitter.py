"""Jittered topologies: seeded degradation, never improvement."""

import pytest

from repro.bsp.network import Dragonfly, FatTree
from repro.chaos.jitter import JitteredDragonfly, JitteredFatTree
from repro.errors import ConfigError
from repro.machines import (
    get_machine,
    get_machine_spec,
    make_topology,
    topology_from_dict,
    topology_to_dict,
)

ENDPOINTS = (16, 64, 256, 1024)


class TestDegradationOnly:
    @pytest.mark.parametrize("n", ENDPOINTS)
    def test_fat_tree_contention_bounded(self, n):
        ideal = FatTree(bisection=0.25)
        jittered = JitteredFatTree(bisection=0.25, jitter=0.3)
        lo = ideal.alltoall_contention(n)
        assert lo <= jittered.alltoall_contention(n) < lo * 1.3

    @pytest.mark.parametrize("n", ENDPOINTS)
    def test_dragonfly_contention_bounded(self, n):
        ideal = Dragonfly()
        jittered = JitteredDragonfly(jitter=0.3)
        lo = ideal.alltoall_contention(n)
        assert lo <= jittered.alltoall_contention(n) < lo * 1.3

    @pytest.mark.parametrize("n", ENDPOINTS)
    def test_diameter_never_shrinks(self, n):
        assert (
            JitteredFatTree(jitter=0.5).diameter(n)
            >= FatTree().diameter(n)
        )

    def test_zero_jitter_is_the_ideal_topology(self):
        ideal = FatTree(bisection=0.25)
        flat = JitteredFatTree(bisection=0.25, jitter=0.0)
        for n in ENDPOINTS:
            assert flat.alltoall_contention(n) == ideal.alltoall_contention(n)
            assert flat.diameter(n) == ideal.diameter(n)


class TestDeterminism:
    def test_same_seed_same_factors(self):
        a = JitteredFatTree(jitter=0.3, jitter_seed=7)
        b = JitteredFatTree(jitter=0.3, jitter_seed=7)
        for n in ENDPOINTS:
            assert a.alltoall_contention(n) == b.alltoall_contention(n)
            assert a.diameter(n) == b.diameter(n)

    def test_different_seed_different_factors(self):
        a = JitteredFatTree(jitter=0.3, jitter_seed=0)
        b = JitteredFatTree(jitter=0.3, jitter_seed=1)
        assert any(
            a.alltoall_contention(n) != b.alltoall_contention(n)
            for n in ENDPOINTS
        )

    def test_alpha_and_beta_draws_independent(self):
        # The contention (beta) and diameter (alpha) streams are salted
        # apart: equal contention factors never force equal diameters.
        topo = JitteredFatTree(jitter=0.9, jitter_seed=3)
        ratios = {
            topo.alltoall_contention(n) / FatTree().alltoall_contention(n)
            for n in ENDPOINTS
        }
        assert len(ratios) == len(ENDPOINTS)


class TestValidation:
    def test_jitter_out_of_range_via_registry(self):
        with pytest.raises(
            ConfigError, match=r"jitter must be in \[0, 1\], got 1.5"
        ):
            make_topology("jittered-fat-tree", jitter=1.5)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigError, match="jitter_seed must be >= 0"):
            make_topology("jittered-fat-tree", jitter_seed=-1)

    def test_unknown_param_lists_valid_keys(self):
        with pytest.raises(
            ConfigError, match=r"unknown parameter\(s\) \['bogus'\]"
        ) as info:
            make_topology("jittered-fat-tree", bogus=1)
        assert "jitter" in str(info.value)

    def test_round_trips_through_json_dict(self):
        topo = JitteredFatTree(bisection=0.25, jitter=0.3, jitter_seed=8)
        assert topology_from_dict(topology_to_dict(topo)) == topo


class TestJitteryCloudPreset:
    def test_registered_with_jittered_topology(self):
        spec = get_machine_spec("jittery-cloud")
        assert spec.topology == "jittered-fat-tree"
        assert spec.topology_params["jitter"] == 0.3

    def test_same_constants_as_cloud_ethernet(self):
        # Any makespan delta against cloud-ethernet is purely network
        # weather: the compute and endpoint constants are shared.
        jittery = get_machine_spec("jittery-cloud")
        cloud = get_machine_spec("cloud-ethernet")
        assert jittery.alpha == cloud.alpha
        assert jittery.beta == cloud.beta
        assert jittery.gamma_compare == cloud.gamma_compare
        assert jittery.cores_per_node == cloud.cores_per_node

    def test_prices_a_run_strictly_above_cloud_ethernet(self):
        from repro.algorithms import Dataset, Sorter

        dataset = Dataset.from_workload("uniform", p=8, n_per=500, seed=0)
        runs = {
            name: Sorter(
                "hss", machine=name, eps=0.2, seed=3, verify=False
            ).run(dataset)
            for name in ("cloud-ethernet", "jittery-cloud")
        }
        assert (
            runs["jittery-cloud"].makespan > runs["cloud-ethernet"].makespan
        )
        # Identical traffic — only the pricing of it changed.
        jittery = runs["jittery-cloud"].engine_result.stats
        cloud = runs["cloud-ethernet"].engine_result.stats
        assert jittery.bytes == cloud.bytes
        assert jittery.messages == cloud.messages
        assert jittery.comm_seconds > cloud.comm_seconds

    def test_model_resolution_is_deterministic(self):
        a = get_machine("jittery-cloud")
        b = get_machine("jittery-cloud")
        assert a.topology == b.topology
