"""Tests for the algorithm plugin registry and the typed specs."""

import re

import pytest

import repro.core.api as api
from repro.algorithms import (
    REGISTRY,
    AlgorithmSpec,
    available_algorithms,
    get_spec,
    register_algorithm,
)
from repro.core.api import ALGORITHMS
from repro.errors import ConfigError


def _docstring_table_names() -> set[str]:
    """Algorithm names from the table in core/api.py's module docstring."""
    names = set()
    for line in api.__doc__.splitlines():
        m = re.match(r"``([a-z0-9-]+)``", line.strip())
        if m:
            names.add(m.group(1))
    return names


class TestRegistryContents:
    def test_every_algorithms_name_has_a_spec(self):
        assert set(ALGORITHMS) == set(REGISTRY)
        for name, spec in ALGORITHMS.items():
            assert isinstance(spec, AlgorithmSpec)
            assert spec.name == name
            assert callable(spec.program)
            assert spec.config_cls is not None

    def test_specs_match_api_docstring_table(self):
        table = _docstring_table_names()
        assert table, "core/api.py docstring table went missing"
        assert table == set(REGISTRY)

    def test_available_algorithms_sorted(self):
        assert list(available_algorithms()) == sorted(REGISTRY)

    def test_get_spec_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            get_spec("quicksort")

    def test_paper_sections_present(self):
        for spec in REGISTRY.values():
            assert spec.paper_section, spec.name
            assert spec.description, spec.name

    def test_payload_capability_cover(self):
        payload_capable = {
            name for name, s in REGISTRY.items() if s.supports_payloads
        }
        # The capability flag must be true for at least these three.
        assert {"hss", "sample-regular", "histogram"} <= payload_capable

    def test_hss_node_needs_multicore(self):
        assert REGISTRY["hss-node"].needs_multicore
        flat = {n for n, s in REGISTRY.items() if not s.needs_multicore}
        assert "hss" in flat and "bitonic" in flat


class TestSpecConfigValidation:
    def test_unknown_config_key_names_valid_keys(self):
        with pytest.raises(ConfigError, match=r"key_bits"):
            REGISTRY["radix"].build_config(radix_width=8)

    def test_build_config_returns_typed_instance(self):
        spec = REGISTRY["histogram"]
        cfg = spec.build_config(eps=0.1, probes_per_splitter=5)
        assert isinstance(cfg, spec.config_cls)
        assert cfg.probes_per_splitter == 5

    def test_legacy_config_drops_eps_seed_when_inapplicable(self):
        cfg = REGISTRY["bitonic"].legacy_config(eps=0.3, seed=4)
        assert isinstance(cfg, REGISTRY["bitonic"].config_cls)

    def test_legacy_config_still_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown config key"):
            REGISTRY["bitonic"].legacy_config(eps=0.3, wrong=1)

    def test_excluded_keys_are_not_accepted(self):
        with pytest.raises(ConfigError, match="unknown config key"):
            REGISTRY["hss"].build_config(schedule=None)

    def test_check_config_rejects_wrong_type(self):
        with pytest.raises(ConfigError, match="expects"):
            REGISTRY["radix"].check_config(object())

    def test_check_config_enforces_pinned_fields(self):
        from repro.core.config import HSSConfig

        # A hand-built flat config must not smuggle node_level=False into
        # the two-level algorithm.
        with pytest.raises(ConfigError, match="node_level"):
            REGISTRY["hss-node"].check_config(HSSConfig(eps=0.1))
        node_cfg = REGISTRY["hss-node"].build_config(eps=0.1)
        assert node_cfg.node_level is True
        assert REGISTRY["hss-node"].check_config(node_cfg) is node_cfg


class TestPluginRegistration:
    def test_decorator_registers_and_returns_program(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class _NullConfig:
            pass

        try:

            @register_algorithm(
                name="test-null",
                config_cls=_NullConfig,
                balanced=False,
                paper_section="—",
                description="test plugin",
            )
            def null_program(ctx, keys):
                yield from ()
                return keys

            assert REGISTRY["test-null"].program is null_program
            assert get_spec("test-null").description == "test plugin"
        finally:
            REGISTRY.pop("test-null", None)

    def test_conflicting_reregistration_rejected(self):
        spec = REGISTRY["hss"]
        clone = AlgorithmSpec(
            name="hss",
            program=lambda ctx, keys: None,
            config_cls=spec.config_cls,
        )
        with pytest.raises(ConfigError, match="already registered"):
            register_algorithm(clone)

    def test_same_program_reregistration_is_idempotent(self):
        register_algorithm(REGISTRY["hss"])  # no raise


class TestCliAlgorithmsCommand:
    def test_lists_every_registered_algorithm(self, capsys):
        from repro.cli import main

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out
        # Capability flags are rendered.
        assert "payloads" in out and "multicore" in out
