"""Tests for the Dataset abstraction (validation + workload catalog)."""

import numpy as np
import pytest

from repro.algorithms import Dataset
from repro.errors import ConfigError, WorkloadError


class TestFromArrays:
    def test_wraps_and_validates(self, small_shards):
        ds = Dataset.from_arrays(small_shards)
        assert ds.nprocs == 8
        assert ds.total_keys == 4000
        assert ds.key_dtype == np.int64
        assert not ds.has_payloads
        assert len(ds) == 8

    def test_empty_rank_list_rejected(self):
        with pytest.raises(ConfigError, match="at least one rank"):
            Dataset.from_arrays([])

    def test_mixed_dtypes_rejected(self, rng):
        with pytest.raises(ConfigError, match="dtype"):
            Dataset.from_arrays([rng.integers(0, 9, 5), rng.normal(size=5)])

    def test_non_1d_rejected(self, rng):
        with pytest.raises(ConfigError, match="one-dimensional"):
            Dataset.from_arrays([rng.integers(0, 9, (2, 3))])

    def test_payload_count_mismatch(self, small_shards):
        with pytest.raises(ConfigError, match="payloads"):
            Dataset.from_arrays(small_shards, payloads=[np.arange(5)])

    def test_payload_length_mismatch(self, small_shards):
        bad = [np.arange(len(s)) for s in small_shards]
        bad[3] = np.arange(7)
        with pytest.raises(ConfigError, match="payload length"):
            Dataset.from_arrays(small_shards, payloads=bad)

    def test_payload_dtype_mismatch(self, small_shards):
        pay = [np.arange(len(s)) for s in small_shards]
        pay[0] = pay[0].astype(np.float32)
        with pytest.raises(ConfigError, match="payloads must share"):
            Dataset.from_arrays(small_shards, payloads=pay)


class TestFromWorkload:
    def test_named_workload_matches_generator(self):
        from repro.workloads import make_workload

        ds = Dataset.from_workload("staircase", p=4, n_per=100, seed=9)
        expected = make_workload("staircase", 4, 100, 9)
        assert ds.workload == "staircase"
        for got, want in zip(ds.shards, expected):
            assert np.array_equal(got, want)

    def test_n_total_split(self):
        ds = Dataset.from_workload("uniform", p=8, n_total=800, seed=0)
        assert ds.total_keys == 800 and all(len(s) == 100 for s in ds.shards)

    def test_exactly_one_size_parameter(self):
        with pytest.raises(ConfigError, match="exactly one"):
            Dataset.from_workload("uniform", p=4, seed=0)
        with pytest.raises(ConfigError, match="exactly one"):
            Dataset.from_workload("uniform", p=4, n_per=10, n_total=40)

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            Dataset.from_workload("cauchy", p=4, n_per=10)

    def test_catalog_covers_changa_and_duplicates(self):
        from repro.workloads import DISTRIBUTIONS, WORKLOADS

        assert set(DISTRIBUTIONS) <= set(WORKLOADS)
        assert {"changa-dwarf", "hotspot", "zipf-duplicates"} <= set(WORKLOADS)

    def test_generator_kwargs_forwarded(self):
        ds = Dataset.from_workload(
            "few-distinct", p=4, n_per=50, seed=1, distinct=2
        )
        assert len(np.unique(np.concatenate(ds.shards))) <= 2


class TestRecordPayloads:
    def test_from_workload_with_columns(self):
        ds = Dataset.from_workload(
            "uniform", p=4, n_per=50, seed=0,
            payloads={"mass": "f8", "id": "u4"},
        )
        assert ds.has_payloads
        assert ds.record_schema.column_names == ("mass", "id")
        assert ds.payloads[0].dtype.names == ("mass", "id")
        assert ds.record_nbytes() == 8 + 8 + 4

    def test_payload_generation_deterministic(self):
        a, b = (
            Dataset.from_workload(
                "uniform", p=3, n_per=40, seed=5,
                payloads={"mass": "f8", "id": "u4"},
            )
            for _ in range(2)
        )
        for pa, pb in zip(a.payloads, b.payloads):
            np.testing.assert_array_equal(pa, pb)

    def test_payload_columns_independent(self):
        """Adding a column never perturbs the values of existing ones."""
        narrow = Dataset.from_workload(
            "uniform", p=2, n_per=30, seed=4, payloads={"mass": "f8"}
        )
        wide = Dataset.from_workload(
            "uniform", p=2, n_per=30, seed=4,
            payloads={"id": "u4", "mass": "f8"},
        )
        for a, b in zip(narrow.payloads, wide.payloads):
            np.testing.assert_array_equal(a["mass"], b["mass"])

    def test_payloads_true_uses_declared_schema(self):
        ds = Dataset.from_workload(
            "changa-dwarf", p=2, n_per=25, seed=1, payloads=True
        )
        assert ds.record_schema.column_names == ("mass", "vx", "vy", "vz", "id")
        assert ds.record_nbytes() == 32

    def test_payloads_true_rejected_for_keyonly_workload(self):
        with pytest.raises(ConfigError, match="declares no record schema"):
            Dataset.from_workload("uniform", p=2, n_per=10, payloads=True)

    def test_object_payload_column_rejected(self):
        with pytest.raises(ConfigError):
            Dataset.from_workload(
                "uniform", p=2, n_per=10, payloads={"blob": "O"}
            )

    def test_from_records_round_trip(self):
        ds = Dataset.from_workload(
            "uniform", p=3, n_per=20, seed=2,
            payloads={"mass": "f8", "id": "u4"},
        )
        again = Dataset.from_records(ds.batches(), workload=ds.workload)
        assert again.record_schema == ds.record_schema
        for a, b in zip(ds.shards, again.shards):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(ds.payloads, again.payloads):
            np.testing.assert_array_equal(a, b)

    def test_from_records_key_only(self):
        ds = Dataset.from_workload("uniform", p=2, n_per=15, seed=0)
        again = Dataset.from_records(ds.batches())
        assert not again.has_payloads
        for a, b in zip(ds.shards, again.shards):
            np.testing.assert_array_equal(a, b)

    def test_schema_derived_from_legacy_payload(self, small_shards):
        ds = Dataset.from_arrays(small_shards).with_index_payloads()
        assert ds.record_schema.column_names == ("payload",)
        assert ds.record_nbytes() == 16

    def test_schema_without_payloads_rejected(self, small_shards):
        from repro.records import RecordSchema

        with pytest.raises(ConfigError, match="without payloads"):
            Dataset.from_arrays(
                small_shards,
                schema=RecordSchema.from_mapping({"mass": "f8"}),
            )

    def test_with_payloads_removed(self, small_shards):
        base = Dataset.from_arrays(small_shards)
        payloads = [np.arange(len(s)) for s in small_shards]
        with pytest.raises(ConfigError, match=r"payloads=\{'col': 'f8'\}"):
            base.with_payloads(payloads)

    def test_object_dtype_payloads_rejected(self, small_shards):
        payloads = [
            np.array([{"k": i} for i in range(len(s))], dtype=object)
            for s in small_shards
        ]
        with pytest.raises(ConfigError, match="object-dtype payloads"):
            Dataset.from_arrays(small_shards, payloads)


class TestPayloadHelpers:
    def test_with_index_payloads_globally_unique(self, small_shards):
        ds = Dataset.from_arrays(small_shards).with_index_payloads()
        flat = np.concatenate(ds.payloads)
        assert ds.has_payloads
        assert np.array_equal(np.sort(flat), np.arange(ds.total_keys))

    def test_rank_args_shapes(self, small_shards):
        plain = Dataset.from_arrays(small_shards)
        assert all(len(a) == 1 for a in plain.rank_args())
        tagged = plain.with_index_payloads()
        assert all(len(a) == 2 for a in tagged.rank_args())
