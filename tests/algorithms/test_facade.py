"""The one-call ``repro.sort()`` façade."""

import numpy as np
import pytest

import repro
from repro.algorithms import Dataset, Sorter
from repro.errors import ConfigError


def _sorted_all(run):
    return np.concatenate(run.shards)


class TestFlatArrayMode:
    def test_sorts_and_matches_numpy(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**40, 8_000)
        run = repro.sort(keys, p=8, eps=0.1)
        np.testing.assert_array_equal(_sorted_all(run), np.sort(keys))
        assert run.imbalance <= 1.1 + 1e-9

    def test_requires_p(self):
        with pytest.raises(ConfigError, match="p="):
            repro.sort(np.arange(100))

    def test_p_larger_than_input_rejected(self):
        with pytest.raises(ConfigError):
            repro.sort(np.arange(3), p=8)

    def test_python_list_accepted(self):
        run = repro.sort([5, 3, 1, 4], p=2)
        np.testing.assert_array_equal(_sorted_all(run), [1, 3, 4, 5])


class TestShardAndDatasetModes:
    def test_per_rank_sequence(self):
        shards = [np.array([9, 1]), np.array([5, 3])]
        run = repro.sort(shards)
        np.testing.assert_array_equal(_sorted_all(run), [1, 3, 5, 9])

    def test_dataset_passthrough(self):
        ds = Dataset.from_workload("uniform", p=4, n_per=500)
        run = repro.sort(ds, algorithm="sample-regular")
        np.testing.assert_array_equal(
            _sorted_all(run), np.sort(np.concatenate(ds.shards))
        )

    def test_dataset_with_conflicting_p_rejected(self):
        ds = Dataset.from_workload("uniform", p=4, n_per=100)
        with pytest.raises(ConfigError, match="p="):
            repro.sort(ds, p=8)


class TestKnobs:
    def test_matches_layered_api(self):
        ds = Dataset.from_workload("lognormal", p=8, n_per=1_000, seed=2)
        via_facade = repro.sort(ds, eps=0.05, seed=7)
        via_sorter = Sorter("hss", eps=0.05, seed=7).run(ds)
        assert via_facade.makespan == via_sorter.makespan
        for a, b in zip(via_facade.shards, via_sorter.shards):
            np.testing.assert_array_equal(a, b)

    def test_algorithm_and_machine_by_name(self):
        run = repro.sort(
            np.arange(1_000)[::-1].copy(),
            p=4,
            algorithm="histogram",
            machine="cloud-ethernet",
            eps=0.2,
        )
        assert run.machine["name"] == "cloud-ethernet"

    def test_unknown_algorithm_is_config_error(self):
        with pytest.raises(ConfigError, match="quicksort"):
            repro.sort(np.arange(100), p=4, algorithm="quicksort")

    def test_payload_columns_ride_along(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 2**30, 2_000)
        mass = rng.random(2_000)
        run = repro.sort(keys, p=4, payloads={"mass": mass})
        carried = np.concatenate(
            [p["mass"] for p in run.payloads if p is not None]
        )
        np.testing.assert_allclose(
            np.sort(carried), np.sort(mass), rtol=0, atol=0
        )

    def test_warm_start_hint_threads_through(self):
        ds = Dataset.from_workload("uniform", p=8, n_per=1_500, seed=4)
        cold = repro.sort(ds, eps=0.1)
        hints = tuple(
            (s[0], s[0]) for s in cold.shards[1:] if len(s)
        )
        warm = repro.sort(ds, eps=0.1, initial_intervals=hints)
        assert (
            warm.splitter_stats.num_rounds
            < cold.splitter_stats.num_rounds
        )

    def test_exported_from_package_root(self):
        assert "sort" in repro.__all__
        from repro.algorithms import sort as algorithms_sort

        assert repro.sort is algorithms_sort
