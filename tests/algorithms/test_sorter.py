"""Tests for the Sorter front end: capabilities, payloads, shim parity."""

import numpy as np
import pytest

from repro.algorithms import Dataset, Sorter
from repro.core.api import parallel_sort
from repro.core.config import HSSConfig
from repro.errors import CapabilityError, ConfigError
from repro.metrics import verify_sorted_output

PAYLOAD_CAPABLE = ["hss", "sample-regular", "sample-random", "histogram"]


def _unique_key_dataset(p: int = 8, n_per: int = 300) -> Dataset:
    """Distinct keys so key->payload association is checkable exactly."""
    rng = np.random.default_rng(77)
    keys = rng.permutation(p * n_per * 4)[: p * n_per].astype(np.int64)
    shards = np.array_split(keys, p)
    # Payload = the key itself: after a correct round trip the output
    # payload array must equal the output key array on every rank.
    return Dataset.from_arrays(shards, payloads=[s.copy() for s in shards])


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("name", PAYLOAD_CAPABLE)
    def test_payload_follows_its_key(self, name):
        ds = _unique_key_dataset()
        run = Sorter(name, eps=0.2).run(ds)
        verify_sorted_output(ds.shards, run.shards)
        assert run.payloads is not None
        for keys, payload in zip(run.shards, run.payloads):
            if payload is None:
                assert len(keys) == 0
                continue
            assert np.array_equal(keys, payload)

    def test_payloadless_run_returns_none(self, small_shards):
        run = Sorter("sample-regular", eps=0.2).run(small_shards)
        assert run.payloads is None

    def test_payloads_kwarg_on_plain_arrays(self, small_shards):
        payloads = [np.arange(len(s)) for s in small_shards]
        run = Sorter("hss", eps=0.1).run(small_shards, payloads=payloads)
        got = np.sort(np.concatenate([v for v in run.payloads if v is not None]))
        assert np.array_equal(got, np.sort(np.concatenate(payloads)))


class TestCapabilityValidation:
    def test_bitonic_rejects_payloads(self):
        ds = _unique_key_dataset()
        with pytest.raises(CapabilityError, match="does not support payloads"):
            Sorter("bitonic").run(ds)

    @pytest.mark.parametrize("name", ["sample-regular-parallel", "radix",
                                      "over-partition", "exact-split",
                                      "scanning", "hss-node"])
    def test_other_non_payload_algorithms_reject_payloads(self, name):
        ds = _unique_key_dataset()
        with pytest.raises(CapabilityError):
            Sorter(name, machine=None).run(ds)

    def test_hss_node_rejects_single_core_machine(self, small_shards):
        from repro.machines import get_machine

        flat = get_machine("laptop", overrides={"cores_per_node": 1})
        with pytest.raises(CapabilityError, match="multicore"):
            Sorter("hss-node", machine=flat).run(small_shards)

    def test_capability_error_is_config_error(self):
        assert issubclass(CapabilityError, ConfigError)

    def test_meaningless_eps_rejected_for_bitonic_and_radix(self):
        with pytest.raises(ConfigError, match="valid keys"):
            Sorter("bitonic", eps=0.05)
        with pytest.raises(ConfigError, match="valid keys"):
            Sorter("radix", eps=0.05)

    def test_unknown_algorithm(self, small_shards):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            Sorter("quicksort")


class TestConfigHandling:
    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(ConfigError, match="not both"):
            Sorter("hss", config=HSSConfig(), eps=0.1)

    def test_prebuilt_config_type_checked(self):
        with pytest.raises(ConfigError, match="expects"):
            Sorter("radix", config=HSSConfig())

    def test_typed_knobs_reach_the_program(self, rng):
        inputs = [rng.integers(0, 10**7, 200) for _ in range(4)]
        run = Sorter("histogram", eps=0.2, probes_per_splitter=7).run(inputs)
        assert run.stats.probes_per_round[1] > 0

    def test_parallel_sort_unknown_kwarg_raises(self, small_shards):
        with pytest.raises(ConfigError, match=r"valid keys.*key_bits"):
            parallel_sort(small_shards, "radix", radix_width=8)


class TestShimParity:
    @pytest.mark.parametrize("name", ["hss", "scanning", "sample-regular",
                                      "histogram", "radix"])
    def test_sorter_matches_parallel_sort(self, name, rng):
        inputs = [rng.integers(0, 10**7, 400) for _ in range(8)]
        legacy = parallel_sort(inputs, name, eps=0.1, seed=2, verify=False)
        spec_config = Sorter(name).spec.legacy_config(eps=0.1, seed=2)
        modern = Sorter(name, config=spec_config, verify=False).run(inputs)
        for a, b in zip(legacy.shards, modern.shards):
            assert np.array_equal(a, b)
        assert legacy.makespan == modern.makespan
        assert (
            legacy.engine_result.stats.bytes == modern.engine_result.stats.bytes
        )

    def test_hss_sort_shim_payloads(self, small_shards):
        from repro.core.api import hss_sort

        payloads = [np.arange(len(s)) for s in small_shards]
        run = hss_sort(small_shards, eps=0.1, payloads=payloads)
        assert run.algorithm == "hss" and run.payloads is not None


class TestUniformStatsExtraction:
    def test_rank_stats_collected_from_every_rank(self, small_shards):
        run = Sorter("hss", eps=0.1).run(small_shards)
        assert len(run.rank_stats) == len(small_shards)
        # HSS broadcasts the central stats, so every rank reports them.
        assert all(s is not None for s in run.rank_stats)
        assert run.stats is run.rank_stats[0]

    def test_splitter_stats_property_gates_on_type(self, small_shards):
        hss = Sorter("hss", eps=0.1).run(small_shards)
        assert hss.splitter_stats is not None
        bitonic = Sorter("bitonic").run(small_shards)
        assert bitonic.splitter_stats is None and bitonic.stats is None
        histogram = Sorter("histogram", eps=0.1).run(small_shards)
        # Histogram sort has stats — just not SplitterStats.
        assert histogram.splitter_stats is None
        assert histogram.stats is not None


class TestBackendSelection:
    def test_default_backend_is_simulated(self):
        run = Sorter("hss", eps=0.2).run(
            Dataset.from_workload("uniform", p=4, n_per=200, seed=0)
        )
        assert run.backend == "simulated"
        assert run.measured is not None
        assert run.measured.backend == "simulated"

    def test_backend_by_name_and_instance(self):
        from repro.runtime import ProcessBackend

        ds = Dataset.from_workload("uniform", p=4, n_per=200, seed=0)
        by_name = Sorter("hss", eps=0.2, backend="process").run(ds)
        by_instance = Sorter(
            "hss", eps=0.2, backend=ProcessBackend(workers=2)
        ).run(ds)
        assert by_name.backend == by_instance.backend == "process"
        for a, b in zip(by_name.shards, by_instance.shards):
            np.testing.assert_array_equal(a, b)

    def test_unknown_backend_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            Sorter("hss", backend="quantum")

    def test_verification_applies_on_process_backend(self):
        # verify=True runs the standard output checks regardless of the
        # executing backend.
        ds = Dataset.from_workload("uniform", p=4, n_per=200, seed=1)
        run = Sorter("hss", eps=0.2, backend="process", verify=True).run(ds)
        verify_sorted_output(ds.shards, run.shards, 0.2)
