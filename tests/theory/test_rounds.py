"""Tests for round-count formulas (§3.3 optimum, §6.2 bound)."""

import math

import pytest

from repro.errors import ConfigError
from repro.theory.rounds import (
    optimal_rounds,
    round_bound_constant_oversampling,
)


class TestConstantOversamplingBound:
    @pytest.mark.parametrize("p", [4000, 8000, 16000, 32000])
    def test_table_6_1_bound_is_8(self, p):
        """Table 6.1's last column: f = 5, eps = 0.02 ⇒ bound 8."""
        assert round_bound_constant_oversampling(p, 0.02, 5.0) == 8

    def test_larger_oversampling_fewer_rounds(self):
        assert round_bound_constant_oversampling(
            10**5, 0.05, 16.0
        ) < round_bound_constant_oversampling(10**5, 0.05, 5.0)

    def test_tighter_eps_more_rounds(self):
        assert round_bound_constant_oversampling(
            10**5, 0.001, 5.0
        ) >= round_bound_constant_oversampling(10**5, 0.1, 5.0)

    def test_small_p(self):
        assert round_bound_constant_oversampling(1, 0.05, 5.0) == 1

    def test_f_must_exceed_two(self):
        with pytest.raises(ConfigError):
            round_bound_constant_oversampling(1024, 0.05, 2.0)

    def test_invalid_eps(self):
        with pytest.raises(ConfigError):
            round_bound_constant_oversampling(1024, 0.0, 5.0)


class TestOptimalRounds:
    def test_formula(self):
        p, eps = 4096, 0.05
        exact, rounded = optimal_rounds(p, eps)
        assert exact == pytest.approx(math.log(math.log(p) / eps))
        assert rounded == round(exact)

    def test_grows_slowly(self):
        small = optimal_rounds(256, 0.05)[0]
        huge = optimal_rounds(2**20, 0.05)[0]
        assert huge > small
        assert huge < small + 2  # log log growth

    def test_minimizes_total_sample(self):
        """k* really is the argmin of k·p·(2 ln p/eps)^{1/k} over integer k."""
        from repro.theory.sample_sizes import sample_size_hss

        p, eps = 10**5, 0.05
        _, k_star = optimal_rounds(p, eps)
        best = min(range(1, 12), key=lambda k: sample_size_hss(p, eps, k))
        assert abs(best - k_star) <= 1

    def test_small_p(self):
        assert optimal_rounds(1, 0.05) == (1.0, 1)
