"""Tests for the probability-bound helpers."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.theory.bounds import (
    binomial_upper_quantile,
    chernoff_multiplicative_tail,
    hoeffding_tail,
    prob_some_interval_unsampled,
    whp_failure_bound,
)


class TestHoeffding:
    def test_formula(self):
        assert hoeffding_tail(100, 10.0) == pytest.approx(
            2 * math.exp(-2 * 100 / 100)
        )

    def test_capped_at_one(self):
        assert hoeffding_tail(10, 0.0) == 1.0

    def test_tighter_with_larger_deviation(self):
        assert hoeffding_tail(100, 50.0) < hoeffding_tail(100, 10.0)

    def test_fixed_relative_deviation_tightens_with_n(self):
        # t scaling like n keeps the exponent growing: the regime the
        # theorems use (deviation proportional to the sum's magnitude).
        assert hoeffding_tail(1000, 100.0) < hoeffding_tail(100, 10.0)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            hoeffding_tail(0, 1.0)
        with pytest.raises(ConfigError):
            hoeffding_tail(10, -1.0)


class TestChernoff:
    def test_formula(self):
        assert chernoff_multiplicative_tail(100, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 2.5)
        )

    def test_zero_mean(self):
        assert chernoff_multiplicative_tail(0, 0.5) == 0.0
        assert chernoff_multiplicative_tail(0, 0.0) == 1.0

    def test_monotone_in_delta(self):
        assert chernoff_multiplicative_tail(50, 1.0) < chernoff_multiplicative_tail(
            50, 0.1
        )


class TestIntervalCoverage:
    def test_theorem_3_2_2_budget(self):
        """Sampling at 2p·ln p/(εN) leaves failure probability ≤ (p−1)/p²."""
        p, eps, n = 1024, 0.05, 10**9
        prob = 2 * p * math.log(p) / (eps * n)
        fail = prob_some_interval_unsampled(p, eps, prob, n)
        assert fail <= (p - 1) / p**2 * 1.01

    def test_tiny_sampling_fails(self):
        assert prob_some_interval_unsampled(64, 0.05, 1e-12, 10**6) > 0.9

    def test_single_processor(self):
        assert prob_some_interval_unsampled(1, 0.05, 0.0, 100) == 0.0

    def test_subunit_window(self):
        assert prob_some_interval_unsampled(100, 0.001, 0.5, 1000) == 1.0


class TestWhp:
    def test_formula(self):
        assert whp_failure_bound(100, 2.0) == pytest.approx(1e-4)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            whp_failure_bound(0)


class TestBinomialQuantile:
    def test_contains_true_quantile(self):
        n, prob = 10_000, 0.01
        m = binomial_upper_quantile(n, prob, 1e-6)
        rng = np.random.default_rng(0)
        draws = rng.binomial(n, prob, size=20_000)
        assert np.all(draws <= m)  # 20k draws at 1e-6 budget: safe

    def test_not_absurdly_loose(self):
        n, prob = 10_000, 0.01
        m = binomial_upper_quantile(n, prob, 1e-6)
        assert m < 3 * n * prob

    def test_zero_mean(self):
        assert binomial_upper_quantile(100, 0.0, 0.01) == 0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            binomial_upper_quantile(-1, 0.5, 0.01)
        with pytest.raises(ConfigError):
            binomial_upper_quantile(10, 0.5, 0.0)
