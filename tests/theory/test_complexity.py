"""Tests for the Table 5.1 complexity rows."""

from repro.theory.complexity import complexity_table, render_table_5_1


class TestTableStructure:
    def test_six_rows_in_paper_order(self):
        rows = complexity_table()
        names = [r.name for r in rows]
        assert len(rows) == 6
        assert "regular" in names[0]
        assert "random" in names[1]
        assert "one round" in names[2]
        assert "log(log" in names[5]

    def test_every_row_has_formulas(self):
        for row in complexity_table():
            assert row.sample_formula.startswith("O(")
            assert "N/p" in row.computation_formula
            assert row.communication_formula.startswith("O(")


class TestNumericEvaluation:
    P, EPS, N = 100_000, 0.05, 100_000 * 10**6

    def test_sample_sizes_strictly_decreasing(self):
        sizes = [r.sample_keys(self.P, self.EPS, self.N) for r in complexity_table()]
        assert sizes == sorted(sizes, reverse=True)

    def test_hss_splitter_work_comparable_to_shared_terms(self):
        """For HSS the splitter term is the same order as local sort+merge;
        for regular-sampling sample sort it dominates by orders of magnitude
        (the Table 5.1 story)."""
        import math

        rows = complexity_table()
        n_over_p = self.N / self.P
        shared = n_over_p * math.log2(n_over_p) + n_over_p * math.log2(self.P)
        hss = rows[5].computation_ops(self.P, self.EPS, self.N)
        regular = rows[0].computation_ops(self.P, self.EPS, self.N)
        assert hss < 3 * shared
        assert regular > 30 * shared

    def test_communication_includes_data_movement(self):
        for row in complexity_table():
            comm = row.communication_words(self.P, self.EPS, self.N)
            assert comm >= self.N / self.P


class TestRendering:
    def test_render_contains_all_rows(self):
        text = render_table_5_1()
        for row in complexity_table():
            assert row.name in text

    def test_render_contains_paper_bytes(self):
        text = render_table_5_1()
        assert "1.60 TB" in text
        assert "184 MB" in text
