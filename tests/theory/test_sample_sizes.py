"""Tests pinning the closed-form sample sizes to the paper's numbers."""

import math

import pytest

from repro.errors import ConfigError
from repro.theory.sample_sizes import (
    format_bytes,
    sample_bytes,
    sample_size_hss,
    sample_size_hss_constant,
    sample_size_random,
    sample_size_regular,
    sample_size_scanning,
)


class TestPaperNumbers:
    """The §1 example: p = 64·10³, ε = 0.05, N/p = 10⁶, 8-byte keys."""

    P, EPS, N = 64_000, 0.05, 64_000 * 10**6

    def test_regular_655_gb(self):
        gb = sample_bytes(sample_size_regular(self.P, self.EPS)) / 1e9
        assert gb == pytest.approx(655, rel=0.01)

    def test_random_5_gb(self):
        gb = sample_bytes(sample_size_random(self.P, self.N, self.EPS)) / 1e9
        assert 4.5 <= gb <= 5.5

    def test_hss_one_round_250_mb(self):
        mb = sample_bytes(sample_size_hss(self.P, self.EPS, 1, constant=2.0)) / 1e6
        assert 200 <= mb <= 260  # paper: "250 MB"

    def test_hss_two_rounds_22_mb(self):
        mb = sample_bytes(sample_size_hss(self.P, self.EPS, 2, constant=2.0)) / 1e6
        assert 19 <= mb <= 24  # paper: "22 MB"


class TestTable51Numbers:
    """Table 5.1's worked column: p = 10⁵, ε = 5% (constant=1 convention)."""

    P, EPS = 100_000, 0.05
    N = 100_000 * 10**6

    def test_regular_1600_gb(self):
        gb = sample_bytes(sample_size_regular(self.P, self.EPS)) / 1e9
        assert gb == pytest.approx(1600, rel=0.01)

    def test_random_8_1_gb(self):
        gb = sample_bytes(sample_size_random(self.P, self.N, self.EPS)) / 1e9
        assert gb == pytest.approx(8.1, rel=0.05)

    def test_hss_one_round_184_mb(self):
        mb = sample_bytes(sample_size_hss(self.P, self.EPS, 1, constant=1.0)) / 1e6
        assert mb == pytest.approx(184, rel=0.02)

    def test_hss_two_rounds_24_mb(self):
        mb = sample_bytes(sample_size_hss(self.P, self.EPS, 2, constant=1.0)) / 1e6
        assert mb == pytest.approx(24, rel=0.05)

    def test_hss_loglog_about_10_mb(self):
        mb = sample_bytes(sample_size_hss_constant(self.P, self.EPS, 2.0)) / 1e6
        assert 4 <= mb <= 12  # paper: "10 MB"


class TestScalingShapes:
    def test_ordering_at_scale(self):
        """Fig 4.1's vertical ordering at large p."""
        p, eps, n = 2**18, 0.05, 2**18 * 10**6
        sizes = [
            sample_size_regular(p, eps),
            sample_size_random(p, n, eps),
            sample_size_hss(p, eps, 1),
            sample_size_hss(p, eps, 2),
            sample_size_hss_constant(p, eps),
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_scanning_below_one_round_hss(self):
        assert sample_size_scanning(1024, 0.05) < sample_size_hss(1024, 0.05, 1)

    def test_k_root_behaviour(self):
        p, eps = 4096, 0.05
        base = 2 * math.log(p) / eps
        for k in (1, 2, 3, 4):
            assert sample_size_hss(p, eps, k) == pytest.approx(
                k * p * base ** (1 / k)
            )

    def test_single_processor_degenerates(self):
        assert sample_size_hss(1, 0.05) == 0.0
        assert sample_size_hss_constant(1, 0.05) == 0.0


class TestValidation:
    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            sample_size_regular(0, 0.05)
        with pytest.raises(ConfigError):
            sample_size_regular(4, 0.0)
        with pytest.raises(ConfigError):
            sample_size_hss(4, 0.05, 0)
        with pytest.raises(ConfigError):
            sample_size_random(4, 1, 0.05)
        with pytest.raises(ConfigError):
            sample_bytes(100, 0)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0.00 B"),
            (512, "512 B"),
            (2.5e3, "2.50 KB"),
            (655e9, "655 GB"),
            (1.6e12, "1.60 TB"),
        ],
    )
    def test_rendering(self, value, expected):
        assert format_bytes(value) == expected
