"""The localhost HTTP front end: endpoints, status codes, loopback-only."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.service import SortService
from repro.service.http import make_server

JOB = {
    "id": "h1",
    "scenario": {
        "algorithm": "hss",
        "workload": "uniform",
        "procs": 4,
        "keys_per_rank": 800,
    },
}


@pytest.fixture()
def server():
    srv = make_server(SortService(), port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _get(server, path):
    host, port = server.server_address[:2]
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server, path, body: bytes):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEndpoints:
    def test_healthz(self, server):
        from repro._version import __version__
        from repro.service.jobs import JOB_SCHEMA_VERSION

        code, body = _get(server, "/healthz")
        assert code == 200
        # Superset of the pre-telemetry liveness body: 'status' is
        # unchanged, version provenance rides along.
        assert body["status"] == "ok"
        assert body["version"] == __version__
        assert body["job_schema_version"] == JOB_SCHEMA_VERSION

    def test_sort_then_stats(self, server):
        code, reply = _post(server, "/sort", json.dumps(JOB).encode())
        assert code == 200
        assert reply["status"] == "ok"
        assert reply["cache"]["hit"] is False

        code, repeat = _post(server, "/sort", json.dumps(JOB).encode())
        assert code == 200
        assert repeat["cache"]["hit"] is True
        assert repeat["metrics"]["rounds"] < reply["metrics"]["rounds"]

        code, stats = _get(server, "/stats")
        assert code == 200
        assert stats["jobs_total"] == 2
        assert stats["cache"]["hits"] == 1
        # /stats is now a strict superset: the metrics snapshot agrees
        # with the legacy counters it derives from.
        snap = stats["metrics"]
        assert snap["repro_jobs_total"] == {"status=ok": 2.0}
        assert snap["repro_job_modeled_latency_seconds"]["count"] == 2
        assert snap["repro_cache_hits_total"] == 1.0

    def test_metrics_serves_parseable_prometheus_text(self, server):
        import urllib.request

        from repro.telemetry import parse_prometheus_text

        _post(server, "/sort", json.dumps(JOB).encode())
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics"
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        parsed = parse_prometheus_text(text)
        assert parsed["repro_jobs_total"][(("status", "ok"),)] == 1.0
        assert (
            parsed["repro_job_wall_latency_seconds_count"][()] == 1.0
        )
        buckets = parsed["repro_job_modeled_latency_seconds_bucket"]
        assert buckets[(("le", "+Inf"),)] == 1.0

    def test_malformed_job_is_400_with_structured_error(self, server):
        code, reply = _post(server, "/sort", b"{not json")
        assert code == 400
        assert reply["status"] == "error"
        assert reply["error"]["type"] == "JobError"

    def test_unknown_paths_404(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", b"{}")[0] == 404


class TestLoopbackOnly:
    def test_non_loopback_host_refused(self):
        with pytest.raises(ConfigError, match="loopback"):
            make_server(SortService(), host="0.0.0.0")
