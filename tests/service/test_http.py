"""The localhost HTTP front end: endpoints, status codes, loopback-only."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.service import SortService
from repro.service.http import make_server

JOB = {
    "id": "h1",
    "scenario": {
        "algorithm": "hss",
        "workload": "uniform",
        "procs": 4,
        "keys_per_rank": 800,
    },
}


@pytest.fixture()
def server():
    srv = make_server(SortService(), port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _get(server, path):
    host, port = server.server_address[:2]
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _post(server, path, body: bytes):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEndpoints:
    def test_healthz(self, server):
        assert _get(server, "/healthz") == (200, {"status": "ok"})

    def test_sort_then_stats(self, server):
        code, reply = _post(server, "/sort", json.dumps(JOB).encode())
        assert code == 200
        assert reply["status"] == "ok"
        assert reply["cache"]["hit"] is False

        code, repeat = _post(server, "/sort", json.dumps(JOB).encode())
        assert code == 200
        assert repeat["cache"]["hit"] is True
        assert repeat["metrics"]["rounds"] < reply["metrics"]["rounds"]

        code, stats = _get(server, "/stats")
        assert code == 200
        assert stats["jobs_total"] == 2
        assert stats["cache"]["hits"] == 1

    def test_malformed_job_is_400_with_structured_error(self, server):
        code, reply = _post(server, "/sort", b"{not json")
        assert code == 400
        assert reply["status"] == "error"
        assert reply["error"]["type"] == "JobError"

    def test_unknown_paths_404(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", b"{}")[0] == 404


class TestLoopbackOnly:
    def test_non_loopback_host_refused(self):
        with pytest.raises(ConfigError, match="loopback"):
            make_server(SortService(), host="0.0.0.0")
