"""SplitterCache: LRU semantics, eviction bounds, counter accounting."""

import pytest

from repro.errors import ConfigError
from repro.service import SplitterCache


class TestSplitterCache:
    def test_miss_then_hit(self):
        cache = SplitterCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", [(1, 2)])
        assert cache.get("a") == ((1, 2),)
        assert cache.stats() == {
            "size": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_put_normalizes_to_tuple_pairs(self):
        cache = SplitterCache()
        cache.put("k", [[3, 4], (5, 5)])
        assert cache.get("k") == ((3, 4), (5, 5))

    def test_size_never_exceeds_capacity(self):
        cache = SplitterCache(capacity=3)
        for i in range(50):
            cache.put(f"fp{i}", [(i, i)])
            assert len(cache) <= 3
        assert cache.stats()["size"] == 3
        assert cache.stats()["evictions"] == 47

    def test_lru_eviction_order(self):
        cache = SplitterCache(capacity=2)
        cache.put("a", [(1, 1)])
        cache.put("b", [(2, 2)])
        cache.get("a")  # refresh "a": "b" becomes LRU
        cache.put("c", [(3, 3)])
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_overwrite_same_key_does_not_evict(self):
        cache = SplitterCache(capacity=2)
        cache.put("a", [(1, 1)])
        cache.put("b", [(2, 2)])
        cache.put("a", [(9, 9)])
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 0
        assert cache.get("a") == ((9, 9),)

    def test_contains_is_accounting_free(self):
        cache = SplitterCache()
        cache.put("a", [(1, 1)])
        assert "a" in cache and "zz" not in cache
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_empty_intervals_rejected(self):
        with pytest.raises(ConfigError, match="empty interval"):
            SplitterCache().put("a", [])

    def test_capacity_validated(self):
        with pytest.raises(ConfigError, match="capacity"):
            SplitterCache(capacity=0)
