"""SortService: warm starts, batching, stream discipline, counters."""

import io
import json

import numpy as np
import pytest

from repro.service import SortService, validate_reply
from repro.service.daemon import shard_boundary_intervals

UNIFORM = {
    "algorithm": "hss",
    "workload": "uniform",
    "procs": 8,
    "keys_per_rank": 1_500,
}
LOGNORMAL = {**UNIFORM, "workload": "lognormal"}


def _job(job_id, scenario):
    return json.dumps({"id": job_id, "scenario": scenario})


def _stream(service, lines):
    out = io.StringIO()
    summary = service.process_stream(lines, out)
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    for reply in replies:
        assert validate_reply(reply) == [], reply
    return replies, summary


class TestWarmStartPin:
    def test_repeat_job_hits_cache_with_strictly_fewer_rounds(self):
        """The PR's headline pin, at the service boundary.

        The second job with an identical fingerprint must (a) report a
        cache hit and (b) perform strictly fewer histogram rounds than
        its cold twin — submitted non-adjacently so the warm start comes
        from the LRU cache, not intra-batch chaining.
        """
        service = SortService()
        replies, _ = _stream(
            service,
            [
                _job("cold", UNIFORM),
                _job("other", LOGNORMAL),
                _job("warm", UNIFORM),
            ],
        )
        cold, other, warm = replies
        assert cold["fingerprint"] == warm["fingerprint"]
        assert cold["fingerprint"] != other["fingerprint"]
        assert cold["cache"] == {
            "hit": False, "source": None,
            "warm_capable": True, "intervals": 0,
        }
        assert warm["cache"]["hit"] is True
        assert warm["cache"]["source"] == "cache"
        assert warm["cache"]["intervals"] == UNIFORM["procs"] - 1
        assert warm["metrics"]["rounds"] < cold["metrics"]["rounds"]
        assert warm["metrics"]["rounds"] == 1
        # Warm start is a latency optimization, not a semantics change:
        # modeled makespan drops, the balance guarantee holds.
        assert warm["metrics"]["makespan_s"] < cold["metrics"]["makespan_s"]
        assert warm["metrics"]["imbalance"] == cold["metrics"]["imbalance"]

    def test_warm_incapable_algorithm_never_consults_cache(self):
        service = SortService()
        scenario = {**UNIFORM, "algorithm": "sample-regular"}
        replies, _ = _stream(
            service, [_job("a", scenario), _job("b", scenario)]
        )
        for reply in replies:
            assert reply["status"] == "ok"
            assert reply["cache"]["warm_capable"] is False
            assert reply["cache"]["hit"] is False
        assert service.cache.stats()["size"] == 0


class TestBatching:
    def test_adjacent_same_fingerprint_jobs_warm_chain(self):
        service = SortService()
        replies, _ = _stream(
            service, [_job(f"j{i}", UNIFORM) for i in range(3)]
        )
        assert [r["batch"] for r in replies] == [
            {"size": 3, "position": 0},
            {"size": 3, "position": 1},
            {"size": 3, "position": 2},
        ]
        assert replies[0]["cache"]["hit"] is False
        for follower in replies[1:]:
            assert follower["cache"]["source"] == "batch"
            assert follower["metrics"]["rounds"] == 1
        # One cache lookup per batch: the head's miss, no follower hits.
        assert service.cache.stats()["misses"] == 1
        assert service.cache.stats()["hits"] == 0

    def test_fingerprint_change_flushes_batch(self):
        service = SortService()
        replies, _ = _stream(
            service,
            [_job("a", UNIFORM), _job("b", LOGNORMAL), _job("c", UNIFORM)],
        )
        assert [r["batch"]["size"] for r in replies] == [1, 1, 1]
        # Non-adjacent repeat warm-starts from the cache instead.
        assert replies[2]["cache"]["source"] == "cache"

    def test_batch_max_bounds_batch_size(self):
        service = SortService(batch_max=2)
        replies, _ = _stream(
            service, [_job(f"j{i}", UNIFORM) for i in range(5)]
        )
        assert [r["batch"] for r in replies] == [
            {"size": 2, "position": 0},
            {"size": 2, "position": 1},
            {"size": 2, "position": 0},
            {"size": 2, "position": 1},
            {"size": 1, "position": 0},
        ]
        # Later batch heads warm-start from the cache entry the first
        # batch wrote.
        assert replies[2]["cache"]["source"] == "cache"


class TestStreamDiscipline:
    def test_replies_in_input_order_across_errors(self):
        service = SortService()
        replies, summary = _stream(
            service,
            [
                _job("ok1", UNIFORM),
                "garbage",
                "",  # blank lines are skipped entirely
                json.dumps({"id": "bad-algo", "scenario": {
                    **UNIFORM, "algorithm": "quicksort"}}),
                _job("ok2", UNIFORM),
            ],
        )
        assert [r["id"] for r in replies] == ["ok1", None, "bad-algo", "ok2"]
        assert [r["status"] for r in replies] == [
            "ok", "error", "error", "ok",
        ]
        assert replies[1]["error"]["type"] == "JobError"
        assert replies[2]["error"]["type"] == "JobError"
        assert "quicksort" in replies[2]["error"]["message"]
        assert summary["jobs_total"] == 4
        assert summary["errors_total"] == 2

    def test_service_defaults_injected_but_job_wins(self):
        service = SortService(machine="cloud-ethernet")
        replies, _ = _stream(
            service,
            [
                _job("default", UNIFORM),
                _job("explicit", {**UNIFORM, "machine": "laptop"}),
            ],
        )
        assert replies[0]["scenario"]["machine"] == "cloud-ethernet"
        assert replies[1]["scenario"]["machine"] == "laptop"

    def test_cache_capacity_bounds_survive_streaming(self):
        service = SortService(cache_capacity=1)
        scenarios = [UNIFORM, LOGNORMAL, UNIFORM]
        replies, _ = _stream(
            service, [_job(f"j{i}", s) for i, s in enumerate(scenarios)]
        )
        # Capacity 1: the lognormal job evicted the uniform entry, so the
        # uniform repeat misses.
        assert replies[2]["cache"]["hit"] is False
        stats = service.cache.stats()
        assert stats["size"] == 1
        assert stats["evictions"] == 2

    def test_batch_max_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="batch_max"):
            SortService(batch_max=0)


class TestShardBoundaryIntervals:
    def test_degenerate_pairs_skip_empty_shards(self):
        shards = [
            np.array([1, 2]), np.array([5, 6]),
            np.array([], dtype=np.int64), np.array([9]),
        ]
        assert shard_boundary_intervals(shards) == ((5, 5), (9, 9))

    def test_single_shard_yields_nothing(self):
        assert shard_boundary_intervals([np.array([1, 2, 3])]) is None

    def test_structured_keys_yield_no_hints(self):
        tagged = np.array(
            [(1, 0), (2, 1)], dtype=[("key", "i8"), ("tag", "i8")]
        )
        assert shard_boundary_intervals([tagged, tagged]) is None
