"""The service wire format: job/reply schema, round-trips, rejection."""

import json

import pytest

from repro.service import (
    JOB_SCHEMA_VERSION,
    JobError,
    SortJob,
    error_reply,
    parse_job_line,
    strip_volatile_reply,
    validate_job,
    validate_reply,
)

GOOD = {
    "id": "j1",
    "scenario": {
        "algorithm": "hss",
        "workload": "uniform",
        "procs": 4,
        "keys_per_rank": 500,
    },
}


class TestJobRoundTrip:
    def test_parse_and_serialize(self):
        job = parse_job_line(json.dumps(GOOD))
        assert job.id == "j1"
        assert job.scenario.algorithm == "hss"
        data = job.to_dict()
        assert data["schema_version"] == JOB_SCHEMA_VERSION
        # to_dict -> from_dict is the identity on the validated form.
        assert SortJob.from_dict(data) == job

    def test_scenario_defaults_materialize(self):
        job = parse_job_line(json.dumps(GOOD))
        d = job.to_dict()["scenario"]
        assert d["machine"] == "laptop"
        assert d["backend"] == "simulated"

    def test_explicit_schema_version_accepted(self):
        job = SortJob.from_dict(
            {**GOOD, "schema_version": JOB_SCHEMA_VERSION}
        )
        assert job.id == "j1"


class TestJobRejection:
    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"id": None}, "missing required key 'id'"),
            ({"id": ""}, "non-empty string"),
            ({"id": 7}, "non-empty string"),
            ({"scenario": None}, "missing required key 'scenario'"),
            ({"scenario": "hss"}, "must be an object"),
            ({"schema_version": 99}, "schema_version"),
            ({"extra": 1}, "unknown job key"),
        ],
    )
    def test_structured_violations(self, mutation, fragment):
        data = {**GOOD, **mutation}
        data = {k: v for k, v in data.items() if v is not None}
        errors = validate_job(data)
        assert any(fragment in e for e in errors), errors
        with pytest.raises(JobError) as exc:
            SortJob.from_dict(data)
        assert fragment in str(exc.value)

    def test_bad_scenario_field_is_named(self):
        data = {
            **GOOD,
            "scenario": {**GOOD["scenario"], "algorithm": "quicksort"},
        }
        errors = validate_job(data)
        assert any("quicksort" in e for e in errors), errors

    def test_not_json_raises_joberror(self):
        with pytest.raises(JobError, match="not valid JSON"):
            parse_job_line("{nope")

    def test_non_object_rejected(self):
        assert validate_job([1, 2]) == [
            "job must be a JSON object, got list"
        ]


class TestReplies:
    def test_error_reply_validates(self):
        reply = error_reply("j9", ValueError("boom"))
        assert validate_reply(reply) == []
        assert reply["error"] == {"type": "ValueError", "message": "boom"}

    def test_ok_reply_requires_service_blocks(self):
        errors = validate_reply(
            {"schema_version": JOB_SCHEMA_VERSION, "id": "x", "status": "ok"}
        )
        joined = " ".join(errors)
        for key in ("scenario", "metrics", "machine", "fingerprint", "cache"):
            assert key in joined

    def test_unknown_status_rejected(self):
        errors = validate_reply(
            {
                "schema_version": JOB_SCHEMA_VERSION,
                "id": "x",
                "status": "maybe",
            }
        )
        assert any("'maybe'" in e for e in errors)

    def test_strip_volatile_drops_only_wall_and_measured(self):
        reply = {
            "id": "a",
            "status": "ok",
            "wall_s": 0.01,
            "measured": {"backend": "process"},
            "metrics": {"makespan_s": 1.0},
        }
        stripped = strip_volatile_reply(reply)
        assert "wall_s" not in stripped and "measured" not in stripped
        assert stripped["metrics"] == {"makespan_s": 1.0}
        # Projection is non-destructive.
        assert "wall_s" in reply
