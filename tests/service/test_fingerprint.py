"""Workload fingerprints: stability where it matters, sensitivity too."""

import numpy as np

from repro.algorithms import Dataset
from repro.service import key_sketch, workload_fingerprint
from repro.service.fingerprint import SKETCH_CELLS, SKETCH_QUANTILES


def _ds(workload="uniform", p=4, n=1_000, seed=0, **kw):
    return Dataset.from_workload(workload, p=p, n_per=n, seed=seed, **kw)


class TestKeySketch:
    def test_deterministic(self):
        ds = _ds()
        assert key_sketch(ds.shards) == key_sketch(ds.shards)

    def test_shape_and_range(self):
        sketch = key_sketch(_ds().shards)
        assert len(sketch) == SKETCH_QUANTILES
        assert all(0 <= cell < SKETCH_CELLS for cell in sketch)

    def test_empty_input(self):
        assert key_sketch([np.array([], dtype=np.int64)]) == ()

    def test_constant_keys_zero_span(self):
        shards = [np.full(100, 7, dtype=np.int64)]
        assert key_sketch(shards) == (0,) * SKETCH_QUANTILES

    def test_distribution_shape_separates(self):
        uniform = key_sketch(_ds("uniform").shards)
        skewed = key_sketch(_ds("lognormal").shards)
        assert uniform != skewed


class TestWorkloadFingerprint:
    def test_identical_datasets_share_fingerprint(self):
        a = workload_fingerprint("hss", _ds())
        b = workload_fingerprint("hss", _ds())
        assert a == b
        assert len(a) == 16 and int(a, 16) >= 0

    def test_algorithm_is_part_of_the_key(self):
        ds = _ds()
        assert workload_fingerprint("hss", ds) != workload_fingerprint(
            "histogram", ds
        )

    def test_rank_count_is_part_of_the_key(self):
        assert workload_fingerprint("hss", _ds(p=4)) != workload_fingerprint(
            "hss", _ds(p=8)
        )

    def test_distribution_is_part_of_the_key(self):
        assert workload_fingerprint(
            "hss", _ds("uniform")
        ) != workload_fingerprint("hss", _ds("lognormal"))

    def test_record_schema_is_part_of_the_key(self):
        bare = _ds()
        records = _ds(payloads={"mass": "f8"})
        assert workload_fingerprint("hss", bare) != workload_fingerprint(
            "hss", records
        )
