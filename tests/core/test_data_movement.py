"""Tests for the bucketize / all-to-all / merge phase."""

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.core.data_movement import (
    Shard,
    exchange_and_merge,
    partition_by_splitters,
)


class TestShard:
    def test_len_and_slice(self):
        s = Shard(np.arange(10), np.arange(10) * 2)
        piece = s.slice(2, 5)
        assert len(piece) == 3
        assert np.array_equal(piece.payload, [4, 6, 8])

    def test_payload_length_checked(self):
        with pytest.raises(ValueError):
            Shard(np.arange(5), np.arange(4))

    def test_no_payload(self):
        s = Shard(np.arange(3))
        assert s.slice(0, 2).payload is None


class TestPartition:
    def test_positions_cut(self):
        shard = Shard(np.arange(10))
        parts = partition_by_splitters(shard, np.array([3, 7]))
        assert [len(x) for x in parts] == [3, 4, 3]
        assert np.array_equal(parts[1].keys, [3, 4, 5, 6])

    def test_empty_buckets(self):
        shard = Shard(np.arange(4))
        parts = partition_by_splitters(shard, np.array([0, 0, 4]))
        assert [len(x) for x in parts] == [0, 0, 4, 0]

    def test_decreasing_positions_rejected(self):
        with pytest.raises(ValueError):
            partition_by_splitters(Shard(np.arange(5)), np.array([3, 1]))


class TestExchangeAndMerge:
    def run_exchange(self, inputs, payloads=None, p=None):
        p = p or len(inputs)
        engine = BSPEngine(p)

        def program(ctx, keys, payload):
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            if payload is not None:
                payload = payload[order]
            shard = Shard(keys, payload)
            # Equal-width key-range splitters for the test.
            splitters = np.linspace(0, 1000, p + 1)[1:-1].astype(keys.dtype)
            positions = np.searchsorted(keys, splitters, side="left")
            merged = yield from exchange_and_merge(ctx, shard, positions)
            return merged

        args = [
            (inputs[r], payloads[r] if payloads else None) for r in range(p)
        ]
        return engine.run(program, rank_args=args)

    def test_globally_sorted_output(self, rng):
        inputs = [rng.integers(0, 1000, 200) for _ in range(4)]
        res = self.run_exchange(inputs)
        outs = [r.keys for r in res.returns]
        everything = np.concatenate(outs)
        assert np.array_equal(
            everything, np.sort(np.concatenate(inputs))
        )

    def test_keys_conserved(self, rng):
        inputs = [rng.integers(0, 1000, 100) for _ in range(8)]
        res = self.run_exchange(inputs)
        total = sum(len(r.keys) for r in res.returns)
        assert total == 800

    def test_payload_travels_with_keys(self, rng):
        p = 4
        inputs = [rng.permutation(np.arange(r * 250, (r + 1) * 250)) for r in range(p)]
        payloads = [keys * 10 for keys in inputs]
        res = self.run_exchange(inputs, payloads)
        for ret in res.returns:
            assert np.array_equal(ret.payload, ret.keys * 10)

    def test_empty_rank(self):
        inputs = [np.arange(100), np.empty(0, dtype=np.int64)]
        res = self.run_exchange(inputs)
        outs = [r.keys for r in res.returns]
        assert sum(len(o) for o in outs) == 100

    def test_wrong_positions_length(self):
        engine = BSPEngine(2)

        def program(ctx, keys):
            shard = Shard(np.sort(keys))
            merged = yield from exchange_and_merge(
                ctx, shard, np.array([1, 2, 3])
            )
            return merged

        with pytest.raises(ValueError, match="boundary positions"):
            engine.run(program, rank_args=[(np.arange(5),), (np.arange(5),)])

    def test_alltoall_bytes_accounted(self, rng):
        inputs = [rng.integers(0, 1000, 100) for _ in range(4)]
        res = self.run_exchange(inputs)
        assert res.stats.by_op.get("alltoallv", 0) == 1
        assert res.stats.bytes >= 400 * 8  # all keys traverse the wire
