"""Tests for the §3.4 approximate-histogram key space."""

import numpy as np
import pytest

from repro.core.approx_histogram import ApproxHistogramKeySpace
from repro.errors import ConfigError


class TestConstruction:
    def test_error_budget_split(self):
        ks = ApproxHistogramKeySpace(np.int64, eps=0.08)
        assert ks.state_eps == pytest.approx(0.04)
        assert ks.oracle_eps == pytest.approx(0.02)

    def test_invalid_eps(self):
        with pytest.raises(ConfigError):
            ApproxHistogramKeySpace(np.int64, eps=0.0)

    def test_state_uses_tightened_window(self):
        ks = ApproxHistogramKeySpace(np.int64, eps=0.1)
        state = ks.make_state(10_000, 8, 0.1)
        assert state.tolerance == pytest.approx(0.05 * 10_000 / 16)

    def test_counts_require_prepare(self):
        ks = ApproxHistogramKeySpace(np.int64, eps=0.1)
        with pytest.raises(ConfigError, match="prepare"):
            ks.local_counts(np.arange(10), 0, np.array([5]))


class TestOracleCounts:
    def make(self, n=20_000, p=16, eps=0.1, seed=0):
        keys = np.sort(np.random.default_rng(seed).integers(0, 10**9, n))
        ks = ApproxHistogramKeySpace(np.int64, eps=eps)
        ks.prepare(keys, p, np.random.default_rng(seed + 1))
        return keys, ks

    def test_prepare_idempotent(self):
        keys, ks = self.make()
        sample = ks.oracle.sample
        ks.prepare(keys, 16, np.random.default_rng(99))
        assert ks.oracle.sample is sample

    def test_counts_are_floats_near_truth(self):
        keys, ks = self.make()
        probes = np.sort(np.random.default_rng(2).integers(0, 10**9, 100))
        est = ks.local_counts(keys, 0, probes)
        truth = np.searchsorted(keys, probes, side="left")
        assert est.dtype.kind == "f"
        # One-block error bound from the representative sample.
        assert np.max(np.abs(est - truth)) <= ks.oracle.keys_per_sample + 1

    def test_resident_sample_much_smaller_than_input(self):
        keys, ks = self.make(n=50_000, p=64)
        assert ks.resident_sample_size < len(keys) / 5

    def test_sampling_and_buckets_stay_exact(self):
        """Only histograms are approximated; bucketing uses the real data."""
        keys, ks = self.make()
        pos = ks.bucket_positions(keys, 0, keys[[1000, 5000]])
        assert pos.tolist() == [1000, 5000]
