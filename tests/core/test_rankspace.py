"""Tests for the rank-space simulator (the large-p engine)."""

import numpy as np
import pytest

from repro.core.config import HSSConfig
from repro.core.rankspace import (
    RankSpaceSimulator,
    _sample_ranks_in_intervals,
    simulate_histogram_sort_rounds,
)
from repro.errors import ConfigError
from repro.theory.rounds import round_bound_constant_oversampling


class TestRankSpaceHSS:
    def test_finalizes_and_respects_tolerance(self):
        cfg = HSSConfig.constant_oversampling(5.0, eps=0.05, seed=1)
        stats = RankSpaceSimulator(10**6, 256, cfg).run()
        assert stats.all_finalized
        assert stats.max_rank_error <= 0.05 * 10**6 / (2 * 256)

    def test_rounds_within_paper_bound(self):
        """Table 6.1's claim at test scale: observed ≤ bound."""
        cfg = HSSConfig.constant_oversampling(5.0, eps=0.02, seed=2)
        stats = RankSpaceSimulator(4_000 * 1000, 4_000, cfg).run()
        bound = round_bound_constant_oversampling(4_000, 0.02, 5.0)
        assert stats.num_rounds <= bound

    def test_geometric_one_round(self):
        cfg = HSSConfig.one_round(0.05, seed=3)
        stats = RankSpaceSimulator(10**6, 128, cfg).run()
        assert stats.num_rounds == 1
        assert stats.all_finalized

    def test_sample_size_concentration_one_round(self):
        """Lemma 3.2.1: one-round sample ≈ 2·p·ln p/ε."""
        import math

        p, eps = 512, 0.05
        cfg = HSSConfig.one_round(eps, seed=4)
        stats = RankSpaceSimulator(p * 10**4, p, cfg).run()
        expected = 2 * p * math.log(p) / eps
        measured = stats.rounds[0].sample_size
        assert 0.8 * expected <= measured <= 1.2 * expected

    def test_mass_shrinks_geometrically(self):
        cfg = HSSConfig.constant_oversampling(8.0, eps=0.01, seed=5)
        stats = RankSpaceSimulator(10**7, 512, cfg).run()
        masses = [r.candidate_mass_before for r in stats.rounds]
        # Theorem 3.3.1-style shrinkage: each round divides mass by >= f/4.
        for a, b in zip(masses, masses[1:]):
            assert b < a / 2

    def test_statistics_match_spmd_implementation(self, rng):
        """Rank-space and full-SPMD runs agree in distribution: compare
        round counts and per-round sample magnitudes on a common config."""
        from repro.core.api import hss_sort

        p, n_per = 16, 2000
        cfg = HSSConfig.constant_oversampling(5.0, eps=0.02, seed=7)
        inputs = [rng.integers(0, 10**9, n_per) for _ in range(p)]
        spmd = hss_sort(inputs, config=cfg).splitter_stats
        sim = RankSpaceSimulator(p * n_per, p, cfg).run()
        assert abs(sim.num_rounds - spmd.num_rounds) <= 1
        # First-round samples are Binomial(N, 5p/N) in both: compare loosely.
        assert (
            abs(sim.rounds[0].sample_size - spmd.rounds[0].sample_size)
            <= 6 * np.sqrt(5 * p)
        )

    def test_deterministic_under_seed(self):
        cfg = HSSConfig.constant_oversampling(5.0, eps=0.05, seed=11)
        a = RankSpaceSimulator(10**6, 128, cfg).run()
        b = RankSpaceSimulator(10**6, 128, cfg).run()
        assert [r.sample_size for r in a.rounds] == [
            r.sample_size for r in b.rounds
        ]

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            RankSpaceSimulator(10, 100, HSSConfig())

    @pytest.mark.slow
    def test_large_p_fast(self):
        """256K parts (the paper's largest Fig 4.1 point) stays tractable."""
        import time

        cfg = HSSConfig.constant_oversampling(5.0, eps=0.05, seed=13)
        t0 = time.time()
        stats = RankSpaceSimulator(2**18 * 100, 2**18, cfg).run()
        assert stats.all_finalized
        assert time.time() - t0 < 60


class TestBatchedIntervalSampler:
    """The vectorized Bernoulli sampler behind RankSpaceSimulator."""

    @staticmethod
    def intervals():
        lo = np.array([0, 100, 10_000, 10_050], dtype=np.int64)
        hi = np.array([40, 1_100, 10_040, 10_051], dtype=np.int64)
        return lo, hi

    def test_picks_are_sorted_unique_and_in_range(self):
        lo, hi = self.intervals()
        rng = np.random.default_rng(0)
        picks = _sample_ranks_in_intervals(lo, hi, 0.3, rng)
        assert np.all(np.diff(picks) > 0)
        inside = np.zeros(len(picks), dtype=bool)
        for a, b in zip(lo, hi):
            inside |= (picks >= a) & (picks < b)
        assert inside.all()

    def test_prob_one_returns_every_rank(self):
        lo, hi = self.intervals()
        picks = _sample_ranks_in_intervals(lo, hi, 1.0, np.random.default_rng(1))
        assert len(picks) == int((hi - lo).sum())

    def test_prob_zero_and_empty_intervals(self):
        lo, hi = self.intervals()
        rng = np.random.default_rng(2)
        assert len(_sample_ranks_in_intervals(lo, hi, 0.0, rng)) == 0
        empty = _sample_ranks_in_intervals(
            np.array([5], dtype=np.int64), np.array([5], dtype=np.int64), 0.5, rng
        )
        assert len(empty) == 0

    @pytest.mark.parametrize("prob", [0.01, 0.2, 0.7, 0.95])
    def test_sample_count_concentrates_at_binomial_mean(self, prob):
        """Both the sparse and the dense (coin-flip) regimes are per-rank
        Bernoulli(prob); the total must concentrate at mass * prob."""
        lo = np.arange(0, 200_000, 2_000, dtype=np.int64)
        hi = lo + 1_000
        mass = int((hi - lo).sum())
        rng = np.random.default_rng(3)
        sizes = [
            len(_sample_ranks_in_intervals(lo, hi, prob, rng)) for _ in range(5)
        ]
        mean = np.mean(sizes)
        sigma = np.sqrt(mass * prob * (1 - prob) / 5)
        assert abs(mean - mass * prob) < 6 * sigma + 1

    def test_unsorted_interval_input_still_yields_sorted_picks(self):
        # The simulator always passes ascending merged intervals, but the
        # sampler's contract is a sorted union for any disjoint input order
        # — including the dense-only and prob>=1 fast paths.
        lo = np.array([100, 0], dtype=np.int64)
        hi = np.array([108, 8], dtype=np.int64)
        for prob in (0.9, 1.0, 0.05):
            picks = _sample_ranks_in_intervals(
                lo, hi, prob, np.random.default_rng(1)
            )
            assert np.all(np.diff(picks) > 0), prob

    def test_matches_simulator_update_contract(self):
        # Exactly what RankSpaceSimulator feeds SplitterState.update:
        # int64, sorted, unique — even in the mixed dense/sparse case.
        lo = np.array([0, 50], dtype=np.int64)
        hi = np.array([8, 1_000_050], dtype=np.int64)  # tiny + huge interval
        picks = _sample_ranks_in_intervals(lo, hi, 0.4, np.random.default_rng(4))
        assert picks.dtype == np.int64
        assert np.all(np.diff(picks) > 0)


class TestHistogramSortSim:
    @staticmethod
    def uniform_rank(n):
        return lambda keys: np.clip(keys, 0, 1) * n

    def test_uniform_converges_quickly(self):
        n, p = 10**6, 64
        sim = simulate_histogram_sort_rounds(
            n, p, 0.05, self.uniform_rank(n), 0.0, 1.0
        )
        assert sim.all_finalized
        assert sim.rounds <= 12

    def test_skewed_needs_more_rounds(self):
        """The Fig 6.2 mechanism: key-space bisection suffers under skew."""
        n, p = 10**6, 64

        def skewed_rank(keys):
            # CDF concentrating everything in the last 1e-6 of key space.
            return n * np.clip(keys, 0, 1) ** 0.01

        uniform = simulate_histogram_sort_rounds(
            n, p, 0.05, self.uniform_rank(n), 0.0, 1.0
        )
        skewed = simulate_histogram_sort_rounds(
            n, p, 0.05, skewed_rank, 0.0, 1.0
        )
        assert skewed.rounds > uniform.rounds

    def test_probe_counts_recorded(self):
        n, p = 10**5, 16
        sim = simulate_histogram_sort_rounds(
            n, p, 0.05, self.uniform_rank(n), 0.0, 1.0, probes_per_splitter=2
        )
        assert len(sim.probes_per_round) == sim.rounds
        assert sim.total_probes == sum(sim.probes_per_round)

    def test_round_cap(self):
        n, p = 10**6, 64

        def nasty(keys):
            return n * np.clip(keys, 0, 1) ** 0.001

        sim = simulate_histogram_sort_rounds(
            n, p, 0.01, nasty, 0.0, 1.0, max_rounds=3
        )
        assert sim.rounds == 3
        assert not sim.all_finalized
