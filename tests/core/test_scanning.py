"""Tests for the Axtmann scanning algorithm (§3.2)."""

import numpy as np
import pytest

from repro.core.scanning import (
    scanning_sample_probability,
    scanning_splitters,
)
from repro.errors import ConfigError


def ranked_sample(n, count, seed=0):
    """A sample of `count` distinct ranks from [0, n) as (keys, ranks)."""
    rng = np.random.default_rng(seed)
    ranks = np.sort(rng.choice(n, size=count, replace=False))
    return ranks.astype(np.int64), ranks.astype(np.int64)


class TestProbability:
    def test_formula(self):
        assert scanning_sample_probability(1000, 10, 0.1) == pytest.approx(
            2 * 10 / (0.1 * 1000)
        )

    def test_clipped_at_one(self):
        assert scanning_sample_probability(10, 100, 0.5) == 1.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            scanning_sample_probability(0, 4, 0.1)


class TestScan:
    def test_all_buckets_capped_except_last(self):
        n, p, eps = 100_000, 16, 0.1
        keys, ranks = ranked_sample(n, 4000)
        res = scanning_splitters(keys, ranks, n, p, eps)
        cap = int((1 + eps) * n / p)
        assert np.all(res.loads[:-1] <= cap)
        assert res.loads.sum() == n

    def test_theorem_3_2_1_load_balance(self):
        """With the theorem's sampling rate the LAST bucket obeys the cap too."""
        rng = np.random.default_rng(42)
        n, p, eps = 200_000, 16, 0.1
        prob = scanning_sample_probability(n, p, eps)
        picks = np.where(rng.random(n) < prob)[0].astype(np.int64)
        res = scanning_splitters(picks, picks, n, p, eps)
        assert res.imbalance(n, p) <= 1 + eps

    def test_splitters_non_decreasing(self):
        n, p = 50_000, 32
        keys, ranks = ranked_sample(n, 5000, seed=3)
        res = scanning_splitters(keys, ranks, n, p, 0.05)
        assert np.all(np.diff(res.splitters) >= 0)
        assert len(res.splitters) == p - 1

    def test_single_processor(self):
        keys, ranks = ranked_sample(1000, 50)
        res = scanning_splitters(keys, ranks, 1000, 1, 0.1)
        assert len(res.splitters) == 0
        assert res.loads[0] == 1000

    def test_loads_match_splitter_ranks(self):
        n, p = 10_000, 8
        keys, ranks = ranked_sample(n, 800, seed=9)
        res = scanning_splitters(keys, ranks, n, p, 0.1)
        bounds = np.concatenate(([0], res.splitter_ranks, [n]))
        assert np.array_equal(res.loads, np.diff(bounds))

    def test_sparse_sample_degrades_gracefully(self):
        # Far too few samples: scan still returns p-1 monotone splitters.
        keys, ranks = ranked_sample(10_000, 3)
        res = scanning_splitters(keys, ranks, 10_000, 8, 0.05)
        assert len(res.splitters) == 7
        assert np.all(np.diff(res.splitter_ranks) >= 0)

    def test_empty_sample_raises(self):
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ConfigError):
            scanning_splitters(empty, empty, 1000, 4, 0.1)

    def test_mismatched_inputs(self):
        with pytest.raises(ConfigError):
            scanning_splitters(
                np.array([1, 2]), np.array([1]), 100, 2, 0.1
            )

    def test_decreasing_ranks_rejected(self):
        with pytest.raises(ConfigError):
            scanning_splitters(
                np.array([1, 2]), np.array([5, 2]), 100, 2, 0.1
            )

    def test_zero_cap_rejected(self):
        keys, ranks = ranked_sample(10, 5)
        with pytest.raises(ConfigError):
            scanning_splitters(keys, ranks, 10, 100, 0.01)
