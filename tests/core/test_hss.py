"""Tests for the HSS SPMD program: correctness, guarantees, diagnostics."""

import numpy as np
import pytest

from repro.core.api import hss_sort
from repro.core.config import HSSConfig
from repro.errors import ConfigError
from repro.metrics import verify_sorted_output


class TestBasicCorrectness:
    def test_sorts_uniform(self, small_shards):
        run = hss_sort(small_shards, eps=0.05)
        verify_sorted_output(small_shards, run.shards, 0.05)

    def test_imbalance_within_eps(self, small_shards):
        run = hss_sort(small_shards, eps=0.05)
        assert run.imbalance <= 1.05 + 1e-9

    def test_two_ranks(self, rng):
        inputs = [rng.integers(0, 10**6, 1000) for _ in range(2)]
        run = hss_sort(inputs, eps=0.1)
        verify_sorted_output(inputs, run.shards, 0.1)

    def test_single_rank(self, rng):
        inputs = [rng.integers(0, 10**6, 500)]
        run = hss_sort(inputs, eps=0.1)
        assert np.array_equal(run.shards[0], np.sort(inputs[0]))

    def test_uneven_inputs(self, rng):
        inputs = [rng.integers(0, 10**6, n) for n in (100, 900, 500, 500)]
        run = hss_sort(inputs, eps=0.1)
        verify_sorted_output(inputs, run.shards, 0.1)

    def test_deterministic_given_seed(self, small_shards):
        a = hss_sort(small_shards, config=HSSConfig(seed=9))
        b = hss_sort(small_shards, config=HSSConfig(seed=9))
        for x, y in zip(a.shards, b.shards):
            assert np.array_equal(x, y)
        assert a.splitter_stats.num_rounds == b.splitter_stats.num_rounds

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint64, np.float64])
    def test_dtypes(self, rng, dtype):
        if np.issubdtype(dtype, np.floating):
            inputs = [rng.normal(size=800).astype(dtype) for _ in range(4)]
        else:
            inputs = [
                rng.integers(0, 2**30, 800).astype(dtype) for _ in range(4)
            ]
        run = hss_sort(inputs, eps=0.1)
        verify_sorted_output(inputs, run.shards, 0.1)

    def test_payloads_travel(self, rng):
        p = 4
        inputs = [
            rng.permutation(np.arange(r * 1000, (r + 1) * 1000)) for r in range(p)
        ]
        payloads = [(k * 3).astype(np.int64) for k in inputs]
        run = hss_sort(inputs, payloads=payloads, eps=0.1)
        for keys, pay in zip(run.shards, run.payloads):
            assert np.array_equal(pay, keys * 3)


class TestSchedules:
    def test_one_round_uses_one_round(self, small_shards):
        run = hss_sort(small_shards, config=HSSConfig.one_round(0.05))
        assert run.splitter_stats.num_rounds == 1
        assert run.imbalance <= 1.05 + 1e-9

    def test_k_rounds_respected(self, small_shards):
        run = hss_sort(small_shards, config=HSSConfig.k_rounds(3, eps=0.05))
        assert run.splitter_stats.num_rounds <= 3

    def test_constant_oversampling_sample_per_round(self, rng):
        p = 16
        inputs = [rng.integers(0, 10**9, 2000) for _ in range(p)]
        f = 5.0
        run = hss_sort(
            inputs, config=HSSConfig.constant_oversampling(f, eps=0.02)
        )
        stats = run.splitter_stats
        # Expected f*p keys per round; allow generous concentration slack.
        for r in stats.rounds[:-1]:
            assert r.sample_size <= 4 * f * p

    def test_more_rounds_smaller_sample(self, rng):
        p = 16
        inputs = [rng.integers(0, 10**9, 4000) for _ in range(p)]
        one = hss_sort(inputs, config=HSSConfig.one_round(0.02, seed=1))
        two = hss_sort(inputs, config=HSSConfig.k_rounds(2, eps=0.02, seed=1))
        assert two.splitter_stats.total_sample < one.splitter_stats.total_sample

    def test_interval_mass_shrinks_monotonically(self, rng):
        """The Fig 3.1 property: candidate mass G_j decreases every round."""
        inputs = [rng.integers(0, 10**9, 3000) for _ in range(8)]
        run = hss_sort(inputs, config=HSSConfig.constant_oversampling(5.0, eps=0.01))
        masses = [r.candidate_mass_before for r in run.splitter_stats.rounds]
        assert all(b < a for a, b in zip(masses, masses[1:]))

    def test_splitter_stats_content(self, small_shards):
        run = hss_sort(small_shards, eps=0.05)
        stats = run.splitter_stats
        assert stats.all_finalized
        assert stats.satisfies_tolerance()
        assert stats.total_sample == sum(r.sample_size for r in stats.rounds)
        assert stats.nparts == len(small_shards)


class TestAdversarialInputs:
    def test_presorted_input(self, rng):
        keys = np.sort(rng.integers(0, 10**9, 4000))
        inputs = list(np.array_split(keys, 8))
        run = hss_sort(inputs, eps=0.05)
        verify_sorted_output(inputs, run.shards, 0.05)

    def test_reversed_input(self, rng):
        keys = np.sort(rng.integers(0, 10**9, 4000))[::-1]
        inputs = [x.copy() for x in np.array_split(keys, 8)]
        run = hss_sort(inputs, eps=0.05)
        verify_sorted_output(inputs, run.shards, 0.05)

    def test_skewed_distribution(self, rng):
        inputs = [
            (rng.lognormal(0, 4, 2000) * 1e6).astype(np.int64) for _ in range(8)
        ]
        run = hss_sort(inputs, eps=0.05)
        verify_sorted_output(inputs, run.shards, 0.05)

    def test_tiny_per_rank(self, rng):
        inputs = [rng.permutation(np.arange(r * 20, (r + 1) * 20)) for r in range(4)]
        run = hss_sort(inputs, eps=1.0)
        verify_sorted_output(inputs, run.shards)

    def test_too_few_keys_raises(self):
        inputs = [
            np.array([1]),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        ]
        with pytest.raises(ConfigError):
            hss_sort(inputs, eps=0.5)


class TestDuplicateTagging:
    @pytest.mark.parametrize(
        "maker",
        ["constant_shards", "hotspot_shards", "few_distinct_shards"],
    )
    def test_tagged_balances_duplicates(self, maker):
        from repro.workloads import duplicates as dup

        shards = getattr(dup, maker)(8, 500, 3)
        cfg = HSSConfig(eps=0.05, tag_duplicates=True, seed=1)
        run = hss_sort(shards, config=cfg)
        verify_sorted_output(shards, run.shards, 0.05)

    def test_untagged_fails_on_constant(self):
        from repro.workloads.duplicates import constant_shards

        shards = constant_shards(8, 500)
        from repro.errors import VerificationError

        with pytest.raises(VerificationError):
            hss_sort(shards, config=HSSConfig(eps=0.05, seed=1))

    def test_tagged_no_duplicates_still_works(self, small_shards):
        cfg = HSSConfig(eps=0.05, tag_duplicates=True)
        run = hss_sort(small_shards, config=cfg)
        verify_sorted_output(small_shards, run.shards, 0.05)


class TestApproximateHistograms:
    def test_sorts_within_eps(self, rng):
        inputs = [rng.integers(0, 10**9, 4000) for _ in range(8)]
        cfg = HSSConfig(eps=0.05, approximate_histograms=True, seed=4)
        run = hss_sort(inputs, config=cfg)
        verify_sorted_output(inputs, run.shards, 0.05)

    def test_incompatible_with_tagging(self, small_shards):
        cfg = HSSConfig(
            eps=0.05, approximate_histograms=True, tag_duplicates=True
        )
        with pytest.raises(ConfigError, match="cannot be combined"):
            hss_sort(small_shards, config=cfg)


class TestPhaseTrace:
    def test_three_phases_present(self, small_shards):
        run = hss_sort(small_shards, eps=0.05)
        breakdown = run.breakdown()
        for phase in ("local sort", "histogramming", "data exchange"):
            assert phase in breakdown.phases()
            assert breakdown.total(phase) > 0

    def test_collective_counts(self, small_shards):
        run = hss_sort(small_shards, eps=0.05)
        trace = run.engine_result.trace
        rounds = run.splitter_stats.num_rounds
        # Per round: bcast(cmd) + gather + bcast(probes) + reduce; plus the
        # final command bcast, stats bcast, size allreduce and alltoallv.
        assert trace.count_collectives("gather") == rounds
        assert trace.count_collectives("alltoallv") == 1
