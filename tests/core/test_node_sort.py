"""Tests for the two-level node-partitioned sort (§6.1)."""

import pytest

from repro.bsp import BSPEngine
from repro.machines import get_machine
from repro.core.config import HSSConfig
from repro.core.node_sort import (
    combined_eps,
    hss_node_sort_program,
)
from repro.errors import BSPError
from repro.metrics import verify_sorted_output

LAPTOP = get_machine("laptop")


def run_node_sort(inputs, cores_per_node=4, eps=0.05, within=0.05, seed=1):
    p = len(inputs)
    engine = BSPEngine(p, machine=LAPTOP.with_(cores_per_node=cores_per_node))
    cfg = HSSConfig(
        eps=eps, within_node_eps=within, node_level=True, seed=seed
    )
    res = engine.run(hss_node_sort_program, rank_args=[(x,) for x in inputs], cfg=cfg)
    return res, [r[0].keys for r in res.returns]


class TestNodeSortCorrectness:
    def test_sorted_and_balanced(self, rng):
        inputs = [rng.integers(0, 10**9, 1000) for _ in range(16)]
        res, outs = run_node_sort(inputs)
        verify_sorted_output(inputs, outs, combined_eps(0.05, 0.05))

    def test_ragged_last_node(self, rng):
        inputs = [rng.integers(0, 10**9, 800) for _ in range(10)]
        res, outs = run_node_sort(inputs, cores_per_node=4)
        verify_sorted_output(inputs, outs, combined_eps(0.05, 0.05))

    def test_single_node(self, rng):
        inputs = [rng.integers(0, 10**9, 500) for _ in range(4)]
        res, outs = run_node_sort(inputs, cores_per_node=4)
        verify_sorted_output(inputs, outs)

    def test_one_core_per_node(self, rng):
        inputs = [rng.integers(0, 10**9, 500) for _ in range(4)]
        p = len(inputs)
        from repro.bsp.node import NodeLayout

        engine = BSPEngine(
            p,
            machine=LAPTOP.with_(cores_per_node=1),
            node_layout=NodeLayout(p, 1),
        )
        cfg = HSSConfig(eps=0.05, node_level=True, seed=1)
        res = engine.run(
            hss_node_sort_program, rank_args=[(x,) for x in inputs], cfg=cfg
        )
        outs = [r[0].keys for r in res.returns]
        verify_sorted_output(inputs, outs, combined_eps(0.05, 0.05))

    def test_requires_layout(self, rng):
        inputs = [rng.integers(0, 100, 50) for _ in range(2)]
        engine = BSPEngine(2, machine=LAPTOP.with_(cores_per_node=1))
        with pytest.raises(BSPError, match="NodeLayout"):
            engine.run(
                hss_node_sort_program,
                rank_args=[(x,) for x in inputs],
                cfg=HSSConfig(node_level=True),
            )


class TestNodeSortBenefits:
    def test_splitter_count_scales_with_nodes(self, rng):
        """Node-level partitioning determines n−1, not p−1, splitters."""
        inputs = [rng.integers(0, 10**9, 1000) for _ in range(16)]
        res, _ = run_node_sort(inputs, cores_per_node=4)
        stats = res.returns[0][1]
        assert stats.nparts == 4  # 16 cores / 4 per node

    def test_fewer_network_messages_than_flat(self, rng):
        from repro.core.hss import hss_sort_program

        inputs = [rng.integers(0, 10**9, 1000) for _ in range(16)]
        machine = LAPTOP.with_(cores_per_node=4)
        res_node, _ = run_node_sort(inputs, cores_per_node=4)
        engine = BSPEngine(16, machine=machine)
        res_flat = engine.run(
            hss_sort_program,
            rank_args=[(x, None) for x in inputs],
            cfg=HSSConfig(eps=0.05, seed=1),
        )
        assert res_node.stats.messages < res_flat.stats.messages

    def test_within_node_phase_has_no_network_bytes(self, rng):
        inputs = [rng.integers(0, 10**9, 800) for _ in range(8)]
        res, _ = run_node_sort(inputs, cores_per_node=4)
        within_records = [
            r for r in res.trace.records if r.phase == "within-node sort"
        ]
        assert within_records, "within-node phase missing from trace"
        assert all(r.nbytes == 0 for r in within_records)

    def test_four_phase_breakdown(self, rng):
        inputs = [rng.integers(0, 10**9, 800) for _ in range(8)]
        res, _ = run_node_sort(inputs)
        phases = res.breakdown().phases()
        for expected in (
            "local sort",
            "histogramming",
            "data exchange",
            "within-node sort",
        ):
            assert expected in phases


class TestCombinedEps:
    def test_formula(self):
        assert combined_eps(0.02, 0.05) == pytest.approx(1.02 * 1.05 - 1)

    def test_zero(self):
        assert combined_eps(0.0, 0.0) == pytest.approx(0.0)
