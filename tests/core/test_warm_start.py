"""Warm-started splitter determination: ``initial_intervals`` hints.

The service layer feeds a finished run's shard boundaries back into the
next run as ``Sorter.run(initial_intervals=...)``.  These tests pin the
contract at the core level:

- a warm-started run performs *strictly fewer* histogram rounds than its
  cold twin and produces the identical sorted output;
- hints are hints — arbitrarily wrong intervals cost at most the probe
  round and never break the eps guarantee (Theorem 3.3.1 monotonicity);
- the cold path is bit-identical to the pre-warm-start code (hints off
  by default), so committed bench baselines cannot move;
- algorithms that never learned the entry point reject it loudly.
"""

import numpy as np
import pytest

from repro.algorithms import REGISTRY, Dataset, Sorter
from repro.errors import CapabilityError, ConfigError

EPS = 0.1


def _dataset(p=8, n=2_000, seed=3, workload="lognormal"):
    return Dataset.from_workload(workload, p=p, n_per=n, seed=seed)


def _boundaries(run):
    """Final shard boundaries as degenerate (s, s) hint pairs."""
    return tuple(
        (shard[0], shard[0]) for shard in run.shards[1:] if len(shard)
    )


class TestWarmStart:
    def test_strictly_fewer_rounds_and_identical_output(self):
        ds = _dataset()
        sorter = Sorter("hss", eps=EPS, seed=5)
        cold = sorter.run(ds)
        warm = sorter.run(ds, initial_intervals=_boundaries(cold))
        assert (
            warm.splitter_stats.num_rounds < cold.splitter_stats.num_rounds
        )
        assert warm.splitter_stats.num_rounds == 1
        for a, b in zip(cold.shards, warm.shards):
            np.testing.assert_array_equal(a, b)
        assert warm.imbalance <= 1 + EPS + 1e-9

    def test_histogram_baseline_warm_start(self):
        # The histogram baseline exposes no SplitterStats through the
        # Sorter, so the saved rounds are pinned via the modeled
        # makespan: fewer histogramming rounds -> strictly cheaper run.
        ds = _dataset()
        sorter = Sorter("histogram", eps=EPS)
        cold = sorter.run(ds)
        warm = sorter.run(ds, initial_intervals=_boundaries(cold))
        assert warm.makespan < cold.makespan
        for a, b in zip(cold.shards, warm.shards):
            np.testing.assert_array_equal(a, b)
        assert warm.imbalance <= 1 + EPS + 1e-9

    def test_warm_probe_round_samples_less(self):
        ds = _dataset()
        sorter = Sorter("hss", eps=EPS, seed=5)
        cold = sorter.run(ds)
        warm = sorter.run(ds, initial_intervals=_boundaries(cold))
        assert (
            warm.splitter_stats.total_sample
            < cold.splitter_stats.total_sample
        )

    def test_stale_hints_cost_rounds_not_correctness(self):
        # Hints from a completely different key range: the probe round
        # finalizes nothing, then normal refinement takes over.
        ds = _dataset()
        bogus = tuple((int(1e17) + i, int(1e17) + i) for i in range(7))
        run = Sorter("hss", eps=EPS, seed=5).run(
            ds, initial_intervals=bogus
        )
        assert run.imbalance <= 1 + EPS + 1e-9
        flat = np.sort(np.concatenate(ds.shards))
        np.testing.assert_array_equal(np.concatenate(run.shards), flat)

    def test_cold_path_unchanged_by_feature(self):
        # initial_intervals=None must be byte-identical to never having
        # passed the argument (the bench-baseline invariant).
        ds = _dataset()
        sorter = Sorter("hss", eps=EPS, seed=5)
        a = sorter.run(ds)
        b = sorter.run(ds, initial_intervals=None)
        assert a.splitter_stats.num_rounds == b.splitter_stats.num_rounds
        assert a.makespan == b.makespan
        for x, y in zip(a.shards, b.shards):
            np.testing.assert_array_equal(x, y)

    def test_incapable_algorithm_rejects_hints(self):
        ds = _dataset(p=4, n=200)
        with pytest.raises(CapabilityError) as exc:
            Sorter("sample-regular", eps=EPS).run(
                ds, initial_intervals=((1, 2),)
            )
        # The message routes users to the warm-capable algorithms.
        assert "hss" in str(exc.value)

    def test_registry_capability_flags(self):
        warm = {n for n, s in REGISTRY.items() if s.supports_warm_start}
        assert warm == {"hss", "hss-1round", "hss-2round", "histogram"}

    def test_config_validation(self):
        from repro.core.config import HSSConfig

        with pytest.raises(ConfigError):
            HSSConfig(initial_intervals=())
        with pytest.raises(ConfigError):
            HSSConfig(initial_intervals=((5, 1),))  # lo > hi
        cfg = HSSConfig(initial_intervals=[[1, 2], (3, 3)])
        assert cfg.initial_intervals == ((1, 2), (3, 3))

    def test_not_a_cli_config_knob(self):
        # Warm starts are an execution-time hint threaded by the service,
        # not a user-facing config key.
        for name in ("hss", "histogram", "scanning", "hss-node"):
            assert "initial_intervals" not in REGISTRY[name].config_keys()
