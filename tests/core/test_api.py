"""Tests for the public API: hss_sort and the parallel_sort registry."""

import numpy as np
import pytest

from repro.core.api import ALGORITHMS, hss_sort, parallel_sort
from repro.errors import ConfigError
from repro.metrics import verify_sorted_output


class TestRegistry:
    def test_expected_algorithms_present(self):
        expected = {
            "hss",
            "hss-1round",
            "hss-2round",
            "scanning",
            "sample-regular",
            "sample-random",
            "histogram",
            "over-partition",
            "bitonic",
            "radix",
        }
        assert expected <= set(ALGORITHMS)

    def test_unknown_algorithm(self, small_shards):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            parallel_sort(small_shards, "quicksort")

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_algorithm_sorts(self, name, rng):
        inputs = [rng.integers(0, 10**7, 600) for _ in range(8)]
        run = parallel_sort(inputs, name, eps=0.1, seed=5)
        verify_sorted_output(inputs, run.shards)
        assert run.algorithm == name

    def test_splitter_stats_only_for_histogramming_algorithms(self, rng):
        inputs = [rng.integers(0, 10**7, 400) for _ in range(4)]
        hss = parallel_sort(inputs, "hss", eps=0.1)
        assert hss.splitter_stats is not None
        bitonic = parallel_sort(inputs, "bitonic", eps=0.1)
        assert bitonic.splitter_stats is None


class TestHssSortInput:
    def test_mixed_dtypes_rejected(self, rng):
        inputs = [rng.integers(0, 100, 50), rng.normal(size=50)]
        with pytest.raises(ConfigError, match="dtype"):
            hss_sort(inputs, eps=0.5)

    def test_empty_rank_list_rejected(self):
        with pytest.raises(ConfigError):
            hss_sort([])

    def test_payload_rank_mismatch(self, small_shards):
        with pytest.raises(ConfigError, match="payloads"):
            hss_sort(small_shards, payloads=[np.arange(5)])

    def test_verify_false_skips_checks(self, rng):
        # verify=False must not raise even for configs that would trip the
        # balance check (eps tiny with a sloppy schedule is hard to build,
        # so just confirm the flag path executes).
        inputs = [rng.integers(0, 10**7, 300) for _ in range(4)]
        run = hss_sort(inputs, eps=0.2, verify=False)
        assert sum(len(s) for s in run.shards) == 1200

    def test_sortrun_accessors(self, small_shards):
        run = hss_sort(small_shards, eps=0.05)
        assert run.makespan > 0
        assert run.imbalance >= 1.0
        assert run.breakdown().total() == pytest.approx(run.makespan)


class TestCrossAlgorithmAgreement:
    def test_all_algorithms_produce_identical_global_order(self, rng):
        inputs = [rng.integers(0, 10**7, 500) for _ in range(8)]
        reference = np.sort(np.concatenate(inputs))
        for name in ("hss", "scanning", "sample-regular", "histogram", "radix"):
            run = parallel_sort(inputs, name, eps=0.1, seed=2)
            assert np.array_equal(np.concatenate(run.shards), reference), name
