"""Tests for HSSConfig and sampling schedules."""

import math

import pytest

from repro.core.config import HSSConfig, SamplingSchedule
from repro.errors import ConfigError


class TestSamplingSchedule:
    def test_geometric_ratios_interpolate(self):
        sched = SamplingSchedule("geometric", rounds=2)
        p, eps = 1024, 0.05
        s_k = 2 * math.log(p) / eps
        assert sched.ratio(1, p, eps) == pytest.approx(s_k**0.5)
        assert sched.ratio(2, p, eps) == pytest.approx(s_k)

    def test_geometric_probability_first_round(self):
        sched = SamplingSchedule("geometric", rounds=1)
        p, eps, n = 64, 0.1, 10**6
        expected = p * (2 * math.log(p) / eps) / n
        assert sched.probability(
            1, p=p, eps=eps, total_keys=n, candidate_mass=n
        ) == pytest.approx(expected)

    def test_constant_probability_tracks_mass(self):
        sched = SamplingSchedule("constant", oversample=5.0)
        prob_full = sched.probability(
            1, p=64, eps=0.05, total_keys=10**6, candidate_mass=10**6
        )
        prob_small = sched.probability(
            2, p=64, eps=0.05, total_keys=10**6, candidate_mass=10**4
        )
        assert prob_small == pytest.approx(prob_full * 100)

    def test_probability_clipped(self):
        sched = SamplingSchedule("constant", oversample=5.0)
        assert (
            sched.probability(1, p=64, eps=0.05, total_keys=100, candidate_mass=100)
            == 1.0
        )

    def test_zero_mass_zero_probability(self):
        sched = SamplingSchedule("constant")
        assert (
            sched.probability(3, p=8, eps=0.1, total_keys=1000, candidate_mass=0)
            == 0.0
        )

    def test_max_rounds_geometric(self):
        assert SamplingSchedule("geometric", rounds=3).max_rounds(1024, 0.05) == 3

    def test_max_rounds_constant_exceeds_bound(self):
        from repro.theory.rounds import round_bound_constant_oversampling

        sched = SamplingSchedule("constant", oversample=5.0)
        bound = round_bound_constant_oversampling(1024, 0.05, 5.0)
        assert sched.max_rounds(1024, 0.05) >= bound

    def test_invalid_kind(self):
        with pytest.raises(ConfigError):
            SamplingSchedule("exotic")

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            SamplingSchedule("geometric", rounds=0)
        with pytest.raises(ConfigError):
            SamplingSchedule("constant", oversample=0)


class TestHSSConfig:
    def test_defaults(self):
        cfg = HSSConfig()
        assert cfg.eps == 0.05
        assert cfg.schedule.kind == "constant"

    def test_factories(self):
        assert HSSConfig.one_round(0.1).schedule.rounds == 1
        assert HSSConfig.k_rounds(3).schedule.rounds == 3
        assert HSSConfig.constant_oversampling(7.0).schedule.oversample == 7.0

    def test_invalid_eps(self):
        with pytest.raises(ConfigError):
            HSSConfig(eps=0.0)
        with pytest.raises(ConfigError):
            HSSConfig(eps=2.0)

    def test_max_rounds_cap_applies(self):
        cfg = HSSConfig(max_rounds_cap=2)
        assert cfg.max_rounds(1 << 20) == 2

    def test_frozen(self):
        cfg = HSSConfig()
        with pytest.raises(Exception):
            cfg.eps = 0.5
