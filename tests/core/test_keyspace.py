"""Tests for key-space adapters (plain and duplicate-tagged)."""

import numpy as np

from repro.core.keyspace import PlainKeySpace, TaggedKeySpace, make_keyspace


class TestFactory:
    def test_plain(self):
        ks = make_keyspace(np.int64, False)
        assert isinstance(ks, PlainKeySpace) and not ks.tagged

    def test_tagged(self):
        ks = make_keyspace(np.int64, True)
        assert isinstance(ks, TaggedKeySpace) and ks.tagged


class TestPlainKeySpace:
    def setup_method(self):
        self.ks = PlainKeySpace(np.int64)
        self.keys = np.arange(0, 200, 2, dtype=np.int64)  # evens 0..398

    def test_local_counts(self):
        counts = self.ks.local_counts(self.keys, 0, np.array([0, 5, 100, 1000]))
        assert counts.tolist() == [0, 3, 50, 100]

    def test_bucket_positions_left_semantics(self):
        # Key equal to a splitter belongs to the splitter's own bucket.
        pos = self.ks.bucket_positions(self.keys, 0, np.array([100]))
        assert pos[0] == 50  # keys[50] == 100 goes right of the boundary

    def test_sample_whole_input(self, rng):
        out = self.ks.sample(self.keys, 0, None, 1.0, rng)
        assert np.array_equal(out, self.keys)

    def test_sort_unique(self):
        probes = self.ks.sort_unique_probes(
            [np.array([5, 1]), np.array([3, 1]), np.array([], dtype=np.int64)]
        )
        assert probes.tolist() == [1, 3, 5]

    def test_sort_unique_all_empty(self):
        probes = self.ks.sort_unique_probes([np.array([], dtype=np.int64)])
        assert len(probes) == 0 and probes.dtype == np.int64

    def test_make_state_dtype(self):
        state = self.ks.make_state(1000, 4, 0.05)
        assert state.key_dtype == np.int64


class TestTaggedKeySpace:
    def setup_method(self):
        self.ks = TaggedKeySpace(np.int64)
        # Local data with heavy duplicates, sorted.
        self.keys = np.array([5, 5, 5, 7, 7, 9], dtype=np.int64)

    def tag(self, key, pe, idx):
        return np.array([(key, pe, idx)], dtype=self.ks.key_dtype)

    def test_position_rule_lower_pe(self):
        # Probe from a lower PE: local copies of the key come AFTER it.
        probe = self.tag(5, 0, 1)
        pos = self.ks.local_counts(self.keys, 2, probe)
        assert pos[0] == 0

    def test_position_rule_higher_pe(self):
        probe = self.tag(5, 9, 0)
        pos = self.ks.local_counts(self.keys, 2, probe)
        assert pos[0] == 3  # all local 5s precede the probe

    def test_position_rule_same_pe(self):
        probe = self.tag(5, 2, 1)
        pos = self.ks.local_counts(self.keys, 2, probe)
        assert pos[0] == 1  # the probe's own sorted index

    def test_sentinels_cover_space(self):
        state = self.ks.make_state(100, 4, 0.05)
        lo, hi = state.lo_key[0], state.hi_key[0]
        pos_lo = self.ks.local_counts(
            self.keys, 2, np.array([lo], dtype=self.ks.key_dtype)
        )
        pos_hi = self.ks.local_counts(
            self.keys, 2, np.array([hi], dtype=self.ks.key_dtype)
        )
        assert pos_lo[0] == 0 and pos_hi[0] == len(self.keys)

    def test_sample_tags_carry_rank_and_position(self, rng):
        out = self.ks.sample(self.keys, 3, None, 1.0, rng)
        assert len(out) == len(self.keys)
        assert np.all(out["pe"] == 3)
        assert np.array_equal(np.sort(out["idx"]), np.arange(len(self.keys)))
        assert np.array_equal(out["key"][np.argsort(out["idx"])], self.keys)

    def test_probe_total_order_breaks_ties(self):
        a = self.tag(5, 0, 0)
        b = self.tag(5, 1, 0)
        c = self.tag(5, 1, 3)
        merged = self.ks.sort_unique_probes([c, a, b])
        assert np.array_equal(merged["pe"], [0, 1, 1])
        assert np.array_equal(merged["idx"], [0, 0, 3])

    def test_global_rank_consistency(self, rng):
        """Summed tagged positions give each probe a unique global rank."""
        p = 4
        locals_ = [np.sort(rng.integers(0, 5, 50).astype(np.int64)) for _ in range(p)]
        # Sample everything from rank 1.
        probes = self.ks.sample(locals_[1], 1, None, 1.0, rng)
        probes = self.ks.sort_unique_probes([probes])
        ranks = sum(
            self.ks.local_counts(locals_[r], r, probes) for r in range(p)
        )
        # Tag order is strict: all ranks distinct and increasing.
        assert np.all(np.diff(ranks) >= 1)

    def test_empty_local(self, rng):
        empty = np.empty(0, dtype=np.int64)
        assert len(self.ks.sample(empty, 0, None, 1.0, rng)) == 0
        probe = self.tag(5, 1, 0)
        assert self.ks.local_counts(empty, 0, probe)[0] == 0
