"""Tests for SplitterState (the [L_j, U_j] interval bookkeeping)."""

import numpy as np
import pytest

from repro.core.splitters import SplitterState
from repro.errors import ConfigError


def exact_update(state, probes):
    """Feed probes whose rank equals their value (rank-space convention)."""
    probes = np.sort(np.asarray(probes, dtype=np.int64))
    state.update(probes, probes)


class TestConstruction:
    def test_targets(self):
        s = SplitterState(100, 4, 0.1)
        assert np.array_equal(s.targets, [25, 50, 75])
        assert s.tolerance == pytest.approx(0.1 * 100 / 8)

    def test_initial_bounds(self):
        s = SplitterState(100, 4, 0.1)
        assert np.all(s.lo_rank == 0)
        assert np.all(s.hi_rank == 100)
        assert not s.all_finalized()

    def test_single_part_trivially_finalized(self):
        s = SplitterState(10, 1, 0.1)
        assert s.all_finalized()
        assert len(s.final_splitters()) == 0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            SplitterState(3, 4, 0.1)
        with pytest.raises(ConfigError):
            SplitterState(100, 0, 0.1)

    def test_custom_sentinels(self):
        s = SplitterState(
            100, 2, 0.1, key_dtype=np.int64, lo_sentinel=-7, hi_sentinel=7
        )
        assert s.lo_key[0] == -7 and s.hi_key[0] == 7


class TestUpdate:
    def test_bounds_tighten(self):
        s = SplitterState(100, 2, 0.02)  # target 50, tol 1
        exact_update(s, [40, 60])
        assert s.lo_rank[0] == 40 and s.hi_rank[0] == 60
        exact_update(s, [45, 55])
        assert s.lo_rank[0] == 45 and s.hi_rank[0] == 55

    def test_bounds_never_regress(self):
        s = SplitterState(100, 2, 0.02)
        exact_update(s, [49, 51])
        exact_update(s, [10, 90])  # worse probes must be ignored
        assert s.lo_rank[0] == 49 and s.hi_rank[0] == 51

    def test_exact_hit_finalizes(self):
        s = SplitterState(100, 2, 0.02)
        exact_update(s, [50])
        assert s.all_finalized()
        assert s.final_splitters()[0] == 50
        assert s.max_rank_error() == 0

    def test_tolerance_window(self):
        s = SplitterState(1000, 2, 0.1)  # target 500, tol 25
        exact_update(s, [480])
        assert s.all_finalized()  # 500-480=20 <= 25

    def test_outside_window_not_finalized(self):
        s = SplitterState(1000, 2, 0.01)  # tol 2.5
        exact_update(s, [480, 520])
        assert not s.all_finalized()

    def test_probe_rank_used_as_lo_and_hi_for_neighbors(self):
        s = SplitterState(100, 4, 0.02)  # targets 25, 50, 75
        exact_update(s, [40])
        assert s.lo_rank[1] == 40  # below target 50
        assert s.hi_rank[0] == 40  # above target 25

    def test_empty_update_counts_round(self):
        s = SplitterState(100, 2, 0.02)
        s.update(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert s.rounds_completed == 1

    def test_mismatched_lengths(self):
        s = SplitterState(100, 2, 0.02)
        with pytest.raises(ConfigError):
            s.update(np.array([1, 2]), np.array([1]))

    def test_unsorted_probes_rejected(self):
        s = SplitterState(100, 2, 0.02)
        with pytest.raises(ConfigError):
            s.update(np.array([5, 1]), np.array([5, 1]))

    def test_nonmonotone_ranks_rejected(self):
        s = SplitterState(100, 2, 0.02)
        with pytest.raises(ConfigError):
            s.update(np.array([1, 5]), np.array([10, 2]))


class TestIntervals:
    def test_initial_mass_is_total(self):
        s = SplitterState(1000, 8, 0.01)
        assert s.candidate_mass() == 1000

    def test_mass_shrinks_with_probes(self):
        s = SplitterState(1000, 4, 0.001)
        before = s.candidate_mass()
        exact_update(s, np.arange(0, 1000, 37))
        assert s.candidate_mass() < before

    def test_finalized_splitters_drop_out(self):
        s = SplitterState(100, 4, 0.02)  # targets 25,50,75
        # 50 finalizes the middle splitter; 20/30 and 70/80 bracket the
        # outer ones without touching their windows.
        exact_update(s, [20, 30, 50, 70, 80])
        merged = s.merged_intervals()
        assert merged.count == 2
        assert merged.mass == (30 - 20) + (80 - 70)

    def test_identical_intervals_merge(self):
        s = SplitterState(100, 4, 0.001)
        # No probes near targets: single full-range interval for all three.
        merged = s.merged_intervals()
        assert merged.count == 1
        assert merged.mass == 100

    def test_all_finalized_empty_intervals(self):
        s = SplitterState(100, 4, 0.02)
        exact_update(s, [25, 50, 75])
        assert s.merged_intervals().count == 0
        assert s.candidate_mass() == 0

    def test_overlapping_intervals_mass_counted_once(self):
        s = SplitterState(1000, 4, 0.001)  # targets 250,500,750
        exact_update(s, [400])  # lo for 500/750? no: lo for 500, hi for 250
        merged = s.merged_intervals()
        # Intervals [0,400] and [400,1000] merge into [0,1000].
        assert merged.mass == 1000

    def test_width_stats(self):
        s = SplitterState(1000, 4, 0.02)
        stats = s.interval_width_stats()
        assert stats["max_width"] == 1000.0
        exact_update(s, np.arange(0, 1001, 100))
        stats = s.interval_width_stats()
        assert stats["max_width"] <= 200.0


class TestFinalSplitters:
    def test_closest_side_chosen(self):
        s = SplitterState(1000, 2, 0.05)  # target 500
        exact_update(s, [490, 530])
        assert s.final_splitters()[0] == 490
        assert s.final_splitter_ranks()[0] == 490

    def test_sorted_output(self):
        s = SplitterState(1000, 8, 0.05)
        exact_update(s, np.arange(0, 1000, 13))
        out = s.final_splitters()
        assert np.all(np.diff(out) >= 0)

    def test_float_keys(self):
        s = SplitterState(100, 2, 0.05, key_dtype=np.float64)
        probes = np.array([0.5])
        s.update(probes, np.array([50]))
        assert s.all_finalized()
        assert s.final_splitters()[0] == pytest.approx(0.5)
