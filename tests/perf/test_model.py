"""Tests for the Fig 6.1 / 6.2 phase-time models."""

import pytest

from repro.machines import get_machine
from repro.core.config import HSSConfig
from repro.core.rankspace import RankSpaceSimulator
from repro.perf.model import (
    PhaseTimes,
    model_splitting_time,
    model_weak_scaling,
)

MIRA_LIKE = get_machine("mira-like-bgq")


def measured_stats(p, nodes, eps=0.02, seed=3):
    cfg = HSSConfig.constant_oversampling(5.0, eps=eps, seed=seed)
    return RankSpaceSimulator(p * 100_000, max(2, nodes), cfg).run()


class TestPhaseTimes:
    def test_total(self):
        pt = PhaseTimes(1.0, 0.1, 2.0, 0.5)
        assert pt.total == pytest.approx(3.6)
        assert pt.as_dict()["total"] == pytest.approx(3.6)


class TestWeakScalingShape:
    """The Fig 6.1 qualitative claims, asserted as invariants."""

    def points(self):
        out = []
        for p in (512, 2048, 8192, 32768):
            stats = measured_stats(p, p // 16)
            out.append(
                model_weak_scaling(
                    MIRA_LIKE, nprocs=p, keys_per_core=1e6, splitter_stats=stats
                )
            )
        return out

    def test_local_sort_constant_under_weak_scaling(self):
        pts = self.points()
        assert pts[0].local_sort == pytest.approx(pts[-1].local_sort)

    def test_histogramming_is_small_fraction(self):
        """Paper: 'the histogramming phase takes very little fraction of the
        running time' even at 32K cores."""
        pts = self.points()
        for pt in pts:
            assert pt.histogramming < 0.15 * pt.total

    def test_data_exchange_grows_with_p(self):
        pts = self.points()
        exchange = [pt.data_exchange for pt in pts]
        assert exchange == sorted(exchange)
        assert exchange[-1] > 1.2 * exchange[0]

    def test_total_in_paper_band(self):
        """Fig 6.1 totals are single-digit seconds."""
        for pt in self.points():
            assert 0.5 <= pt.total <= 10.0

    def test_node_level_beats_core_level_histogramming(self):
        p = 8192
        node_stats = measured_stats(p, p // 16)
        core_stats = measured_stats(p, p)
        node = model_weak_scaling(
            MIRA_LIKE, nprocs=p, keys_per_core=1e6, splitter_stats=node_stats
        )
        core = model_weak_scaling(
            MIRA_LIKE,
            nprocs=p,
            keys_per_core=1e6,
            splitter_stats=core_stats,
            node_level=False,
        )
        assert node.histogramming < core.histogramming


class TestSplittingTime:
    def test_monotone_in_rounds(self):
        one = model_splitting_time(
            MIRA_LIKE,
            nprocs=1024,
            nbuckets=1024,
            rounds=[(5 * 1024, 1024)],
            local_keys=1e6,
        )
        four = model_splitting_time(
            MIRA_LIKE,
            nprocs=1024,
            nbuckets=1024,
            rounds=[(5 * 1024, 1024)] * 4,
            local_keys=1e6,
        )
        assert four > 3 * one

    def test_monotone_in_sample(self):
        small = model_splitting_time(
            MIRA_LIKE, nprocs=1024, nbuckets=1024,
            rounds=[(1024, 1024)], local_keys=1e6,
        )
        large = model_splitting_time(
            MIRA_LIKE, nprocs=1024, nbuckets=1024,
            rounds=[(100 * 1024, 1024)], local_keys=1e6,
        )
        assert large > small
