"""Tests for the text table renderers."""

import pytest

from repro.perf.report import format_series_table, format_stacked_table


class TestSeriesTable:
    def test_basic_layout(self):
        text = format_series_table(
            "p", [2, 4], {"a": [1.0, 2.0], "b": [3, 4]}, title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "p" in lines[1] and "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            format_series_table("x", [1, 2], {"s": [1]})

    def test_scientific_formatting(self):
        text = format_series_table("x", [1], {"v": [1.23e-9]})
        assert "1.230e-09" in text

    def test_no_title(self):
        text = format_series_table("x", [1], {"v": [2]})
        assert not text.startswith("\n")


class TestStackedTable:
    def test_components_union(self):
        text = format_stacked_table(
            "p",
            [1, 2],
            [{"sort": 1.0, "comm": 2.0}, {"sort": 1.5, "merge": 0.5}],
        )
        assert "sort" in text and "comm" in text and "merge" in text

    def test_missing_component_zero(self):
        text = format_stacked_table(
            "p", [1, 2], [{"a": 1.0}, {"a": 2.0, "b": 4.0}]
        )
        rows = text.splitlines()
        assert rows[-2].split()[-1] == "0"

    def test_mismatch(self):
        with pytest.raises(ValueError):
            format_stacked_table("p", [1], [{"a": 1}, {"a": 2}])
