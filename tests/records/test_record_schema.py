"""RecordSchema: normalization, validation, serialization round trips."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.records import ColumnSpec, RecordSchema, parse_schema


class TestColumnSpec:
    def test_normalizes_dtype(self):
        spec = ColumnSpec("mass", "f8")
        assert spec.dtype == np.dtype("<f8")
        assert not spec.is_var_width

    def test_var_width_specs(self):
        assert ColumnSpec("tag", "bytes").is_var_width
        assert ColumnSpec("label", "str").is_var_width

    def test_rejects_key_name(self):
        with pytest.raises(ConfigError, match="key"):
            ColumnSpec("key", "f8")

    def test_rejects_bad_name(self):
        with pytest.raises(ConfigError):
            ColumnSpec("has space", "f8")

    def test_rejects_object_dtype(self):
        with pytest.raises(ConfigError):
            ColumnSpec("bad", "O")

    def test_rejects_structured_column(self):
        with pytest.raises(ConfigError, match="one scalar per row"):
            ColumnSpec("nested", np.dtype([("a", "f8")]))


class TestRecordSchema:
    def test_from_mapping_preserves_order(self):
        schema = RecordSchema.from_mapping({"mass": "f8", "id": "u4"})
        assert schema.column_names == ("mass", "id")

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ConfigError, match="duplicate"):
            RecordSchema(
                columns=(ColumnSpec("a", "f8"), ColumnSpec("a", "u4"))
            )

    def test_payload_dtype_structured(self):
        schema = RecordSchema.from_mapping({"mass": "f8", "id": "u4"})
        dt = schema.payload_dtype()
        assert dt.names == ("mass", "id")
        assert dt.itemsize == 12

    def test_payload_dtype_rejects_var_width(self):
        schema = RecordSchema(columns=(ColumnSpec("tag", "bytes"),))
        with pytest.raises(ConfigError, match="sort path"):
            schema.payload_dtype()

    def test_record_nbytes(self):
        schema = RecordSchema.from_mapping({"mass": "f8", "id": "u4"})
        assert schema.record_nbytes() == 8 + 8 + 4  # i8 key + columns

    def test_record_nbytes_var_width_counts_offsets(self):
        schema = RecordSchema(columns=(ColumnSpec("tag", "bytes"),))
        assert schema.record_nbytes() == 8 + 8  # key + offset entry

    def test_compact_round_trip(self):
        schema = RecordSchema.from_mapping({"mass": "f8", "id": "u4"})
        assert parse_schema(schema.compact()) == schema

    def test_to_dict_round_trip(self):
        schema = RecordSchema.from_mapping(
            {"mass": "f8", "id": "u4", "tag": "bytes"}
        )
        assert RecordSchema.from_dict(schema.to_dict()) == schema

    def test_to_dict_round_trip_structured_key(self):
        key_dtype = np.dtype([("k", "<i8"), ("pe", "<i4"), ("idx", "<i4")])
        schema = RecordSchema.from_mapping({"mass": "f8"}, key_dtype=key_dtype)
        restored = RecordSchema.from_dict(schema.to_dict())
        assert restored == schema
        assert restored.np_key_dtype == key_dtype

    def test_fixed_width_flag(self):
        assert RecordSchema.from_mapping({"a": "f8"}).fixed_width
        assert not RecordSchema(
            columns=(ColumnSpec("t", "str"),)
        ).fixed_width


class TestParseSchema:
    def test_parse(self):
        schema = parse_schema("mass:f8,id:u4")
        assert schema.column_names == ("mass", "id")
        assert schema.column("id").dtype == np.dtype("<u4")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_schema("no-colon-here")

    def test_parse_rejects_empty(self):
        with pytest.raises(ConfigError):
            parse_schema("")
