"""RecordBatch: ops, byte accounting, and wire-format round trips."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.records import RecordBatch, RecordSchema

FIXED_DTYPES = ["?", "i1", "i2", "i4", "i8", "u1", "u2", "u4", "u8", "f4", "f8"]


def _column(dtype: str, n: int, rng: np.random.Generator) -> np.ndarray:
    dt = np.dtype(dtype)
    if dt.kind == "b":
        return rng.integers(0, 2, size=n).astype(dt)
    if dt.kind in "iu":
        info = np.iinfo(dt)
        return rng.integers(info.min, info.max, size=n, dtype=dt)
    return rng.standard_normal(n).astype(dt)


def _sample_batch(n: int = 7, seed: int = 0) -> RecordBatch:
    rng = np.random.default_rng(seed)
    keys = rng.permutation(n).astype(np.int64)
    return RecordBatch.from_columns(
        keys,
        {
            "mass": rng.standard_normal(n),
            "id": np.arange(n, dtype=np.uint32),
            "tag": [b"x" * int(i % 3) for i in range(n)],
        },
    )


class TestBuild:
    def test_from_columns_infers_schema(self):
        b = _sample_batch()
        assert b.schema.column_names == ("mass", "id", "tag")
        assert b.schema.column("tag").is_var_width
        assert b.num_rows == 7
        assert b.num_columns == 3

    def test_from_payload_array_structured(self):
        dt = np.dtype([("mass", "<f8"), ("id", "<u4")])
        payload = np.zeros(3, dtype=dt)
        payload["mass"] = [0.1, 0.2, 0.3]
        b = RecordBatch.from_payload_array(np.arange(3), payload)
        assert b.schema.column_names == ("mass", "id")
        assert np.array_equal(b.payload_array(), payload)

    def test_from_payload_array_plain_becomes_payload_column(self):
        b = RecordBatch.from_payload_array(
            np.arange(3), np.array([5.0, 6.0, 7.0])
        )
        assert b.schema.column_names == ("payload",)

    def test_from_payload_array_rejects_object_dtype(self):
        with pytest.raises(ConfigError, match="object-dtype"):
            RecordBatch.from_payload_array(
                np.arange(2), np.array([{"a": 1}, {"b": 2}], dtype=object)
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            RecordBatch.from_columns(
                np.arange(3), {"mass": np.zeros(2)}
            )


class TestOps:
    def test_take_reorders_all_columns(self):
        b = _sample_batch()
        idx = np.array([3, 0, 5])
        t = b.take(idx)
        assert np.array_equal(t.keys, b.keys[idx])
        assert np.array_equal(t.column("mass"), b.column("mass")[idx])
        tags = b.column("tag")
        assert t.column("tag") == [tags[i] for i in idx]

    def test_take_empty(self):
        t = _sample_batch().take(np.array([], dtype=np.int64))
        assert len(t) == 0
        assert t.column("tag") == []

    def test_slice(self):
        b = _sample_batch()
        s = b.slice(2, 5)
        assert np.array_equal(s.keys, b.keys[2:5])
        assert s.column("tag") == b.column("tag")[2:5]

    def test_sort_by_key_is_stable_and_aligned(self):
        b = _sample_batch()
        s = b.sort_by_key()
        assert np.array_equal(s.keys, np.sort(b.keys))
        # Each row's columns still travel with its key.
        order = np.argsort(b.keys, kind="stable")
        assert np.array_equal(s.column("id"), b.column("id")[order])
        assert s.column("tag") == [b.column("tag")[i] for i in order]

    def test_sort_by_structured_key(self):
        key_dtype = np.dtype([("k", "<i8"), ("pe", "<i4")])
        keys = np.zeros(4, dtype=key_dtype)
        keys["k"] = [2, 1, 2, 1]
        keys["pe"] = [0, 1, 1, 0]
        b = RecordBatch.from_columns(
            keys, {"id": np.arange(4, dtype=np.uint32)}
        )
        s = b.sort_by_key()
        assert s.keys["k"].tolist() == [1, 1, 2, 2]
        assert s.keys["pe"].tolist() == [0, 1, 0, 1]
        assert s.column("id").tolist() == [3, 1, 0, 2]

    def test_concat_round_trips_slices(self):
        b = _sample_batch()
        again = RecordBatch.concat([b.slice(0, 3), b.slice(3, 7)])
        assert again.equals(b)

    def test_concat_rejects_schema_mismatch(self):
        a = RecordBatch.from_columns(np.arange(2), {"x": np.zeros(2)})
        b = RecordBatch.from_columns(np.arange(2), {"y": np.zeros(2)})
        with pytest.raises(ConfigError, match="mismatched schemas"):
            RecordBatch.concat([a, b])

    def test_equals_detects_value_change(self):
        a = _sample_batch()
        b = _sample_batch()
        assert a.equals(b)
        c = b.take(np.arange(len(b))[::-1])
        assert not a.equals(c)


class TestByteAccounting:
    def test_row_nbytes_fixed_width(self):
        b = RecordBatch.from_columns(
            np.arange(4, dtype=np.int64),
            {"mass": np.zeros(4), "id": np.zeros(4, dtype=np.uint32)},
        )
        assert b.row_nbytes().tolist() == [20, 20, 20, 20]
        assert b.nbytes == 4 * 20

    def test_row_nbytes_var_width_prices_lengths(self):
        b = RecordBatch.from_columns(
            np.arange(3, dtype=np.int64), {"tag": [b"", b"ab", b"abcd"]}
        )
        # key (8) + offsets entry (8) + actual blob bytes per row.
        assert b.row_nbytes().tolist() == [16, 18, 20]
        # Total buffers carry one extra offsets entry over the row sum.
        assert b.nbytes == sum(b.row_nbytes()) + 8


class TestWireFormat:
    @pytest.mark.parametrize("dtype", FIXED_DTYPES)
    def test_round_trip_every_fixed_dtype(self, dtype):
        rng = np.random.default_rng(hash(dtype) % 2**32)
        n = 11
        b = RecordBatch.from_columns(
            _column("i8", n, rng), {"col": _column(dtype, n, rng)}
        )
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)
        assert again.column("col").dtype == np.dtype(dtype)

    @pytest.mark.parametrize("dtype", FIXED_DTYPES)
    def test_round_trip_zero_rows(self, dtype):
        b = RecordBatch.from_columns(
            np.empty(0, dtype=np.int64),
            {"col": np.empty(0, dtype=dtype)},
        )
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)
        assert len(again) == 0

    def test_round_trip_var_width_and_unicode(self):
        b = RecordBatch.from_columns(
            np.arange(4),
            {
                "raw": [b"", b"\x00\xff", b"abc", b"d"],
                "label": ["", "héllo", "wörld", "x"],
            },
        )
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)
        assert again.column("label") == ["", "héllo", "wörld", "x"]

    def test_round_trip_zero_row_var_width(self):
        b = RecordBatch.from_columns(
            np.empty(0, dtype=np.int64), {"tag": []}
        )
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)

    def test_round_trip_structured_key(self):
        key_dtype = np.dtype([("k", "<i8"), ("pe", "<i4"), ("idx", "<i4")])
        keys = np.zeros(5, dtype=key_dtype)
        keys["k"] = np.arange(5)
        keys["pe"] = 7
        b = RecordBatch.from_columns(keys, {"mass": np.linspace(0, 1, 5)})
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)
        assert again.keys.dtype == key_dtype

    def test_round_trip_key_only(self):
        b = RecordBatch.from_columns(np.arange(6, dtype=np.uint64))
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)
        assert again.num_columns == 0

    def test_round_trip_mixed_many_columns(self):
        rng = np.random.default_rng(42)
        n = 33
        cols = {f"c_{dt.replace('?', 'b')}": _column(dt, n, rng)
                for dt in FIXED_DTYPES}
        cols["blob"] = [
            bytes(rng.integers(0, 256, size=int(rng.integers(0, 9)), dtype=np.uint8))
            for _ in range(n)
        ]
        b = RecordBatch.from_columns(_column("i8", n, rng), cols)
        again = RecordBatch.from_bytes(b.to_bytes())
        assert again.equals(b)

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigError, match="magic"):
            RecordBatch.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_buffers_are_aligned(self):
        blob = _sample_batch().to_bytes()
        import json

        header_len = int.from_bytes(blob[6:10], "little")
        header = json.loads(blob[10:10 + header_len].decode())
        for entry in header["buffers"]:
            assert entry["offset"] % 64 == 0
