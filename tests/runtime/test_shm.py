"""Tests for the shared-memory rank-args transport."""

import numpy as np

from repro.runtime.shm import ArrayRef, pack_rank_args, unpack_rank_args

TAGGED = np.dtype([("key", "<i8"), ("pe", "<i8")])


class TestPackUnpack:
    def test_round_trip_plain_arrays(self):
        rng = np.random.default_rng(0)
        rank_args = [(rng.integers(0, 100, 50),) for _ in range(4)]
        shm, packed = pack_rank_args(rank_args)
        try:
            assert all(
                isinstance(args[0], ArrayRef) for args in packed
            )
            out = unpack_rank_args(shm, packed)
            for (orig,), (copy,) in zip(rank_args, out):
                np.testing.assert_array_equal(orig, copy)
                assert copy.base is None  # owns its data, not a view
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

    def test_mixed_leaves_pass_through(self):
        keys = np.arange(10)
        payload = np.arange(10, dtype=np.float64)
        rank_args = [(keys, payload, "label", 7)]
        shm, packed = pack_rank_args(rank_args)
        try:
            out = unpack_rank_args(shm, packed)
            np.testing.assert_array_equal(out[0][0], keys)
            np.testing.assert_array_equal(out[0][1], payload)
            assert out[0][2] == "label" and out[0][3] == 7
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

    def test_no_arrays_means_no_segment(self):
        shm, packed = pack_rank_args([(1,), (2,)])
        assert shm is None
        assert unpack_rank_args(None, packed) == [(1,), (2,)]

    def test_structured_and_empty_arrays(self):
        tagged = np.zeros(3, dtype=TAGGED)
        tagged["key"] = [3, 1, 2]
        empty = np.empty(0, dtype=np.int64)
        shm, packed = pack_rank_args([(tagged,), (empty,)])
        try:
            out = unpack_rank_args(shm, packed)
            np.testing.assert_array_equal(out[0][0], tagged)
            assert out[0][0].dtype == TAGGED
            assert len(out[1][0]) == 0 and out[1][0].dtype == np.int64
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()

    def test_non_contiguous_input(self):
        base = np.arange(20)
        strided = base[::2]
        shm, packed = pack_rank_args([(strided,)])
        try:
            out = unpack_rank_args(shm, packed)
            np.testing.assert_array_equal(out[0][0], strided)
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
