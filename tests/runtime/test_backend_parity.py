"""Backend parity: real backends must be bit-identical to the simulator.

The backend contract (see :mod:`repro.runtime`) is that *how* ranks execute
changes nothing observable except wall-clock: sorted shards, payloads,
splitter choices, per-algorithm stats, ``CommStats`` byte/message counts and
the modeled makespan all match exactly.  These tests run every registered
algorithm on a small grid through the process and thread backends and
compare everything against the simulator.
"""

import dataclasses

import numpy as np
import pytest

from repro.algorithms import REGISTRY, Dataset, Sorter, get_spec
from repro.bsp.engine import RunResult
from repro.errors import BSPError, CollectiveMismatchError, DeadlockError
from repro.runtime import ProcessBackend, SimulatedBackend, ThreadBackend

P = 4
N_PER = 300
WORKLOADS = ("uniform", "staircase")

GRID = [
    (algorithm, workload)
    for algorithm in sorted(REGISTRY)
    for workload in WORKLOADS
]


def _run(algorithm: str, workload: str, backend) -> object:
    dataset = Dataset.from_workload(workload, p=P, n_per=N_PER, seed=11)
    # Fixed-round HSS variants guarantee balance only w.h.p.; at this tiny
    # scale run them best-effort, as the shootout suite does.
    kwargs = {"strict": False} if algorithm.startswith("hss-") else {}
    config = get_spec(algorithm).legacy_config(eps=0.2, seed=3, **kwargs)
    return Sorter(
        algorithm, config=config, backend=backend, verify=False
    ).run(dataset)


def _assert_stats_equal(a, b) -> None:
    """Field-wise stats comparison (ndarray fields need array_equal)."""
    assert type(a) is type(b)
    if a is None:
        return
    assert dataclasses.is_dataclass(a), a
    for field in dataclasses.fields(a):
        lhs = getattr(a, field.name)
        rhs = getattr(b, field.name)
        if isinstance(lhs, np.ndarray):
            # Splitter choices, bucket maps, ... must match exactly.
            np.testing.assert_array_equal(lhs, rhs, err_msg=field.name)
        else:
            assert lhs == rhs, f"{field.name}: {lhs!r} != {rhs!r}"


@pytest.mark.parametrize(
    "algorithm,workload", GRID, ids=[f"{a}-{w}" for a, w in GRID]
)
def test_process_backend_bit_identical(algorithm, workload):
    sim = _run(algorithm, workload, SimulatedBackend())
    proc = _run(algorithm, workload, ProcessBackend(workers=2))

    for rank, (a, b) in enumerate(zip(sim.shards, proc.shards)):
        np.testing.assert_array_equal(a, b, err_msg=f"rank {rank} shard")
    assert sim.engine_result.stats == proc.engine_result.stats
    assert sim.makespan == proc.makespan
    for a, b in zip(sim.rank_stats, proc.rank_stats):
        _assert_stats_equal(a, b)
    assert sim.backend == "simulated" and proc.backend == "process"
    # Measured blocks differ by design: the process backend instruments
    # ranks, the simulator reports only the total wall.
    assert proc.measured.workers == 2
    assert proc.measured.wall_s > 0.0
    assert len(proc.measured.rank_compute_s) == P


@pytest.mark.parametrize(
    "algorithm,workload", GRID, ids=[f"{a}-{w}" for a, w in GRID]
)
def test_thread_backend_bit_identical(algorithm, workload):
    sim = _run(algorithm, workload, SimulatedBackend())
    thr = _run(algorithm, workload, ThreadBackend(workers=2))

    for rank, (a, b) in enumerate(zip(sim.shards, thr.shards)):
        np.testing.assert_array_equal(a, b, err_msg=f"rank {rank} shard")
    assert sim.engine_result.stats == thr.engine_result.stats
    assert sim.makespan == thr.makespan
    for a, b in zip(sim.rank_stats, thr.rank_stats):
        _assert_stats_equal(a, b)
    assert sim.backend == "simulated" and thr.backend == "thread"
    # The thread backend instruments ranks exactly like the process one.
    assert thr.measured.workers == 2
    assert thr.measured.wall_s > 0.0
    assert len(thr.measured.rank_compute_s) == P
    assert thr.measured.phase_wall_s


PAYLOAD_ALGORITHMS = sorted(
    name for name, spec in REGISTRY.items() if spec.supports_payloads
)
RECORD_COLUMNS = {"mass": "f8", "vx": "f4", "id": "u4"}


@pytest.mark.parametrize("algorithm", PAYLOAD_ALGORITHMS)
def test_record_payload_parity(algorithm):
    """Typed payload columns arrive bit-identical from both backends."""
    dataset = Dataset.from_workload(
        "uniform", p=P, n_per=N_PER, seed=11, payloads=RECORD_COLUMNS
    )
    kwargs = {"strict": False} if algorithm.startswith("hss-") else {}
    config = get_spec(algorithm).legacy_config(eps=0.2, seed=3, **kwargs)
    sim, proc = (
        Sorter(
            algorithm, config=config, backend=backend, verify=False
        ).run(dataset)
        for backend in (SimulatedBackend(), ProcessBackend(workers=2))
    )
    assert sim.payloads[0].dtype.names == tuple(RECORD_COLUMNS)
    for rank in range(P):
        np.testing.assert_array_equal(
            sim.shards[rank], proc.shards[rank], err_msg=f"rank {rank} keys"
        )
        np.testing.assert_array_equal(
            sim.payloads[rank],
            proc.payloads[rank],
            err_msg=f"rank {rank} payload columns",
        )
    assert sim.engine_result.stats == proc.engine_result.stats
    assert sim.makespan == proc.makespan
    for a, b in zip(sim.record_batches(), proc.record_batches()):
        assert a.equals(b)


def test_payload_round_trip_identical():
    dataset = Dataset.from_workload(
        "uniform", p=P, n_per=N_PER, seed=1
    ).with_index_payloads()
    runs = [
        Sorter(
            "hss", eps=0.2, seed=3, backend=backend, verify=False
        ).run(dataset)
        for backend in (SimulatedBackend(), ProcessBackend(workers=2))
    ]
    flat = np.concatenate(dataset.shards)
    for sim_keys, sim_pay, proc_pay in zip(
        runs[0].shards, runs[0].payloads, runs[1].payloads
    ):
        np.testing.assert_array_equal(sim_pay, proc_pay)
        np.testing.assert_array_equal(flat[proc_pay], sim_keys)


@pytest.mark.parametrize("workers", [1, 3, 4])
@pytest.mark.parametrize("backend_cls", [ProcessBackend, ThreadBackend])
def test_worker_multiplexing_is_invisible(backend_cls, workers):
    baseline = _run("hss", "uniform", SimulatedBackend())
    run = _run("hss", "uniform", backend_cls(workers=workers))
    for a, b in zip(baseline.shards, run.shards):
        np.testing.assert_array_equal(a, b)
    assert baseline.engine_result.stats == run.engine_result.stats
    assert run.measured.workers == min(workers, P)


# --------------------------------------------------------------------- #
# Error parity: SPMD violations surface identically from both backends. #
# --------------------------------------------------------------------- #
def _mismatch_program(ctx, keys):
    if ctx.rank == 0:
        yield from ctx.bcast(1, root=0)
    else:
        yield from ctx.gather(1, root=0)
    return keys


def _early_return_program(ctx, keys):
    if ctx.rank == 0:
        return keys
    yield from ctx.barrier()
    yield from ctx.barrier()
    return keys


def _bad_yield_program(ctx, keys):
    yield "not a collective"
    return keys


def _plain_function(ctx, keys):
    return keys


def _rank_args():
    return [(np.arange(10),) for _ in range(P)]


def _both_raise(program, exc_type):
    """Run on every backend; return the exception objects in order."""
    raised = []
    for backend in (
        SimulatedBackend(),
        ProcessBackend(workers=2),
        ThreadBackend(workers=2),
    ):
        with pytest.raises(exc_type) as info:
            backend.run(program, _rank_args())
        raised.append(info.value)
    return raised


def test_collective_mismatch_identical():
    sim, proc, thr = _both_raise(_mismatch_program, CollectiveMismatchError)
    assert str(sim) == str(proc) == str(thr)
    assert "bcast" in str(sim) and "gather" in str(sim)
    # The structured fields survive the process boundary too.
    for other in (proc, thr):
        assert (sim.superstep, sim.ranks) == (other.superstep, other.ranks)
    assert sim.superstep is not None
    assert sim.ranks


def test_deadlock_identical():
    sim, proc, thr = _both_raise(_early_return_program, DeadlockError)
    assert str(sim) == str(proc) == str(thr)
    assert "not SPMD" in str(sim)
    assert sim.superstep == proc.superstep == thr.superstep is not None
    assert sim.finished_ranks == proc.finished_ranks == thr.finished_ranks != ()
    assert sim.stuck_ranks == proc.stuck_ranks == thr.stuck_ranks != ()


def test_bad_yield_identical():
    sim, proc, thr = _both_raise(_bad_yield_program, BSPError)
    assert str(sim) == str(proc) == str(thr)
    assert "yield from" in str(sim)


def test_plain_function_identical():
    sim, proc, thr = _both_raise(_plain_function, BSPError)
    assert str(sim) == str(proc) == str(thr)
    assert "generator function" in str(sim)


def test_program_exception_propagates():
    def _raises(ctx, keys):
        yield from ctx.barrier()
        raise ValueError("rank blew up")

    for backend in (
        SimulatedBackend(),
        ProcessBackend(workers=2),
        ThreadBackend(workers=2),
    ):
        with pytest.raises(ValueError, match="rank blew up"):
            backend.run(_raises, _rank_args())


@pytest.mark.parametrize(
    "backend_cls,name",
    [(ProcessBackend, "process"), (ThreadBackend, "thread")],
)
def test_real_backend_returns_runresult_with_measured(backend_cls, name):
    def _noop(ctx, keys):
        yield from ctx.barrier()
        return int(keys.sum())

    result = backend_cls(workers=2).run(_noop, _rank_args())
    assert isinstance(result, RunResult)
    assert result.returns == [int(np.arange(10).sum())] * P
    assert result.measured.backend == name
