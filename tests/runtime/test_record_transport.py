"""Record transport through the process backend: no pickling, no leaks.

Two contracts from the record data plane land here:

* **zero-pickle hot path** — payload columns and key arrays travel between
  the broker and its workers through named shared-memory segments only;
  the pipes carry envelopes with :class:`~repro.runtime.shm.ArrayRef`
  placeholders.  A pickler that refuses plain ndarrays proves it.
* **crash hygiene** — a worker dying mid-superstep (``os._exit``, no
  cleanup handlers run) must not leak ``/dev/shm`` segments: the broker's
  teardown reclaims result segments it sent and probes for in-flight
  batches the dead worker created.
"""

import dataclasses
import multiprocessing
import os

import numpy as np
import pytest

from repro.algorithms import Dataset, Sorter
from repro.errors import BSPError
from repro.runtime import ProcessBackend, SimulatedBackend

P = 4
DEV_SHM = "/dev/shm"

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork start method (patch/namespace shared with workers)",
)


def _payload_dataset(n_per: int = 200) -> Dataset:
    return Dataset.from_workload(
        "uniform", p=P, n_per=n_per, seed=5,
        payloads={"mass": "f8", "vx": "f4", "id": "u4"},
    )


# --------------------------------------------------------------------- #
# Zero-pickle hot path.                                                 #
# --------------------------------------------------------------------- #
def _assert_no_plain_arrays(obj, path="message", depth=0):
    """Fail if any non-object ndarray hides in a to-be-pickled message."""
    if depth > 12:
        return
    if isinstance(obj, np.ndarray):
        if not obj.dtype.hasobject:
            raise AssertionError(
                f"fixed-width ndarray (dtype {obj.dtype}, {obj.nbytes} "
                f"bytes) reached the pickler at {path}; arrays must ride "
                f"shared memory"
            )
        return
    if isinstance(obj, dict):
        for k, v in obj.items():
            _assert_no_plain_arrays(v, f"{path}[{k!r}]", depth + 1)
    elif isinstance(obj, (tuple, list)):
        for i, v in enumerate(obj):
            _assert_no_plain_arrays(v, f"{path}[{i}]", depth + 1)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            _assert_no_plain_arrays(
                getattr(obj, f.name), f"{path}.{f.name}", depth + 1
            )


@pytest.fixture
def no_array_pickling(monkeypatch):
    """Make every pipe send (broker and forked workers) reject ndarrays."""
    import multiprocessing.connection as mpc
    from multiprocessing.reduction import ForkingPickler

    class NoArrayPickler(ForkingPickler):
        @classmethod
        def dumps(cls, obj, protocol=None):
            _assert_no_plain_arrays(obj)
            return ForkingPickler.dumps(obj, protocol)

    monkeypatch.setattr(mpc, "_ForkingPickler", NoArrayPickler)


def test_payload_columns_never_pickled(no_array_pickling):
    """A record-carrying sort completes with the array-banning pickler.

    Broker-side violations raise directly; a worker-side violation kills
    the worker, which the broker reports as an unexpected exit — either
    way the test fails unless the column hot path is pickle-free.
    """
    dataset = _payload_dataset()
    run = Sorter(
        "hss", eps=0.2, seed=3, backend=ProcessBackend(workers=2),
        verify=False,
    ).run(dataset)
    baseline = Sorter(
        "hss", eps=0.2, seed=3, backend=SimulatedBackend(), verify=False
    ).run(dataset)
    for a, b in zip(run.shards, baseline.shards):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(run.payloads, baseline.payloads):
        np.testing.assert_array_equal(a, b)


# --------------------------------------------------------------------- #
# Crash hygiene.                                                        #
# --------------------------------------------------------------------- #
def _crashing_program(ctx, keys, payload):
    # Superstep 1 ships real arrays both ways, so named segments exist.
    parts = [keys[i::ctx.nprocs] for i in range(ctx.nprocs)]
    yield from ctx.alltoall(parts)
    if ctx.rank == 1:
        os._exit(1)  # no atexit, no finally: the hard-crash case
    yield from ctx.barrier()
    return keys


@pytest.mark.skipif(
    not os.path.isdir(DEV_SHM), reason="needs a /dev/shm tmpfs"
)
def test_worker_crash_leaks_no_segments():
    before = set(os.listdir(DEV_SHM))
    dataset = _payload_dataset(n_per=50)
    with pytest.raises(BSPError, match="exited unexpectedly"):
        ProcessBackend(workers=2).run(
            _crashing_program, dataset.rank_args()
        )
    leaked = set(os.listdir(DEV_SHM)) - before
    assert not leaked, f"crash leaked shared-memory segments: {sorted(leaked)}"


@pytest.mark.skipif(
    not os.path.isdir(DEV_SHM), reason="needs a /dev/shm tmpfs"
)
def test_clean_run_leaks_no_segments():
    before = set(os.listdir(DEV_SHM))
    Sorter(
        "hss", eps=0.2, seed=3, backend=ProcessBackend(workers=2),
        verify=False,
    ).run(_payload_dataset(n_per=50))
    leaked = set(os.listdir(DEV_SHM)) - before
    assert not leaked, f"sort leaked shared-memory segments: {sorted(leaked)}"
