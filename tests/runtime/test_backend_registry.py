"""Tests for the backend registry: built-ins, resolution, README table."""

import pathlib
import re

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SimulatedBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert available_backends() == [
            "chaos", "process", "simulated", "thread"
        ]
        assert BACKENDS["simulated"] is SimulatedBackend
        assert BACKENDS["process"] is ProcessBackend
        assert BACKENDS["thread"] is ThreadBackend
        from repro.runtime import ChaosBackend

        assert BACKENDS["chaos"] is ChaosBackend

    def test_get_backend_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            get_backend("mpi")

    def test_get_backend_with_options(self):
        assert get_backend("process", workers=3).workers == 3

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            get_backend("process", workers=0)

    def test_resolve_none_is_simulated(self):
        assert resolve_backend(None).name == "simulated"

    def test_resolve_passes_instances_through(self):
        backend = ProcessBackend(workers=2)
        assert resolve_backend(backend) is backend

    def test_resolve_rejects_options_on_instances(self):
        with pytest.raises(ConfigError, match="options"):
            resolve_backend(ProcessBackend(), workers=2)

    def test_resolve_rejects_other_types(self):
        with pytest.raises(ConfigError, match="cannot resolve"):
            resolve_backend(42)

    def test_register_requires_backend_subclass(self):
        with pytest.raises(ConfigError, match="Backend subclass"):
            register_backend(object)

    def test_register_requires_name_and_description(self):
        class Nameless(Backend):
            name = ""
            description = "x"

            def run(self, program, rank_args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigError, match="must set a name"):
            register_backend(Nameless)

    def test_duplicate_name_rejected(self):
        class Impostor(Backend):
            name = "simulated"
            description = "not the real one"

            def run(self, program, rank_args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigError, match="already registered"):
            register_backend(Impostor)

    def test_third_party_registration_round_trip(self):
        class Custom(Backend):
            name = "test-custom-backend"
            description = "registry round-trip probe"

            def run(self, program, rank_args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        try:
            register_backend(Custom)
            assert resolve_backend("test-custom-backend").name == Custom.name
        finally:
            BACKENDS.pop("test-custom-backend", None)


class TestReadmeBackendsTable:
    def test_readme_table_matches_registry(self):
        """The README execution-backends table is generated from BACKENDS."""
        readme = (
            pathlib.Path(__file__).parents[2] / "README.md"
        ).read_text()
        rows = re.findall(
            r"^\| `([a-z0-9-]+)` \| (yes|no) \| [^|]+ \|$", readme, re.M
        )
        documented = {name: is_default for name, is_default in rows}
        registered = {
            name: ("yes" if name == "simulated" else "no")
            for name in BACKENDS
        }
        assert documented == registered
