"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.algorithm == "hss"
        assert args.procs == 16

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--procs", "1024", "--eps", "0.1"]
        )
        assert args.procs == 1024 and args.eps == 0.1


class TestSortCommand:
    def test_hss_uniform(self, capsys):
        code = main(
            ["sort", "--procs", "4", "--keys", "500", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "imbalance" in out
        assert "rounds" in out
        assert "TOTAL" in out  # phase table

    def test_baseline_algorithm(self, capsys):
        code = main(
            [
                "sort",
                "--algorithm",
                "sample-regular",
                "--procs",
                "4",
                "--keys",
                "400",
                "--eps",
                "0.2",
            ]
        )
        assert code == 0
        assert "sample-regular" in capsys.readouterr().out

    def test_duplicates_with_tagging(self, capsys):
        code = main(
            [
                "sort",
                "--procs",
                "4",
                "--keys",
                "400",
                "--distribution",
                "staircase",
                "--tag-duplicates",
            ]
        )
        assert code == 0

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["sort", "--algorithm", "quicksort"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_unknown_distribution_exits_2(self, capsys):
        assert main(["sort", "--distribution", "cauchy"]) == 2
        assert "unknown distribution" in capsys.readouterr().err


class TestTableCommand:
    def test_table_5_1(self, capsys):
        assert main(["table", "5.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 5.1" in out and "HSS" in out

    def test_intro(self, capsys):
        assert main(["table", "intro", "--procs", "64000"]) == 0
        out = capsys.readouterr().out
        assert "655 GB" in out


class TestSimulateCommand:
    def test_constant_schedule(self, capsys):
        code = main(
            [
                "simulate",
                "--procs",
                "512",
                "--keys-per-proc",
                "1000",
                "--eps",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "finalized: True" in out
        assert "paper round bound" in out

    def test_geometric_schedule(self, capsys):
        code = main(
            [
                "simulate",
                "--procs",
                "256",
                "--keys-per-proc",
                "1000",
                "--rounds",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "geometric, k=2" in out
