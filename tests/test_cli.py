"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.algorithm == "hss"
        assert args.procs == 16

    def test_sort_short_flags_and_workload_alias(self):
        args = build_parser().parse_args(
            ["sort", "-p", "4", "-n", "100", "--workload", "staircase"]
        )
        assert args.procs == 4
        assert args.keys == 100
        assert args.distribution == "staircase"

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--procs", "1024", "--eps", "0.1"]
        )
        assert args.procs == 1024 and args.eps == 0.1


class TestSortCommand:
    def test_hss_uniform(self, capsys):
        code = main(
            ["sort", "--procs", "4", "--keys", "500", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "imbalance" in out
        assert "rounds" in out
        assert "TOTAL" in out  # phase table

    def test_baseline_algorithm(self, capsys):
        code = main(
            [
                "sort",
                "--algorithm",
                "sample-regular",
                "--procs",
                "4",
                "--keys",
                "400",
                "--eps",
                "0.2",
            ]
        )
        assert code == 0
        assert "sample-regular" in capsys.readouterr().out

    def test_duplicates_with_tagging(self, capsys):
        code = main(
            [
                "sort",
                "--procs",
                "4",
                "--keys",
                "400",
                "--distribution",
                "staircase",
                "--tag-duplicates",
            ]
        )
        assert code == 0

    def test_unknown_algorithm_exits_2(self, capsys):
        assert main(["sort", "--algorithm", "quicksort"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_unknown_distribution_exits_2(self, capsys):
        assert main(["sort", "--distribution", "cauchy"]) == 2
        assert "unknown distribution" in capsys.readouterr().err

    def test_acceptance_invocation_prints_sortrun_summary(self, capsys):
        code = main(
            [
                "sort",
                "--algorithm",
                "hss",
                "--workload",
                "uniform",
                "-p",
                "8",
                "-n",
                "1000",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "imbalance" in out and "modeled makespan" in out
        assert "TOTAL" in out

    def test_payload_roundtrip_flag(self, capsys):
        code = main(
            ["sort", "--algorithm", "sample-regular", "-p", "4", "-n", "300",
             "--payloads", "index"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "payloads" in out and "1,200 values" in out

    def test_bad_config_key_exits_2_not_traceback(self, capsys):
        code = main(
            ["sort", "--algorithm", "radix", "-p", "4", "-n", "100",
             "--tag-duplicates"]
        )
        assert code == 2
        assert "unknown config key" in capsys.readouterr().err

    def test_payloads_with_incapable_algorithm_exits_2(self, capsys):
        code = main(
            ["sort", "--algorithm", "bitonic", "-p", "4", "-n", "100",
             "--payloads", "index"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "does not support payloads" in err
        # The pre-check names the payload-capable alternatives.
        assert "hss" in err and "sample-regular" in err

    def test_catalog_workload_beyond_distributions(self, capsys):
        code = main(
            ["sort", "--algorithm", "hss", "--workload", "hotspot",
             "-p", "4", "-n", "200", "--tag-duplicates"]
        )
        assert code == 0
        assert "hotspot" in capsys.readouterr().out


class TestAlgorithmsCommand:
    def test_lists_registry_with_capabilities(self, capsys):
        from repro.algorithms import REGISTRY

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out
        assert "config:" in out and "§6.1.2" in out


class TestTableCommand:
    def test_table_5_1(self, capsys):
        assert main(["table", "5.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 5.1" in out and "HSS" in out

    def test_intro(self, capsys):
        assert main(["table", "intro", "--procs", "64000"]) == 0
        out = capsys.readouterr().out
        assert "655 GB" in out


class TestSimulateCommand:
    def test_constant_schedule(self, capsys):
        code = main(
            [
                "simulate",
                "--procs",
                "512",
                "--keys-per-proc",
                "1000",
                "--eps",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "finalized: True" in out
        assert "paper round bound" in out

    def test_geometric_schedule(self, capsys):
        code = main(
            [
                "simulate",
                "--procs",
                "256",
                "--keys-per-proc",
                "1000",
                "--rounds",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "geometric, k=2" in out


class TestBenchCommand:
    @pytest.fixture(scope="class")
    def bench_json(self, tmp_path_factory):
        """One real quick-tier run of a cheap suite, shared by the class."""
        path = tmp_path_factory.mktemp("bench") / "bench.json"
        assert (
            main(
                [
                    "bench",
                    "--tier",
                    "quick",
                    "--suite",
                    "ablation_approx",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        return path

    def test_list_exits_0(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "shootout" in out and "table_5_1" in out

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["bench", "--suite", "quicksort"]) == 2
        assert "unknown benchmark suite" in capsys.readouterr().err

    def test_candidate_without_baseline_exits_2(self, capsys, tmp_path):
        assert main(["bench", "--candidate", str(tmp_path / "x.json")]) == 2
        assert "requires --baseline" in capsys.readouterr().err

    def test_candidate_rejects_run_only_flags(self, bench_json, capsys):
        code = main(
            [
                "bench",
                "--baseline",
                str(bench_json),
                "--candidate",
                str(bench_json),
                "--json",
                "out.json",
            ]
        )
        assert code == 2
        assert "no effect with --candidate" in capsys.readouterr().err
        assert main(
            [
                "bench",
                "--baseline",
                str(bench_json),
                "--candidate",
                str(bench_json),
                "--tier",
                "full",
            ]
        ) == 2

    def test_run_writes_schema_valid_json(self, bench_json):
        from repro.bench.schema import BenchDocument, validate_document
        import json

        data = json.loads(bench_json.read_text())
        assert validate_document(data) == []
        doc = BenchDocument.load(bench_json)
        assert doc.suite_names() == ["ablation_approx"]

    def test_clean_rerun_against_baseline_exits_0(self, bench_json, capsys):
        code = main(
            [
                "bench",
                "--tier",
                "quick",
                "--suite",
                "ablation_approx",
                "--baseline",
                str(bench_json),
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_self_compare_exits_0(self, bench_json, capsys):
        code = main(
            [
                "bench",
                "--baseline",
                str(bench_json),
                "--candidate",
                str(bench_json),
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_makespan_regression_exits_1(self, bench_json, tmp_path, capsys):
        import json

        data = json.loads(bench_json.read_text())
        for suite in data["suites"]:
            for case in suite["cases"]:
                if "makespan_s" in case["metrics"]:
                    case["metrics"]["makespan_s"] *= 2
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(data))
        code = main(
            [
                "bench",
                "--baseline",
                str(bench_json),
                "--candidate",
                str(inflated),
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_relaxes_gate(self, bench_json, tmp_path):
        import json

        data = json.loads(bench_json.read_text())
        for suite in data["suites"]:
            for case in suite["cases"]:
                if "makespan_s" in case["metrics"]:
                    case["metrics"]["makespan_s"] *= 2
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(data))
        code = main(
            [
                "bench",
                "--baseline",
                str(bench_json),
                "--candidate",
                str(inflated),
                "--tol-makespan",
                "1.5",
            ]
        )
        assert code == 0

    def test_tier_mismatch_with_baseline_rejected_before_running(
        self, bench_json, capsys
    ):
        # The committed-style baseline is quick-tier; a full-tier run must
        # be rejected in milliseconds, not after the measurement.
        code = main(
            ["bench", "--tier", "full", "--baseline", str(bench_json)]
        )
        assert code == 2
        assert "incomparable" in capsys.readouterr().err

    def test_subset_absent_from_baseline_exits_2(self, bench_json, capsys):
        # Gating a suite the baseline never measured must not pass vacuously.
        code = main(
            [
                "bench",
                "--tier",
                "quick",
                "--suite",
                "table_5_1",
                "--baseline",
                str(bench_json),  # contains only ablation_approx
            ]
        )
        assert code == 2
        assert "none of the selected suites" in capsys.readouterr().err

    def test_corrupt_baseline_exits_2(self, bench_json, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(
            ["bench", "--baseline", str(bad), "--candidate", str(bench_json)]
        )
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestBenchParallelAndTiers:
    def test_invalid_jobs_exits_2(self, capsys):
        assert main(["bench", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_rejected_with_candidate(self, tmp_path, capsys):
        import json

        stub = tmp_path / "doc.json"
        stub.write_text(
            json.dumps({"schema_version": 1, "tier": "quick", "suites": []})
        )
        code = main(
            [
                "bench",
                "--baseline",
                str(stub),
                "--candidate",
                str(stub),
                "--jobs",
                "2",
            ]
        )
        assert code == 2
        assert "no effect with --candidate" in capsys.readouterr().err

    def test_parallel_run_modeled_identical_to_serial(self, tmp_path):
        import json

        from repro.bench.schema import strip_volatile

        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        args = ["bench", "--tier", "quick", "--suite", "ablation_approx",
                "--suite", "table_5_1"]
        assert main(args + ["--jobs", "1", "--json", str(serial)]) == 0
        assert main(args + ["--jobs", "2", "--json", str(parallel)]) == 0
        a, b = (
            strip_volatile(json.loads(path.read_text()))
            for path in (serial, parallel)
        )
        assert a == b
        # Worker provenance is recorded next to (not inside) the payload.
        data = json.loads(parallel.read_text())
        assert all(run["worker"]["jobs"] == 2 for run in data["suites"])
        assert all(run["worker"]["pid"] > 0 for run in data["suites"])

    def test_stress_tier_selects_only_stress_suites(self, tmp_path, capsys):
        from repro.bench.registry import suite_names

        out = tmp_path / "stress.json"
        code = main(
            [
                "bench",
                "--tier",
                "stress",
                "--suite",
                "fig_3_1",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        import json

        data = json.loads(out.read_text())
        assert data["tier"] == "stress"
        assert [run["suite"] for run in data["suites"]] == ["fig_3_1"]
        assert len(suite_names("stress")) >= 4

    def test_stress_tier_rejects_non_stress_suite(self, capsys):
        code = main(["bench", "--tier", "stress", "--suite", "table_5_1"])
        assert code == 2
        assert "do not define tier 'stress'" in capsys.readouterr().err


class TestMachineFlag:
    def test_sort_reports_resolved_machine(self, capsys):
        code = main(
            ["sort", "-p", "4", "-n", "300", "--machine", "dragonfly-hpc"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dragonfly-hpc machine" in out
        assert "dragonfly topology" in out

    def test_legacy_alias_resolves_to_canonical_name(self, capsys):
        code = main(["sort", "-p", "4", "-n", "300", "--machine", "mira"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mira-like-bgq machine" in out

    def test_unknown_machine_exits_2(self, capsys):
        assert main(["sort", "--machine", "pdp-11"]) == 2
        assert "unknown machine" in capsys.readouterr().err


class TestMachinesCommand:
    def test_lists_all_presets_with_notes(self, capsys):
        from repro.machines import available_machines

        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert len(available_machines()) >= 6
        for name in available_machines():
            assert name in out
        assert "torus" in out and "alpha=" in out


class TestWorkloadsCommand:
    def test_lists_registry_with_record_schemas(self, capsys):
        from repro.workloads import available_workloads

        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in available_workloads():
            assert name in out
        # Record-carrying workloads show their columns, the rest say so.
        assert "records: mass:<f8" in out
        assert "keys only" in out
        assert "§6.3" in out


class TestChaosCommand:
    def test_lists_registered_fault_plans(self, capsys):
        from repro.chaos import available_fault_plans

        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        for name in available_fault_plans():
            assert name in out
        assert "(default)" in out  # the fault-free 'none' plan
        assert "straggler_prob=" in out

    def test_sort_with_unknown_plan_exits_2(self, capsys):
        assert main(["sort", "--chaos", "storm"]) == 2
        assert "unknown fault plan" in capsys.readouterr().err

    def test_sort_reports_chaos_metrics_line(self, capsys):
        code = main(
            ["sort", "-p", "4", "-n", "400", "--chaos", "stragglers"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos" in out
        assert "stragglers" in out and "slowdown" in out

    def test_sort_surfaces_injected_fault_with_provenance(self, capsys):
        code = main(
            ["sort", "-p", "4", "-n", "400", "--chaos", "kill-rank"]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "injected fault detected" in err
        assert "fault provenance" in err
        assert "not SPMD" in err


class TestSweepCommand:
    def test_two_by_two_grid_with_json(self, capsys, tmp_path):
        path = tmp_path / "experiment.json"
        code = main(
            [
                "sweep",
                "--algorithms", "hss,sample-regular",
                "--workloads", "uniform,staircase",
                "--machines", "laptop",
                "-p", "4",
                "-n", "200",
                "--json", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 cells (4 ok, 0 skipped)" in out

        from repro.experiments import ExperimentDocument, validate_experiment

        doc = ExperimentDocument.load(path)
        assert validate_experiment(doc.to_dict()) == []
        assert len(doc.cells) == 4

    def test_jobs_matches_serial(self, tmp_path, capsys):
        import json

        from repro.experiments import strip_volatile_experiment

        args = [
            "sweep", "--algorithms", "hss", "--workloads", "uniform",
            "-p", "4", "-n", "200",
        ]
        paths = []
        for jobs, tag in (("1", "serial"), ("2", "parallel")):
            path = tmp_path / f"{tag}.json"
            assert main(args + ["--jobs", jobs, "--json", str(path)]) == 0
            paths.append(path)
        capsys.readouterr()
        serial, parallel = (
            json.dumps(
                strip_volatile_experiment(json.loads(p.read_text())),
                sort_keys=True,
            )
            for p in paths
        )
        assert serial == parallel

    def test_report_file(self, capsys, tmp_path):
        report = tmp_path / "report.txt"
        code = main(
            [
                "sweep", "--algorithms", "hss", "--workloads", "uniform",
                "-p", "4", "-n", "200", "--report", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert report.read_text().strip() == out.strip()

    def test_payloads_axis(self, capsys, tmp_path):
        path = tmp_path / "records.json"
        code = main(
            [
                "sweep", "--algorithms", "hss,bitonic",
                "--workloads", "uniform", "-p", "4", "-n", "200",
                "--payloads", "none", "--payloads", "mass:f8,id:u4",
                "--json", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # bitonic's record cell is infeasible: skipped, not fatal.
        assert "4 cells (3 ok, 1 skipped)" in out

        import json

        doc = json.loads(path.read_text())
        assert doc["grid"]["payloads"] == ["", "mass:f8,id:u4"]
        by_name = {
            c["scenario"]["payloads"]: c
            for c in doc["cells"]
            if c["scenario"]["algorithm"] == "hss"
        }
        assert by_name["mass:f8,id:u4"]["metrics"]["record_bytes"] == 20
        assert (
            by_name["mass:f8,id:u4"]["metrics"]["net_bytes"]
            > by_name[""]["metrics"]["net_bytes"]
        )
        skipped = [c for c in doc["cells"] if c["status"] == "skipped"]
        assert len(skipped) == 1
        assert skipped[0]["scenario"]["algorithm"] == "bitonic"
        assert "does not support payloads" in skipped[0]["reason"]

    def test_bad_algorithm_exits_2(self, capsys):
        code = main(
            ["sweep", "--algorithms", "quicksort", "--workloads", "uniform"]
        )
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_bad_procs_exits_2(self, capsys):
        code = main(
            ["sweep", "--algorithms", "hss", "--workloads", "uniform",
             "-p", "four"]
        )
        assert code == 2
        assert "bad -p/-n" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        code = main(
            ["sweep", "--algorithms", "hss", "--workloads", "uniform",
             "--jobs", "0"]
        )
        assert code == 2
        assert "--jobs" in capsys.readouterr().err


class TestBackendsCommand:
    def test_lists_registered_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "simulated" in out and "process" in out
        assert "(default)" in out


class TestBackendFlag:
    def test_sort_on_process_backend_reports_measured_wall(self, capsys):
        code = main(
            ["sort", "-p", "4", "-n", "400", "--backend", "process",
             "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measured wall" in out
        assert "'process' (2 workers" in out
        assert "modeled makespan" in out  # both sides of the story

    def test_sort_simulated_prints_no_measured_line(self, capsys):
        code = main(["sort", "-p", "4", "-n", "400"])
        out = capsys.readouterr().out
        assert code == 0
        assert "measured wall" not in out

    def test_unknown_backend_exits_2(self, capsys):
        assert main(["sort", "--backend", "quantum"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_invalid_workers_exits_2(self, capsys):
        code = main(["sort", "--backend", "process", "--workers", "0"])
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_sweep_backend_lands_in_document(self, tmp_path):
        import json

        out = tmp_path / "experiment.json"
        code = main(
            ["sweep", "--algorithms", "hss", "--workloads", "uniform",
             "-p", "4", "-n", "300", "--backend", "process",
             "--json", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["grid"]["backend"] == "process"
        assert all(
            c["scenario"]["backend"] == "process" for c in data["cells"]
        )

    def test_sweep_unknown_backend_exits_2(self, capsys):
        code = main(
            ["sweep", "--algorithms", "hss", "--workloads", "uniform",
             "--backend", "quantum"]
        )
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err


class TestBenchBackendFlag:
    def test_backend_override_recorded_in_params(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--tier", "quick", "--suite", "ablation_approx",
             "--backend", "process", "--json", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        (suite,) = data["suites"]
        assert suite["params"]["backend"] == "process"

    def test_unknown_backend_exits_2(self, capsys):
        code = main(
            ["bench", "--tier", "quick", "--suite", "shootout",
             "--backend", "quantum"]
        )
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_backend_without_supporting_suite_exits_2(self, capsys):
        code = main(
            ["bench", "--tier", "quick", "--suite", "fig_3_1",
             "--backend", "process"]
        )
        assert code == 2
        assert "runtime param" in capsys.readouterr().err

    def test_backend_rejected_with_candidate(self, tmp_path, capsys):
        # A real (tiny) document, so rejection is about the flag, not the
        # file.
        doc = tmp_path / "doc.json"
        assert main(
            ["bench", "--tier", "quick", "--suite", "table_5_1",
             "--json", str(doc)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["bench", "--baseline", str(doc),
             "--candidate", str(doc), "--backend", "process"]
        )
        assert code == 2
        assert "--backend have no effect" in capsys.readouterr().err


class TestBenchSuiteGlobs:
    def test_glob_runs_matching_suites(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--tier", "quick", "--suite", "table_*",
             "--json", str(out)]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert [run["suite"] for run in data["suites"]] == [
            "table_5_1",
            "table_6_1",
        ]

    def test_glob_matching_nothing_exits_2(self, capsys):
        code = main(["bench", "--tier", "quick", "--suite", "nope_*"])
        assert code == 2
        assert "matches no registered suite" in capsys.readouterr().err


class TestExecutionOptionAgreement:
    """The shared --machine/--backend/--workers/--payloads flags.

    Satellite pin: the execution options are defined once
    (cli._EXECUTION_OPTIONS) and attached through one parent parser, so
    every subcommand exposing a flag must show the *same* spelling,
    metavar, value type and help text.  If this test fails, someone
    re-declared a shared flag locally instead of extending the table.
    """

    COMMANDS = ("sort", "sweep", "bench", "serve", "calibrate")
    FLAGS = (
        "--machine", "--backend", "--workers", "--payloads", "--chaos",
        "--trace",
    )

    @staticmethod
    def _subparsers():
        import argparse

        parser = build_parser()
        action = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        return action.choices

    def _actions_for(self, flag):
        found = {}
        for command, sub in self._subparsers().items():
            if command not in self.COMMANDS:
                continue
            for action in sub._actions:
                if flag in action.option_strings:
                    found[command] = action
        return found

    @pytest.mark.parametrize("flag", FLAGS)
    def test_help_text_agrees(self, flag):
        found = self._actions_for(flag)
        assert found, f"{flag} defined by no subcommand"
        for attr in ("help", "metavar", "type"):
            values = {getattr(a, attr) for a in found.values()}
            assert len(values) == 1, (
                f"{flag} {attr} drifted across {sorted(found)}: {values}"
            )

    def test_expected_subcommand_coverage(self):
        coverage = {
            flag: set(self._actions_for(flag)) for flag in self.FLAGS
        }
        assert coverage["--backend"] == {
            "sort", "sweep", "bench", "serve", "calibrate"
        }
        assert coverage["--machine"] == {"sort", "serve"}
        assert coverage["--payloads"] == {"sort", "sweep"}
        assert coverage["--workers"] == {"sort", "calibrate"}
        assert coverage["--chaos"] == {"sort", "sweep"}
        assert coverage["--trace"] == {"sort", "sweep", "serve"}

    def test_defaults_are_per_command(self):
        # Defaults intentionally differ (sort runs on 'laptop'; serve
        # injects nothing so each job's own scenario wins).
        machine = self._actions_for("--machine")
        assert machine["sort"].default == "laptop"
        assert machine["serve"].default is None
        backend = self._actions_for("--backend")
        assert backend["sort"].default == "simulated"
        assert backend["bench"].default is None


class TestServeCommand:
    def _serve(self, lines, argv=(), monkeypatch=None):
        import io
        import json
        import sys as _sys

        monkeypatch.setattr(
            _sys, "stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        code = main(["serve", *argv])
        return code

    def test_stream_repeat_job_hits_cache(self, capsys, monkeypatch):
        import json

        job = json.dumps({
            "id": "a", "scenario": {
                "algorithm": "hss", "workload": "uniform",
                "procs": 4, "keys_per_rank": 1500,
            },
        })
        code = self._serve([job, job], monkeypatch=monkeypatch)
        out, err = capsys.readouterr().out, capsys.readouterr().err
        assert code == 0
        replies = [json.loads(line) for line in out.splitlines()]
        assert [r["status"] for r in replies] == ["ok", "ok"]
        assert replies[0]["cache"]["hit"] is False
        # Adjacent same-fingerprint jobs batch: the repeat warm-chains.
        assert replies[1]["cache"]["hit"] is True
        assert replies[1]["cache"]["source"] == "batch"
        assert (
            replies[1]["metrics"]["rounds"] < replies[0]["metrics"]["rounds"]
        )

    def test_malformed_job_replies_error_and_exit_0(self, capsys, monkeypatch):
        import json

        code = self._serve(["not json at all"], monkeypatch=monkeypatch)
        assert code == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["status"] == "error"
        assert reply["error"]["type"] == "JobError"

    def test_service_defaults_injected(self, capsys, monkeypatch):
        import json

        job = json.dumps({
            "id": "m", "scenario": {
                "algorithm": "hss", "workload": "uniform",
                "procs": 4, "keys_per_rank": 800,
            },
        })
        code = self._serve(
            [job], argv=["--machine", "cloud-ethernet"],
            monkeypatch=monkeypatch,
        )
        assert code == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["scenario"]["machine"] == "cloud-ethernet"

    def test_unknown_machine_exits_2(self, capsys, monkeypatch):
        code = self._serve(
            [], argv=["--machine", "nope"], monkeypatch=monkeypatch
        )
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_bad_cache_capacity_exits_2(self, capsys, monkeypatch):
        code = self._serve(
            [], argv=["--cache-capacity", "0"], monkeypatch=monkeypatch
        )
        assert code == 2
        assert "capacity" in capsys.readouterr().err


class TestCalibrateCommand:
    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro.machines import MACHINES

        before = dict(MACHINES)
        yield
        MACHINES.clear()
        MACHINES.update(before)

    def test_dry_run_prints_doe_table(self, capsys):
        code = main(["calibrate", "--dry-run", "--profile", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "c00/hss/uniform/p4/n1000/key" in out
        assert "(key-only)" in out

    def test_unknown_profile_exits_2(self, capsys):
        code = main(["calibrate", "--profile", "nope"])
        assert code == 2
        assert "unknown DoE profile" in capsys.readouterr().err

    def test_bad_trim_exits_2(self, capsys):
        code = main(
            ["calibrate", "--profile", "tiny", "--repeats", "1",
             "--trim", "1"]
        )
        assert code == 2
        assert "trim" in capsys.readouterr().err

    def test_simulated_backend_exits_2(self, capsys):
        code = main(
            ["calibrate", "--profile", "tiny", "--backend", "simulated",
             "--repeats", "1", "--warmup", "0"]
        )
        assert code == 2
        assert "measuring backend" in capsys.readouterr().err

    def test_full_run_registers_and_writes_spec(self, capsys, tmp_path):
        import json

        from repro.machines import MachineSpec, resolve_machine

        out = tmp_path / "local.json"
        code = main(
            ["calibrate", "--profile", "tiny", "--repeats", "1",
             "--warmup", "0", "--out", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "fitted constants:" in stdout
        assert "total |measured - modeled|" in stdout
        assert "registered machine 'local-calibrated'" in stdout
        # The spec resolves in-process and round-trips through the file.
        spec = resolve_machine("local-calibrated")
        data = json.loads(out.read_text())
        assert MachineSpec.from_dict(data).name == "local-calibrated"
        assert data["provenance"]["profile"] == "tiny"
        assert data["provenance"]["backend"] == "thread"
        # `repro sweep --machines local-calibrated` accepts the result.
        code = main(
            ["sweep", "--algorithms", "hss", "--workloads", "uniform",
             "--machines", "local-calibrated", "-p", "4", "-n", "200"]
        )
        assert code == 0
        assert spec.gamma_compare >= 0.0
