"""Tests for the bench JSON schema: round-trip, validation, provenance."""

import numpy as np
import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchDocument,
    CaseResult,
    SchemaError,
    SuiteRun,
    machine_provenance,
    strip_volatile,
    validate_document,
)


def sample_document() -> BenchDocument:
    return BenchDocument(
        tier="quick",
        suites=[
            SuiteRun(
                suite="demo",
                tier="quick",
                params={"procs": 8, "eps": 0.05},
                cases=[
                    CaseResult(
                        name="uniform/hss",
                        params={"workload": "uniform", "algorithm": "hss"},
                        metrics={
                            "makespan_s": 1.5e-3,
                            "net_bytes": 123456,
                            "imbalance": 1.02,
                            "all_finalized": True,
                        },
                        wall_s=0.01,
                    ),
                    CaseResult(name="uniform/radix", metrics={"net_bytes": 9}),
                ],
                wall_s=0.02,
                worker={"pid": 4242, "jobs": 2},
            )
        ],
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        doc = sample_document()
        back = BenchDocument.from_json(doc.to_json())
        assert back.to_dict() == doc.to_dict()
        assert back.tier == "quick"
        case = back.suite("demo").case("uniform/hss")
        assert case.metrics["net_bytes"] == 123456
        assert case.metrics["all_finalized"] is True
        assert case.params["algorithm"] == "hss"

    def test_save_load(self, tmp_path):
        path = tmp_path / "bench.json"
        doc = sample_document()
        doc.save(path)
        assert BenchDocument.load(path).to_dict() == doc.to_dict()

    def test_numpy_scalars_are_coerced(self):
        case = CaseResult(
            name="x",
            params={"p": np.int64(8)},
            metrics={"v": np.float64(1.5), "n": np.int32(7), "b": np.bool_(True)},
        )
        data = case.to_dict()
        # np.float64 already subclasses float; the exotic ones must coerce.
        assert type(data["params"]["p"]) is int
        assert isinstance(data["metrics"]["v"], float)
        assert type(data["metrics"]["n"]) is int
        assert data["metrics"]["b"] in (True, 1)
        # The coerced dict must be JSON-serializable end to end — including
        # numpy scalars handed in as *suite* params (e.g. runner overrides).
        doc = BenchDocument(
            tier="quick",
            suites=[
                SuiteRun(
                    "s", "quick", params={"procs": np.int64(8)}, cases=[case]
                )
            ],
        )
        back = BenchDocument.from_json(doc.to_json())
        assert back.suite("s").params["procs"] == 8

    def test_provenance_recorded(self):
        doc = sample_document()
        prov = doc.provenance
        assert prov["python"] and prov["numpy"] and prov["platform"]
        assert machine_provenance().keys() == prov.keys()


class TestWorkerProvenance:
    def test_worker_round_trips(self):
        doc = sample_document()
        back = BenchDocument.from_json(doc.to_json())
        assert back.suite("demo").worker == {"pid": 4242, "jobs": 2}

    def test_worker_is_optional_for_old_documents(self):
        data = sample_document().to_dict()
        del data["suites"][0]["worker"]
        assert validate_document(data) == []
        back = BenchDocument.from_dict(data)
        assert back.suite("demo").worker == {}

    def test_non_object_worker_rejected(self):
        data = sample_document().to_dict()
        data["suites"][0]["worker"] = "pid 7"
        assert any("worker" in err for err in validate_document(data))

    def test_strip_volatile_drops_host_fields_only(self):
        doc = sample_document()
        stripped = strip_volatile(doc.to_dict())
        assert "provenance" not in stripped
        assert "created_unix" not in stripped
        assert "wall_s" not in stripped
        suite = stripped["suites"][0]
        assert "worker" not in suite and "wall_s" not in suite
        assert all("wall_s" not in case for case in suite["cases"])
        # ... while the deterministic payload survives intact.
        assert suite["cases"][0]["metrics"]["net_bytes"] == 123456
        assert stripped["schema_version"] == SCHEMA_VERSION
        assert doc.modeled_dict() == stripped


class TestValidation:
    def test_valid_document_has_no_errors(self):
        assert validate_document(sample_document().to_dict()) == []

    def test_non_object_rejected(self):
        assert validate_document([1, 2]) != []
        assert validate_document("nope") != []

    def test_missing_keys_reported(self):
        errors = validate_document({"tier": "quick"})
        assert any("schema_version" in e for e in errors)
        assert any("suites" in e for e in errors)

    def test_wrong_version_rejected(self):
        data = sample_document().to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in e for e in validate_document(data))
        with pytest.raises(SchemaError):
            BenchDocument.from_dict(data)

    def test_duplicate_case_names_rejected(self):
        data = sample_document().to_dict()
        cases = data["suites"][0]["cases"]
        cases.append(dict(cases[0]))
        assert any("duplicate case" in e for e in validate_document(data))

    def test_non_numeric_metric_rejected(self):
        data = sample_document().to_dict()
        data["suites"][0]["cases"][0]["metrics"]["bad"] = "fast"
        assert any("bad" in e for e in validate_document(data))

    def test_invalid_json_text(self):
        with pytest.raises(SchemaError):
            BenchDocument.from_json("{not json")


class TestAccessors:
    def test_suite_and_case_lookup_errors(self):
        doc = sample_document()
        with pytest.raises(KeyError):
            doc.suite("absent")
        with pytest.raises(KeyError):
            doc.suite("demo").case("absent")

    def test_algorithms_collected_from_params(self):
        assert sample_document().algorithms() == {"hss"}


class TestMachineBlock:
    def test_machine_round_trips(self):
        doc = sample_document()
        doc.suites[0].machine = {
            "name": "laptop", "topology": "fully-connected",
            "cores_per_node": 8,
        }
        back = BenchDocument.from_json(doc.to_json())
        assert back.suites[0].machine == doc.suites[0].machine

    def test_machine_is_optional_for_old_documents(self):
        data = sample_document().to_dict()
        del data["suites"][0]["machine"]
        assert validate_document(data) == []
        assert BenchDocument.from_dict(data).suites[0].machine == {}

    def test_non_object_machine_rejected(self):
        data = sample_document().to_dict()
        data["suites"][0]["machine"] = "laptop"
        assert any("machine" in e for e in validate_document(data))

    def test_machine_survives_strip_volatile(self):
        data = sample_document().to_dict()
        data["suites"][0]["machine"] = {"name": "laptop"}
        stripped = strip_volatile(data)
        assert stripped["suites"][0]["machine"] == {"name": "laptop"}
