"""Tests for the suite runner: determinism, document assembly, rendering."""

import pytest

from repro.bench.report import render_document, render_suite
from repro.bench.runner import resolve_suites, run_suite, run_suites
from repro.bench.schema import validate_document
from repro.errors import ConfigError

# A deliberately tiny shootout: two algorithms, one workload, 4 ranks.
TINY_SHOOTOUT = {
    "procs": 4,
    "keys_per_rank": 200,
    "workloads": ["uniform"],
    "algorithms": ["hss", "sample-regular"],
}


def strip_volatile(doc_dict):
    """Drop the fields allowed to differ between identical runs."""
    doc_dict = dict(doc_dict)
    doc_dict.pop("created_unix", None)
    doc_dict.pop("provenance", None)
    doc_dict.pop("wall_s", None)
    suites = []
    for run in doc_dict["suites"]:
        run = dict(run)
        run.pop("wall_s", None)
        run["cases"] = [
            {k: v for k, v in case.items() if k != "wall_s"}
            for case in run["cases"]
        ]
        suites.append(run)
    doc_dict["suites"] = suites
    return doc_dict


class TestDeterminism:
    def test_same_seed_identical_json_modulo_wall_clock(self):
        docs = [
            run_suites(
                ["shootout", "table_5_1"],
                tier="quick",
                overrides={"shootout": TINY_SHOOTOUT},
            )
            for _ in range(2)
        ]
        a, b = (strip_volatile(d.to_dict()) for d in docs)
        assert a == b
        # ... and the volatile fields are genuinely present/populated.
        assert docs[0].created_unix > 0
        assert docs[0].provenance["python"]

    def test_rendering_is_a_pure_function_of_cases(self):
        run1 = run_suite("shootout", "quick", overrides=TINY_SHOOTOUT)
        run2 = run_suite("shootout", "quick", overrides=TINY_SHOOTOUT)
        assert render_suite(run1) == render_suite(run2)
        assert "workload: uniform" in render_suite(run1)


class TestDocument:
    def test_document_is_schema_valid(self):
        doc = run_suites(
            ["shootout"], tier="quick", overrides={"shootout": TINY_SHOOTOUT}
        )
        assert validate_document(doc.to_dict()) == []
        assert doc.suite_names() == ["shootout"]
        assert doc.suite("shootout").tier == "quick"
        assert doc.algorithms() == {"hss", "sample-regular"}

    def test_progress_callback_invoked(self):
        lines = []
        run_suites(["table_5_1"], tier="quick", progress=lines.append)
        assert any("table_5_1" in line for line in lines)

    def test_summary_render_mentions_every_suite(self):
        doc = run_suites(["table_5_1"], tier="quick")
        text = render_document(doc)
        assert "table_5_1" in text and "tier=quick" in text


class TestResolution:
    def test_default_is_all_suites(self):
        assert resolve_suites(None) == resolve_suites([]) != []

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="quicksort"):
            resolve_suites(["quicksort"])

    def test_subset_preserves_registry_order_and_dedupes(self):
        assert resolve_suites(["table_5_1", "fig_3_1", "table_5_1"]) == [
            "fig_3_1",
            "table_5_1",
        ]
