"""Tests for the suite runner: determinism, parallelism, document assembly."""

import os

import pytest

from repro.bench.report import render_document, render_suite
from repro.bench.runner import (
    ParallelRunner,
    resolve_suites,
    run_suite,
    run_suites,
)
from repro.bench.schema import strip_volatile, validate_document
from repro.errors import ConfigError

# A deliberately tiny shootout: two algorithms, one workload, 4 ranks.
TINY_SHOOTOUT = {
    "procs": 4,
    "keys_per_rank": 200,
    "workloads": ["uniform"],
    "algorithms": ["hss", "sample-regular"],
}


class TestDeterminism:
    def test_same_seed_identical_json_modulo_wall_clock(self):
        docs = [
            run_suites(
                ["shootout", "table_5_1"],
                tier="quick",
                overrides={"shootout": TINY_SHOOTOUT},
            )
            for _ in range(2)
        ]
        a, b = (strip_volatile(d.to_dict()) for d in docs)
        assert a == b
        # ... and the volatile fields are genuinely present/populated.
        assert docs[0].created_unix > 0
        assert docs[0].provenance["python"]

    def test_rendering_is_a_pure_function_of_cases(self):
        run1 = run_suite("shootout", "quick", overrides=TINY_SHOOTOUT)
        run2 = run_suite("shootout", "quick", overrides=TINY_SHOOTOUT)
        assert render_suite(run1) == render_suite(run2)
        assert "workload: uniform" in render_suite(run1)


class TestDocument:
    def test_document_is_schema_valid(self):
        doc = run_suites(
            ["shootout"], tier="quick", overrides={"shootout": TINY_SHOOTOUT}
        )
        assert validate_document(doc.to_dict()) == []
        assert doc.suite_names() == ["shootout"]
        assert doc.suite("shootout").tier == "quick"
        assert doc.algorithms() == {"hss", "sample-regular"}

    def test_progress_callback_invoked(self):
        lines = []
        run_suites(["table_5_1"], tier="quick", progress=lines.append)
        assert any("table_5_1" in line for line in lines)

    def test_summary_render_mentions_every_suite(self):
        doc = run_suites(["table_5_1"], tier="quick")
        text = render_document(doc)
        assert "table_5_1" in text and "tier=quick" in text


class TestResolution:
    def test_default_is_all_suites(self):
        assert resolve_suites(None) == resolve_suites([]) != []

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="quicksort"):
            resolve_suites(["quicksort"])

    def test_subset_preserves_registry_order_and_dedupes(self):
        assert resolve_suites(["table_5_1", "fig_3_1", "table_5_1"]) == [
            "fig_3_1",
            "table_5_1",
        ]

    def test_stress_tier_narrows_default_selection(self):
        stress = resolve_suites(None, "stress")
        assert len(stress) >= 4
        assert set(stress) < set(resolve_suites(None))

    def test_stress_tier_rejects_explicit_non_stress_suite(self):
        with pytest.raises(ConfigError, match="do not define tier 'stress'"):
            resolve_suites(["table_5_1"], "stress")

    def test_quick_tier_keeps_full_selection(self):
        assert resolve_suites(None, "quick") == resolve_suites(None)


class TestGlobResolution:
    def test_glob_selects_matching_suites(self):
        assert resolve_suites(["fig_*"]) == [
            "fig_3_1",
            "fig_4_1",
            "fig_6_1",
            "fig_6_2",
        ]

    def test_glob_and_exact_names_combine(self):
        assert resolve_suites(["table_*", "shootout"]) == [
            "shootout",
            "table_5_1",
            "table_6_1",
        ]

    def test_question_mark_and_charset_patterns(self):
        assert resolve_suites(["table_?_1"]) == ["table_5_1", "table_6_1"]
        assert resolve_suites(["fig_[34]_1"]) == ["fig_3_1", "fig_4_1"]

    def test_pattern_matching_nothing_is_an_error(self):
        with pytest.raises(ConfigError, match="matches no registered"):
            resolve_suites(["nope_*"])

    def test_glob_narrows_to_tier_defining_matches(self):
        # 'ablation_*' matches five suites; only some define stress.
        stress = resolve_suites(["ablation_*"], "stress")
        assert stress
        assert all(s.startswith("ablation_") for s in stress)
        assert set(stress) < set(resolve_suites(["ablation_*"]))

    def test_glob_with_no_tier_matches_is_an_error(self):
        # fig_6_* matches fig_6_1/fig_6_2, neither of which defines stress.
        with pytest.raises(ConfigError, match="none define tier 'stress'"):
            resolve_suites(["fig_6_*"], "stress")

    def test_exact_name_still_rejected_when_tier_missing(self):
        # Globs narrow silently, but an explicit name stays a hard error.
        with pytest.raises(ConfigError, match="do not define tier 'stress'"):
            resolve_suites(["fig_*", "table_5_1"], "stress")


class TestParallelRunner:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError, match="jobs"):
            ParallelRunner(0)

    def test_parallel_modeled_document_identical_to_serial(self):
        names = ["shootout", "table_5_1", "fig_3_1"]
        overrides = {"shootout": TINY_SHOOTOUT}
        serial = run_suites(names, tier="quick", overrides=overrides, jobs=1)
        parallel = run_suites(names, tier="quick", overrides=overrides, jobs=3)
        assert serial.modeled_dict() == parallel.modeled_dict()
        # Suites land in registry order regardless of completion order.
        assert parallel.suite_names() == serial.suite_names()

    def test_worker_provenance_recorded(self):
        serial = run_suites(["table_5_1"], tier="quick", jobs=1)
        run = serial.suite("table_5_1")
        assert run.worker["pid"] == os.getpid()
        assert run.worker["jobs"] == 1

        parallel = run_suites(
            ["table_5_1", "fig_3_1"], tier="quick", jobs=2
        )
        for suite_run in parallel.suites:
            assert suite_run.worker["jobs"] == 2
            assert suite_run.worker["pid"] != os.getpid()

    def test_worker_block_is_volatile(self):
        doc = run_suites(["table_5_1"], tier="quick", jobs=1)
        stripped = strip_volatile(doc.to_dict())
        assert "worker" not in stripped["suites"][0]
        assert "wall_s" not in stripped["suites"][0]

    def test_single_suite_with_many_jobs_runs_inline(self):
        doc = ParallelRunner(8).run(["table_5_1"], tier="quick")
        assert doc.suite("table_5_1").worker["pid"] == os.getpid()

    def test_progress_reports_worker_fanout(self):
        lines = []
        run_suites(
            ["table_5_1", "fig_3_1"],
            tier="quick",
            jobs=2,
            progress=lines.append,
        )
        assert any("2 worker processes" in line for line in lines)


class TestMachineProvenance:
    def test_suites_with_machines_record_the_resolved_block(self):
        doc = run_suites(
            ["shootout"], tier="quick", overrides={"shootout": TINY_SHOOTOUT}
        )
        run = doc.suite("shootout")
        # The shootout prices on a flattened Mira: the block records the
        # resolution *with* overrides applied, not the raw preset.
        assert run.machine == {
            "name": "mira-like-bgq",
            "topology": "torus",
            "cores_per_node": 1,
        }

    def test_machine_block_defaults_for_machineless_suites(self):
        doc = run_suites(["table_5_1"], tier="quick")
        assert doc.suite("table_5_1").machine == {}

    def test_machine_block_is_deterministic_not_volatile(self):
        doc = run_suites(
            ["shootout"], tier="quick", overrides={"shootout": TINY_SHOOTOUT}
        )
        stripped = strip_volatile(doc.to_dict())
        assert stripped["suites"][0]["machine"]["name"] == "mira-like-bgq"
