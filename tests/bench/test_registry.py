"""Tests for the benchmark suite registry."""

import pytest

from repro.bench.registry import KNOWN_TIERS, TIERS, get_suite, suite_names
from repro.errors import ConfigError

EXPECTED_SUITES = {
    "shootout",
    "shootout_records",
    "fig_3_1",
    "fig_4_1",
    "fig_6_1",
    "fig_6_2",
    "table_5_1",
    "table_6_1",
    "ablation_approx",
    "ablation_duplicates",
    "ablation_node",
    "ablation_refinement",
    "ablation_rounds",
    "service_latency",
    "chaos_resilience",
    "calibration_quality",
}


class TestContents:
    def test_every_paper_artifact_registered(self):
        assert set(suite_names()) == EXPECTED_SUITES

    def test_each_suite_has_required_tiers(self):
        for name in suite_names():
            bench = get_suite(name)
            assert set(TIERS) <= set(bench.tiers), name
            assert set(bench.tiers) <= set(KNOWN_TIERS), name
            for tier in bench.tiers:
                assert bench.tiers[tier], f"{name}/{tier} has empty params"

    def test_tier_params_share_keys(self):
        # Every tier must be a re-parameterization of full, never a
        # different shape.
        for name in suite_names():
            bench = get_suite(name)
            for tier in bench.tiers:
                assert set(bench.tiers[tier]) == set(bench.tiers["full"]), (
                    f"{name}/{tier}"
                )

    def test_stress_tier_is_registered_at_scale(self):
        """≥4 suites opt into stress, each scaling the largest problem
        dimension beyond both quick (≥4x) and full."""

        def scale(params):
            # The dominant size knob per suite: total simulated keys.
            procs = params.get("procs") or max(
                params.get("ps", params.get("measured_ps", [1]))
            )
            keys = (
                params.get("keys_per_proc")
                or params.get("keys_per_rank")
                or params.get("keys_per_core")
                or 1
            )
            return procs * keys

        stress = suite_names("stress")
        assert len(stress) >= 4
        for name in stress:
            bench = get_suite(name)
            assert scale(bench.tiers["stress"]) >= 4 * scale(bench.tiers["quick"])
            assert scale(bench.tiers["stress"]) > scale(bench.tiers["full"])

    def test_descriptions_and_kinds(self):
        kinds = {
            "shootout",
            "figure",
            "table",
            "ablation",
            "service",
            "chaos",
            "calibration",
        }
        for name in suite_names():
            bench = get_suite(name)
            assert bench.description
            assert bench.kind in kinds
            assert bench.artifact  # text artifact stem

    def test_artifacts_unique(self):
        artifacts = [get_suite(n).artifact for n in suite_names()]
        assert len(artifacts) == len(set(artifacts))


class TestResolution:
    def test_unknown_suite_raises(self):
        with pytest.raises(ConfigError, match="unknown benchmark suite"):
            get_suite("quicksort")

    def test_unknown_tier_raises(self):
        with pytest.raises(ConfigError, match="no tier"):
            get_suite("table_5_1").params_for("huge")

    def test_unknown_override_raises(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            get_suite("table_5_1").params_for("quick", {"bogus": 1})

    def test_override_applies(self):
        params = get_suite("table_5_1").params_for("quick", {"procs": 1000})
        assert params["procs"] == 1000

    def test_runtime_param_absent_unless_overridden(self):
        # The backend knob must not leak into default params — committed
        # baselines are byte-identical to a registry that never heard of
        # runtime params.
        suite = get_suite("shootout")
        assert "backend" in suite.runtime_params
        assert "backend" not in suite.params_for("quick")

    def test_runtime_param_override_accepted(self):
        params = get_suite("shootout").params_for(
            "quick", {"backend": "process"}
        )
        assert params["backend"] == "process"

    def test_runtime_param_unknown_elsewhere(self):
        # Suites that never declared the knob still reject it.
        with pytest.raises(ConfigError, match="unknown parameter"):
            get_suite("table_5_1").params_for("quick", {"backend": "process"})
