"""Tests for the benchmark suite registry."""

import pytest

from repro.bench.registry import TIERS, get_suite, suite_names
from repro.errors import ConfigError

EXPECTED_SUITES = {
    "shootout",
    "fig_3_1",
    "fig_4_1",
    "fig_6_1",
    "fig_6_2",
    "table_5_1",
    "table_6_1",
    "ablation_approx",
    "ablation_duplicates",
    "ablation_node",
    "ablation_refinement",
    "ablation_rounds",
}


class TestContents:
    def test_every_paper_artifact_registered(self):
        assert set(suite_names()) == EXPECTED_SUITES

    def test_each_suite_has_both_tiers(self):
        for name in suite_names():
            bench = get_suite(name)
            assert set(bench.tiers) == set(TIERS), name
            for tier in TIERS:
                assert bench.tiers[tier], f"{name}/{tier} has empty params"

    def test_tier_params_share_keys(self):
        # quick must be a re-parameterization of full, never a different shape.
        for name in suite_names():
            bench = get_suite(name)
            assert set(bench.tiers["quick"]) == set(bench.tiers["full"]), name

    def test_descriptions_and_kinds(self):
        kinds = {"shootout", "figure", "table", "ablation"}
        for name in suite_names():
            bench = get_suite(name)
            assert bench.description
            assert bench.kind in kinds
            assert bench.artifact  # text artifact stem

    def test_artifacts_unique(self):
        artifacts = [get_suite(n).artifact for n in suite_names()]
        assert len(artifacts) == len(set(artifacts))


class TestResolution:
    def test_unknown_suite_raises(self):
        with pytest.raises(ConfigError, match="unknown benchmark suite"):
            get_suite("quicksort")

    def test_unknown_tier_raises(self):
        with pytest.raises(ConfigError, match="no tier"):
            get_suite("table_5_1").params_for("huge")

    def test_unknown_override_raises(self):
        with pytest.raises(ConfigError, match="unknown parameter"):
            get_suite("table_5_1").params_for("quick", {"bogus": 1})

    def test_override_applies(self):
        params = get_suite("table_5_1").params_for("quick", {"procs": 1000})
        assert params["procs"] == 1000
