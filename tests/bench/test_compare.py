"""Tests for the regression gate (compare.py pass/fail behaviour)."""

from repro.bench.compare import (
    DEFAULT_TOLERANCES,
    compare_documents,
)
from repro.bench.report import render_comparison
from repro.bench.schema import BenchDocument, CaseResult, SuiteRun


def make_doc(makespan=1.0, nbytes=1000, extra_case=False, extra_suite=False,
             imbalance=1.05):
    cases = [
        CaseResult(
            name="uniform/hss",
            params={"algorithm": "hss"},
            metrics={
                "makespan_s": makespan,
                "net_bytes": nbytes,
                "imbalance": imbalance,
                "all_finalized": True,
            },
        )
    ]
    if extra_case:
        cases.append(CaseResult(name="uniform/radix", metrics={"net_bytes": 5}))
    suites = [SuiteRun(suite="shootout", tier="quick", cases=cases)]
    if extra_suite:
        suites.append(SuiteRun(suite="fig_3_1", tier="quick", cases=[]))
    return BenchDocument(tier="quick", suites=suites)


class TestPassFail:
    def test_identical_documents_pass(self):
        report = compare_documents(make_doc(), make_doc())
        assert report.ok
        assert report.checked == 2  # makespan_s + net_bytes gated
        assert not report.regressions

    def test_within_tolerance_passes(self):
        report = compare_documents(make_doc(1.0), make_doc(1.09))
        assert report.ok

    def test_makespan_beyond_tolerance_fails(self):
        report = compare_documents(make_doc(1.0), make_doc(1.11))
        assert not report.ok
        (reg,) = report.regressions
        assert reg.metric == "makespan_s"
        assert reg.ratio > 1.1

    def test_double_makespan_fails(self):
        # The acceptance scenario: synthetic 2x inflation must gate.
        report = compare_documents(make_doc(1.0), make_doc(2.0))
        assert not report.ok

    def test_bytes_tolerance_is_tighter(self):
        assert DEFAULT_TOLERANCES["net_bytes"] == 0.05
        assert compare_documents(make_doc(nbytes=1000), make_doc(nbytes=1049)).ok
        assert not compare_documents(
            make_doc(nbytes=1000), make_doc(nbytes=1060)
        ).ok

    def test_improvement_never_fails(self):
        report = compare_documents(make_doc(1.0, 1000), make_doc(0.5, 100))
        assert report.ok
        assert len(report.improvements) == 2

    def test_ungated_metric_drift_is_informational(self):
        report = compare_documents(
            make_doc(imbalance=1.01), make_doc(imbalance=1.9)
        )
        assert report.ok
        assert any(d.metric == "imbalance" and not d.gated for d in report.deltas)

    def test_custom_tolerance_overrides_default(self):
        report = compare_documents(
            make_doc(1.0), make_doc(1.5), tolerances={"makespan_s": 0.6}
        )
        assert report.ok


class TestTierMismatch:
    def test_different_tiers_never_compare(self):
        full = make_doc()
        full.tier = "full"
        report = compare_documents(make_doc(), full)
        assert not report.ok
        assert report.tier_mismatch == "quick vs full"
        assert report.checked == 0 and not report.deltas
        assert "INCOMPARABLE" in report.summary()
        assert "quick vs full" in render_comparison(report)


class TestCoverageChanges:
    def test_dropped_gated_metric_fails(self):
        # A candidate that stops emitting a gated metric must not pass.
        candidate = make_doc()
        del candidate.suite("shootout").case("uniform/hss").metrics["makespan_s"]
        report = compare_documents(make_doc(), candidate)
        assert not report.ok
        assert report.missing_metrics == ["shootout/uniform/hss/makespan_s"]
        assert "gated metrics missing" in report.summary()

    def test_dropped_ungated_metric_passes(self):
        candidate = make_doc()
        del candidate.suite("shootout").case("uniform/hss").metrics["imbalance"]
        assert compare_documents(make_doc(), candidate).ok

    def test_missing_case_fails(self):
        report = compare_documents(make_doc(extra_case=True), make_doc())
        assert not report.ok
        assert report.missing_cases == ["shootout/uniform/radix"]

    def test_missing_suite_fails(self):
        report = compare_documents(make_doc(extra_suite=True), make_doc())
        assert not report.ok
        assert report.missing_suites == ["fig_3_1"]

    def test_new_case_is_informational(self):
        report = compare_documents(make_doc(), make_doc(extra_case=True))
        assert report.ok
        assert report.new_cases == ["shootout/uniform/radix"]

    def test_new_suite_is_informational_but_visible(self):
        report = compare_documents(make_doc(), make_doc(extra_suite=True))
        assert report.ok
        assert report.new_suites == ["fig_3_1"]
        assert "fig_3_1" in render_comparison(report)


class TestRendering:
    def test_report_text_states_verdict(self):
        ok = compare_documents(make_doc(), make_doc())
        assert render_comparison(ok).startswith("OK")
        bad = compare_documents(make_doc(1.0), make_doc(2.0))
        text = render_comparison(bad)
        assert "REGRESSION" in text and "makespan_s" in text

    def test_verbose_lists_gated_deltas(self):
        report = compare_documents(make_doc(), make_doc())
        assert "all gated deltas" in render_comparison(report, verbose=True)
