"""Tests for grid expansion, the sweep runner, and the experiment schema."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    EXPERIMENT_SCHEMA_VERSION,
    ExperimentDocument,
    ExperimentRunner,
    ExperimentSchemaError,
    Scenario,
    expand_grid,
    render_experiment,
    run_sweep,
    strip_volatile_experiment,
    validate_experiment,
)

GRID = dict(
    algorithms=["hss", "sample-regular"],
    workloads=["uniform", "staircase"],
    machines=["laptop"],
    procs=4,
    keys_per_rank=200,
    eps=0.1,
    seed=1,
)


@pytest.fixture(scope="module")
def doc():
    return run_sweep(**GRID)


class TestExpandGrid:
    def test_full_cross_product(self):
        cells = expand_grid(**GRID)
        assert len(cells) == 4
        assert all(isinstance(c, Scenario) for c in cells)
        assert len({c.name for c in cells}) == 4

    def test_scalars_promote_to_single_element_axes(self):
        cells = expand_grid(
            algorithms="hss", workloads="uniform", procs=8, keys_per_rank=100
        )
        assert len(cells) == 1 and cells[0].procs == 8

    def test_bad_name_fails_before_anything_runs(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            expand_grid(algorithms=["hss"], workloads=["uniform", "nope"])

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            expand_grid(algorithms=[], workloads=["uniform"])


class TestSweep:
    def test_document_shape(self, doc):
        assert len(doc.cells) == 4
        assert [c.status for c in doc.cells] == ["ok"] * 4
        assert doc.grid["algorithms"] == ["hss", "sample-regular"]
        assert doc.schema_version == EXPERIMENT_SCHEMA_VERSION
        assert validate_experiment(doc.to_dict()) == []

    def test_cells_carry_machine_provenance(self, doc):
        for cell in doc.cells:
            assert cell.machine["name"] == "laptop"
            assert cell.machine["topology"] == "fully-connected"

    def test_parallel_identical_to_serial(self, doc):
        parallel = ExperimentRunner(jobs=2).sweep(**GRID)
        assert json.dumps(
            strip_volatile_experiment(parallel.to_dict()), sort_keys=True
        ) == json.dumps(
            strip_volatile_experiment(doc.to_dict()), sort_keys=True
        )
        # Worker provenance proves the pool actually ran the cells.
        assert all(c.worker["jobs"] == 2 for c in parallel.cells)

    def test_capability_violations_become_skipped_cells(self):
        # hss-node on a flat layout is a capability error, not a crash.
        sweep = run_sweep(
            algorithms=["hss", "hss-node"], workloads=["uniform"],
            procs=4, keys_per_rank=100, layouts="flat",
        )
        by_status = {c.scenario["algorithm"]: c.status for c in sweep.cells}
        assert by_status == {"hss": "ok", "hss-node": "skipped"}
        skipped = sweep.skipped()[0]
        assert "multicore" in skipped.reason
        assert skipped.metrics == {}
        assert validate_experiment(sweep.to_dict()) == []

    def test_node_layout_unlocks_node_algorithms(self):
        sweep = run_sweep(
            algorithms=["hss-node"], workloads=["uniform"],
            machines=["mira-like-bgq"], procs=32, keys_per_rank=100,
            layouts="node",
        )
        (cell,) = sweep.cells
        assert cell.status == "ok"
        assert cell.machine["cores_per_node"] == 16

    def test_json_round_trip(self, doc, tmp_path):
        path = tmp_path / "experiment.json"
        doc.save(path)
        restored = ExperimentDocument.load(path)
        assert strip_volatile_experiment(
            restored.to_dict()
        ) == strip_volatile_experiment(doc.to_dict())
        assert restored.cell(doc.cells[0].name).metrics == doc.cells[0].metrics

    def test_render(self, doc):
        text = render_experiment(doc)
        assert "4 cells (4 ok, 0 skipped)" in text
        assert "machine=laptop  workload=uniform" in text
        assert "sample-regular" in text and "makespan_s" in text


class TestSchemaValidation:
    def test_missing_keys(self):
        errors = validate_experiment({})
        assert any("schema_version" in e for e in errors)
        assert any("cells" in e for e in errors)

    def test_wrong_version(self):
        errors = validate_experiment(
            {"schema_version": 99, "grid": {}, "cells": []}
        )
        assert any("schema_version" in e for e in errors)

    def test_bad_status(self):
        errors = validate_experiment(
            {
                "schema_version": 1,
                "grid": {},
                "cells": [{"scenario": {}, "status": "exploded"}],
            }
        )
        assert any("status" in e for e in errors)

    def test_ok_cell_needs_metrics(self):
        errors = validate_experiment(
            {
                "schema_version": 1,
                "grid": {},
                "cells": [{"scenario": {"algorithm": "hss"}, "status": "ok"}],
            }
        )
        assert any("no metrics" in e for e in errors)

    def test_duplicate_scenarios_flagged(self):
        cell = {
            "scenario": {"algorithm": "hss"},
            "status": "ok",
            "metrics": {"makespan_s": 1.0},
        }
        errors = validate_experiment(
            {"schema_version": 1, "grid": {}, "cells": [cell, dict(cell)]}
        )
        assert any("duplicate" in e for e in errors)

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ExperimentSchemaError, match="schema_version"):
            ExperimentDocument.from_dict({"cells": []})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ExperimentSchemaError, match="JSON"):
            ExperimentDocument.from_json("[not json")


class TestAxisDeduplication:
    def test_repeated_axis_values_collapse(self):
        cells = expand_grid(
            algorithms=["hss", "hss"], workloads=["uniform"],
            procs=[4, 4], keys_per_rank=100,
        )
        assert len(cells) == 1

    def test_deduped_sweep_document_reloads(self, tmp_path):
        # Regression: duplicate axis values used to expand to duplicate
        # cells, producing a document validate_experiment rejects.
        doc = run_sweep(
            algorithms=["hss", "hss"], workloads=["uniform"],
            procs=4, keys_per_rank=100,
        )
        assert validate_experiment(doc.to_dict()) == []
        path = tmp_path / "dedup.json"
        doc.save(path)
        assert len(ExperimentDocument.load(path).cells) == 1
