"""Tests for Scenario: validation, naming, resolution, execution."""

import pytest

from repro.errors import ConfigError
from repro.experiments import Scenario


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            Scenario(algorithm="quantum-sort", workload="uniform")

    def test_unknown_workload(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            Scenario(algorithm="hss", workload="gaussian-blur")

    def test_unknown_machine(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            Scenario(algorithm="hss", workload="uniform", machine="cray-1")

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            Scenario(algorithm="hss", workload="uniform", backend="quantum")

    def test_backend_default_keeps_historical_name(self):
        cell = Scenario(algorithm="hss", workload="uniform", procs=4)
        assert cell.name == "uniform/hss@laptop/flat/p4"
        assert cell.backend == "simulated"

    def test_non_default_backend_lands_in_name_and_dict(self):
        cell = Scenario(
            algorithm="hss", workload="uniform", procs=4, backend="process"
        )
        assert cell.name == "uniform/hss@laptop/flat/p4/process"
        assert Scenario.from_dict(cell.to_dict()) == cell

    def test_old_documents_without_backend_still_load(self):
        data = Scenario(algorithm="hss", workload="uniform").to_dict()
        del data["backend"]
        assert Scenario.from_dict(data).backend == "simulated"

    def test_unknown_layout(self):
        with pytest.raises(ConfigError, match="layout"):
            Scenario(algorithm="hss", workload="uniform", layout="spiral")

    def test_bad_sizes(self):
        with pytest.raises(ConfigError, match="procs"):
            Scenario(algorithm="hss", workload="uniform", procs=0)
        with pytest.raises(ConfigError, match="keys_per_rank"):
            Scenario(algorithm="hss", workload="uniform", keys_per_rank=0)

    def test_alias_machines_accepted(self):
        cell = Scenario(algorithm="hss", workload="uniform", machine="mira")
        assert cell.resolved_machine().name == "mira-like-bgq"


class TestNaming:
    def test_name_encodes_all_axes(self):
        cell = Scenario(
            algorithm="radix", workload="staircase",
            machine="cloud-ethernet", procs=16, layout="node",
        )
        assert cell.name == "staircase/radix@cloud-ethernet/node/p16"

    def test_round_trip(self):
        cell = Scenario(
            algorithm="hss", workload="hotspot", machine="dragonfly-hpc",
            procs=4, keys_per_rank=100, eps=0.1, seed=3, layout="node",
        )
        assert Scenario.from_dict(cell.to_dict()) == cell

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="gpu"):
            Scenario.from_dict(
                {"algorithm": "hss", "workload": "uniform", "gpu": True}
            )

    def test_replace_revalidates(self):
        cell = Scenario(algorithm="hss", workload="uniform")
        assert cell.replace(procs=4).procs == 4
        with pytest.raises(ConfigError):
            cell.replace(machine="not-a-machine")


class TestLayouts:
    def test_flat_forces_single_core_endpoints(self):
        cell = Scenario(
            algorithm="hss", workload="uniform",
            machine="mira-like-bgq", layout="flat",
        )
        assert cell.resolved_machine().cores_per_node == 1

    def test_node_keeps_multicore_structure(self):
        cell = Scenario(
            algorithm="hss", workload="uniform",
            machine="mira-like-bgq", layout="node",
        )
        assert cell.resolved_machine().cores_per_node == 16


class TestRun:
    def test_metrics_and_machine_block(self):
        cell = Scenario(
            algorithm="hss", workload="uniform", machine="laptop",
            procs=4, keys_per_rank=300, eps=0.1, seed=1,
        )
        out = cell.run()
        assert out["scenario"] == cell.to_dict()
        assert out["machine"] == {
            "name": "laptop", "topology": "fully-connected",
            "cores_per_node": 1,
        }
        m = out["metrics"]
        assert m["net_bytes"] > 0 and m["net_messages"] > 0
        assert m["makespan_s"] > 0 and m["imbalance"] >= 1.0
        assert m["rounds"] >= 1 and m["total_sample"] > 0

    def test_non_histogramming_algorithms_omit_round_metrics(self):
        cell = Scenario(
            algorithm="bitonic", workload="uniform", procs=4,
            keys_per_rank=128,
        )
        assert "rounds" not in cell.run()["metrics"]

    def test_deterministic_across_runs(self):
        cell = Scenario(
            algorithm="sample-regular", workload="staircase",
            procs=4, keys_per_rank=200, eps=0.2, seed=7,
        )
        assert cell.run() == cell.run()
