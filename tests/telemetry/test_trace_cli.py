"""The ``--trace`` plumbing and ``repro trace`` viewer, end to end."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def traced_sort(tmp_path, capsys):
    path = tmp_path / "sort-trace.json"
    code = main(
        [
            "sort",
            "--procs",
            "4",
            "--keys",
            "500",
            "--trace",
            str(path),
        ]
    )
    assert code == 0
    capsys.readouterr()
    return path


class TestSortTrace:
    def test_writes_loadable_chrome_trace(self, traced_sort):
        with open(traced_sort) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= set("XiMstfBE")

    def test_sweep_trace_refuses_parallel_jobs(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--algorithms",
                "hss",
                "--workloads",
                "uniform",
                "--procs",
                "2",
                "--keys",
                "300",
                "--jobs",
                "2",
                "--trace",
                str(tmp_path / "t.json"),
            ]
        )
        assert code == 2
        assert "--jobs 1" in capsys.readouterr().err

    def test_unwritable_path_is_exit_2(self, tmp_path, capsys):
        code = main(
            [
                "sort",
                "--procs",
                "4",
                "--keys",
                "500",
                "--trace",
                str(tmp_path / "no-such-dir" / "t.json"),
            ]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestTraceViewer:
    def test_renders_timeline_report(self, traced_sort, capsys):
        assert main(["trace", str(traced_sort)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace: ")
        assert "superstep" in out

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2

    def test_non_trace_json_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}')
        assert main(["trace", str(path)]) == 2

    def test_invalid_events_are_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"ph": "X", "ts": 0, "pid": 1, "tid": 0, "name": "x"}
                    ]
                }
            )
        )
        assert main(["trace", str(path)]) == 2
        assert "missing keys" in capsys.readouterr().err
