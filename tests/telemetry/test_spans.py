"""TraceSink primitives: event shapes, stacks, flows, naming."""

import pytest

from repro.telemetry import (
    MEASURED_PID,
    MODELED_PID,
    SERVICE_PID,
    TraceSink,
)


class TestPidMap:
    def test_fixed_timeline_pids(self):
        # The pid map is part of the file format: saved traces from
        # different versions must land rows in the same places.
        assert (MODELED_PID, MEASURED_PID, SERVICE_PID) == (1, 2, 3)


class TestCompleteEvents:
    def test_complete_span_shape(self):
        sink = TraceSink()
        sink.complete(1, 0, "local sort", "compute", 0.5, 0.25)
        (event,) = sink.events
        assert event["ph"] == "X"
        assert event["name"] == "local sort"
        assert event["cat"] == "compute"
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.25e6)
        assert (event["pid"], event["tid"]) == (1, 0)

    def test_args_attached_only_when_given(self):
        sink = TraceSink()
        sink.complete(1, 0, "a", "compute", 0.0, 1.0)
        sink.complete(1, 0, "b", "compute", 1.0, 1.0, args={"k": 2})
        assert "args" not in sink.events[0]
        assert sink.events[1]["args"] == {"k": 2}

    def test_timestamps_are_microseconds(self):
        sink = TraceSink()
        sink.complete(1, 0, "x", "compute", 2.0, 3.0)
        assert sink.events[0]["ts"] == pytest.approx(2_000_000.0)
        assert sink.events[0]["dur"] == pytest.approx(3_000_000.0)


class TestInstantEvents:
    def test_instant_is_thread_scoped(self):
        sink = TraceSink()
        sink.instant(1, 0, "kill rank 3", "chaos", 0.125)
        (event,) = sink.events
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["ts"] == pytest.approx(125_000.0)


class TestBeginEnd:
    def test_begin_end_collapses_to_complete(self):
        sink = TraceSink()
        sink.begin(3, 0, "run", "service", 1.0)
        sink.end(3, 0, 1.5)
        (event,) = sink.events
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(0.5e6)

    def test_nesting_is_lifo_per_row(self):
        sink = TraceSink()
        sink.begin(3, 0, "outer", "service", 0.0)
        sink.begin(3, 0, "inner", "service", 0.25)
        sink.end(3, 0, 0.5)
        sink.end(3, 0, 1.0)
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["inner"]["dur"] == pytest.approx(0.25e6)
        assert by_name["outer"]["dur"] == pytest.approx(1.0e6)

    def test_unbalanced_end_raises(self):
        sink = TraceSink()
        with pytest.raises(ValueError, match="no open span"):
            sink.end(3, 0, 1.0)

    def test_clock_skew_clamps_to_zero_duration(self):
        sink = TraceSink()
        sink.begin(3, 0, "span", "service", 1.0)
        sink.end(3, 0, 0.5)
        assert sink.events[0]["dur"] == 0.0


class TestMetadata:
    def test_process_and_thread_names_emit_once(self):
        sink = TraceSink()
        for _ in range(3):
            sink.process(1, "modeled")
            sink.thread(1, 0, "cell")
        metadata = [e for e in sink.events if e["ph"] == "M"]
        assert [e["name"] for e in metadata] == [
            "process_name",
            "thread_name",
        ]
        assert metadata[0]["args"] == {"name": "modeled"}

    def test_same_tid_on_other_pid_is_distinct(self):
        sink = TraceSink()
        sink.thread(1, 0, "cell")
        sink.thread(2, 0, "rank 0")
        assert len([e for e in sink.events if e["ph"] == "M"]) == 2


class TestFlow:
    def test_flow_chain_phases(self):
        sink = TraceSink()
        sink.flow(2, 0, "rendezvous", 7, 0.1, "s")
        sink.flow(2, 1, "rendezvous", 7, 0.1, "t")
        sink.flow(2, 2, "rendezvous", 7, 0.1, "f")
        assert [e["ph"] for e in sink.events] == ["s", "t", "f"]
        assert {e["id"] for e in sink.events} == {7}
        # Binding point 'enclosing' keeps arrows inside the wait spans.
        assert all(e["bp"] == "e" for e in sink.events)

    def test_flow_rejects_unknown_phase(self):
        sink = TraceSink()
        with pytest.raises(ValueError, match="flow phase"):
            sink.flow(2, 0, "rendezvous", 7, 0.1, "x")


class TestZeroOverheadContract:
    def test_spans_module_never_reads_a_clock(self):
        # The design rule the whole telemetry plane leans on: emission
        # sites supply every timestamp, so disabled telemetry cannot
        # perturb committed baselines through hidden clock reads.
        import inspect

        import repro.telemetry.spans as spans
        import repro.telemetry.metrics as metrics

        for module in (spans, metrics):
            source = inspect.getsource(module)
            assert "import time" not in source, module.__name__
        assert "perf_counter" not in inspect.getsource(metrics)
