"""Adapters between existing metric surfaces and the telemetry plane.

Covers the replay/live parity guarantee (``Trace.to_spans`` equals what
the resolver emitted during the run), the measured projections, chaos
instants, and the backend-parity + zero-overhead contracts from the
backend registry: every backend's *modeled* span subtree is identical,
and running traced changes nothing about the modeled result.
"""

import pytest

from repro.algorithms import Dataset, Sorter
from repro.chaos.plan import get_fault_plan
from repro.errors import ConfigError
from repro.experiments import ExperimentRunner, Scenario
from repro.runtime import Measured
from repro.telemetry import (
    MEASURED_PID,
    MODELED_PID,
    MetricsRegistry,
    TraceSink,
)
from repro.telemetry.adapters import (
    chaos_plan_to_events,
    emit_rank_segments,
    stats_to_metrics,
)

P = 4
N_PER = 500


def _run(backend="simulated", sink=None, n_per=N_PER):
    dataset = Dataset.from_workload("uniform", p=P, n_per=n_per, seed=5)
    return Sorter("hss", backend=backend, verify=False).run(
        dataset, trace_sink=sink
    )


def _modeled(events):
    """The modeled subtree, stripped of metadata rows."""
    return [
        e for e in events if e["pid"] == MODELED_PID and e["ph"] != "M"
    ]


class TestReplayParity:
    def test_trace_replay_equals_live_emission(self):
        live = TraceSink()
        run = _run(sink=live)
        replayed = run.engine_result.trace.to_spans(TraceSink())
        assert _modeled(replayed.events) == _modeled(live.events)


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_modeled_subtree_matches_simulator(self, backend):
        baseline = TraceSink()
        _run(sink=baseline)
        sink = TraceSink()
        _run(backend=backend, sink=sink)
        assert _modeled(sink.events) == _modeled(baseline.events)

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_real_backends_emit_measured_rank_rows(self, backend):
        sink = TraceSink()
        _run(backend=backend, sink=sink)
        measured = [
            e
            for e in sink.events
            if e["pid"] == MEASURED_PID and e.get("ph") == "X"
        ]
        ranks = {e["tid"] for e in measured}
        assert ranks == set(range(P))
        cats = {e["cat"] for e in measured}
        assert cats == {"compute", "wait"}
        # Wait spans carry the sweep index that flow-connects ranks.
        waits = [e for e in measured if e["cat"] == "wait"]
        assert all("sweep" in e["args"] for e in waits)
        flows = [e for e in sink.events if e["ph"] in ("s", "t", "f")]
        assert flows, "collective waits should be flow-connected"


class TestZeroOverhead:
    @pytest.mark.parametrize("backend", ["simulated", "thread"])
    def test_tracing_does_not_change_modeled_results(self, backend):
        import numpy as np

        plain = _run(backend=backend)
        traced = _run(backend=backend, sink=TraceSink())
        assert (
            traced.engine_result.trace.makespan
            == plain.engine_result.trace.makespan
        )
        assert traced.engine_result.stats == plain.engine_result.stats
        for a, b in zip(traced.shards, plain.shards):
            np.testing.assert_array_equal(a, b)


class TestMeasuredProjection:
    def test_measured_to_spans_renders_totals(self):
        measured = Measured(
            backend="process",
            workers=2,
            wall_s=1.0,
            rank_compute_s=(0.25, 0.5),
            rank_comm_wait_s=(0.1, 0.2),
        )
        sink = measured.to_spans(TraceSink())
        spans = [e for e in sink.events if e["ph"] == "X"]
        assert len(spans) == 4  # compute + wait per rank
        assert {e["pid"] for e in spans} == {MEASURED_PID}

    def test_emit_rank_segments_skips_singleton_flows(self):
        sink = TraceSink()
        emit_rank_segments(
            sink,
            {0: [("local sort", 0.0, 0.1)], 1: []},
            {0: [("allgather", 0.1, 0.2, 0)]},  # only rank 0 joined
            backend="thread",
        )
        assert not [e for e in sink.events if e["ph"] in ("s", "t", "f")]


class TestChaosEvents:
    def test_plan_injections_become_instants(self):
        run = _run()
        sink = TraceSink()
        plan = get_fault_plan("stragglers")
        chaos_plan_to_events(sink, plan, run.engine_result.trace, P)
        instants = [e for e in sink.events if e["ph"] == "i"]
        assert instants
        assert all(e["cat"] == "chaos" for e in instants)
        assert all(
            e["args"]["plan"] == "stragglers" for e in instants
        )

    def test_zero_plan_emits_nothing(self):
        run = _run()
        sink = TraceSink()
        chaos_plan_to_events(
            sink, get_fault_plan("none"), run.engine_result.trace, P
        )
        assert sink.events == []


class TestStatsToMetrics:
    def test_numeric_leaves_become_gauges(self):
        registry = MetricsRegistry()
        stats_to_metrics(
            {"jobs_total": 3, "cache": {"hits": 1, "policy": "lru"}},
            registry,
        )
        snap = registry.snapshot()
        assert snap["repro_stats_jobs_total"] == 3.0
        assert snap["repro_stats_cache_hits"] == 1.0
        assert "repro_stats_cache_policy" not in snap


class TestSweepTracing:
    def test_each_cell_gets_its_own_modeled_row(self):
        sink = TraceSink()
        scenarios = [
            Scenario(
                algorithm="hss",
                workload="uniform",
                procs=p,
                keys_per_rank=300,
            )
            for p in (2, 4)
        ]
        ExperimentRunner(jobs=1).run(scenarios, trace_sink=sink)
        rows = {
            e["args"]["name"]: e["tid"]
            for e in sink.events
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and e["pid"] == MODELED_PID
        }
        assert rows[scenarios[0].name] == 0
        assert rows[scenarios[1].name] == 1

    def test_parallel_sweep_with_sink_is_a_config_error(self):
        scenario = Scenario(
            algorithm="hss",
            workload="uniform",
            procs=2,
            keys_per_rank=300,
        )
        with pytest.raises(ConfigError, match="jobs"):
            ExperimentRunner(jobs=2).run(
                [scenario], trace_sink=TraceSink()
            )
