"""Chrome-trace export: schema validation, file round-trip, ASCII report.

The reconciliation tests here are the PR's acceptance bar: per-phase span
durations in an exported trace must sum (float tolerance) to the modeled
phase breakdown the benchmark tables print.
"""

import json

import pytest

from repro.algorithms import Dataset, Sorter
from repro.telemetry import (
    MODELED_PID,
    TraceSink,
    load_chrome_trace,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced_run(algorithm="hss", backend="simulated", p=4, n_per=600):
    dataset = Dataset.from_workload("uniform", p=p, n_per=n_per, seed=7)
    sink = TraceSink()
    run = Sorter(algorithm, backend=backend, verify=False).run(
        dataset, trace_sink=sink
    )
    return run, sink


def _phase_sums_from_events(events):
    """Compute/comm seconds per phase, reconstructed from span events.

    Compute child spans are *named* by their phase; comm spans are named
    by the collective op and carry the phase in ``args``.
    """
    compute: dict[str, float] = {}
    comm: dict[str, float] = {}
    for e in events:
        if e.get("ph") != "X" or e["pid"] != MODELED_PID:
            continue
        seconds = e["dur"] / 1e6
        if e.get("cat") == "compute":
            phase = e["name"]
            compute[phase] = compute.get(phase, 0.0) + seconds
        elif e.get("cat") == "comm":
            phase = e["args"]["phase"]
            comm[phase] = comm.get(phase, 0.0) + seconds
    return compute, comm


class TestReconciliation:
    def test_span_durations_sum_to_modeled_breakdown(self):
        run, sink = _traced_run()
        breakdown = run.engine_result.trace.breakdown()
        compute, comm = _phase_sums_from_events(sink.events)
        for phase in breakdown.phases():
            assert compute.get(phase, 0.0) == pytest.approx(
                breakdown.compute.get(phase, 0.0), abs=1e-9
            ), phase
            assert comm.get(phase, 0.0) == pytest.approx(
                breakdown.comm.get(phase, 0.0), abs=1e-9
            ), phase

    def test_run_span_covers_makespan(self):
        run, sink = _traced_run()
        (top,) = [
            e
            for e in sink.events
            if e.get("ph") == "X" and e.get("cat") == "run"
        ]
        assert top["dur"] / 1e6 == pytest.approx(
            run.engine_result.trace.makespan, abs=1e-9
        )


class TestValidation:
    def test_live_trace_validates(self):
        _, sink = _traced_run()
        events = to_chrome_trace(sink)["traceEvents"]
        validate_chrome_trace(events)

    def test_complete_event_requires_duration(self):
        bad = [{"ph": "X", "ts": 0, "pid": 1, "tid": 0, "name": "x"}]
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(bad)

    def test_unknown_phase_rejected(self):
        bad = [
            {
                "ph": "Z",
                "ts": 0,
                "dur": 1,
                "pid": 1,
                "tid": 0,
                "name": "x",
            }
        ]
        with pytest.raises(ValueError, match="ph"):
            validate_chrome_trace(bad)

    def test_negative_timestamp_rejected(self):
        bad = [
            {
                "ph": "X",
                "ts": -5,
                "dur": 1,
                "pid": 1,
                "tid": 0,
                "name": "x",
            }
        ]
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)

    def test_superstep_ordering_must_be_monotone(self):
        def span(ts, superstep):
            return {
                "ph": "X",
                "ts": ts,
                "dur": 1.0,
                "pid": 1,
                "tid": 0,
                "name": "s",
                "cat": "superstep",
                "args": {"superstep": superstep, "phase": "p"},
            }

        validate_chrome_trace([span(0.0, 0), span(10.0, 1)])
        with pytest.raises(ValueError, match="superstep"):
            validate_chrome_trace([span(0.0, 1), span(10.0, 0)])

    def test_superstep_ordering_is_per_row(self):
        # Two sweep cells interleave supersteps on distinct tids; each
        # row restarts from zero without tripping the monotone check.
        def span(ts, tid, superstep):
            return {
                "ph": "X",
                "ts": ts,
                "dur": 1.0,
                "pid": 1,
                "tid": tid,
                "name": "s",
                "cat": "superstep",
                "args": {"superstep": superstep, "phase": "p"},
            }

        validate_chrome_trace(
            [span(0.0, 0, 0), span(5.0, 0, 1), span(0.0, 1, 0)]
        )


class TestFileRoundTrip:
    def test_write_then_load(self, tmp_path):
        _, sink = _traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(sink, path)
        assert count == len(sink.events)
        events = load_chrome_trace(path)
        assert events == sink.events
        validate_chrome_trace(events)

    def test_written_file_is_object_with_trace_events(self, tmp_path):
        # The object form is what chrome://tracing and Perfetto expect;
        # the loader also accepts a bare array for hand-made files.
        _, sink = _traced_run()
        path = tmp_path / "trace.json"
        write_chrome_trace(sink, path)
        with open(path) as fh:
            doc = json.load(fh)
        assert set(doc) >= {"traceEvents"}

    def test_loader_accepts_bare_array(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text("[]")
        assert load_chrome_trace(path) == []

    def test_loader_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"numbers": [1, 2]}')
        with pytest.raises(ValueError):
            load_chrome_trace(path)


class TestTimelineReport:
    def test_header_counts_spans_and_instants(self):
        _, sink = _traced_run()
        report = render_timeline(sink.events)
        spans = sum(1 for e in sink.events if e["ph"] == "X")
        instants = sum(1 for e in sink.events if e["ph"] == "i")
        assert report.splitlines()[0] == (
            f"trace: {len(sink.events)} events "
            f"({spans} spans, {instants} instants)"
        )

    def test_report_tabulates_supersteps(self):
        run, sink = _traced_run()
        report = render_timeline(sink.events)
        n_steps = len(run.engine_result.trace.records)
        assert "superstep" in report
        # Every recorded superstep lands one table row.
        rows = [
            line
            for line in report.splitlines()
            if line.strip() and line.lstrip()[0].isdigit()
        ]
        assert len(rows) >= n_steps
