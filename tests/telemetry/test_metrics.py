"""Counter/Gauge/Histogram registry and the Prometheus text round-trip."""

import math

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("repro_jobs_total", "jobs", ("status",))
        assert c.value(status="ok") == 0.0
        c.labels(status="ok").inc()
        c.labels(status="ok").inc(2.0)
        assert c.value(status="ok") == 3.0
        assert c.value(status="error") == 0.0

    def test_negative_increment_rejected(self):
        c = Counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            c.labels().inc(-1.0)

    def test_label_names_are_enforced(self):
        c = Counter("repro_x_total", "x", ("status",))
        with pytest.raises(ValueError):
            c.labels(other="ok")


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("repro_depth", "queue depth")
        g.set(4.0)
        assert g.value() == 4.0
        g.set(1.0)
        assert g.value() == 1.0

    def test_callback_gauge_tracks_source(self):
        box = {"n": 0}
        g = Gauge("repro_live", "live", fn=lambda: box["n"])
        assert g.value() == 0
        box["n"] = 7
        assert g.value() == 7


class TestHistogram:
    def test_counts_are_cumulative_and_end_at_inf(self):
        h = Histogram("repro_lat", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        counts = h.bucket_counts()
        assert [c for _, c in counts] == [1, 2, 3]
        assert counts[-1][0] == math.inf

    def test_sum_and_count(self):
        h = Histogram("repro_lat", "latency", buckets=(1.0,))
        h.observe(0.25)
        h.observe(0.75)
        assert h.count == 2
        assert h.sum == pytest.approx(1.0)

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("repro_lat", "latency", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_quantile_of_empty_histogram_is_nan(self):
        h = Histogram("repro_lat", "latency", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_overflow_clamps_to_top_finite_bound(self):
        h = Histogram("repro_lat", "latency", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.0001)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "a")
        with pytest.raises(ValueError, match="repro_a_total"):
            reg.counter("repro_a_total", "again")

    def test_contains_and_get(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_a_total", "a")
        assert "repro_a_total" in reg
        assert reg.get("repro_a_total") is c

    def test_render_parse_round_trip(self):
        reg = MetricsRegistry()
        jobs = reg.counter("repro_jobs_total", "jobs", ("status",))
        jobs.labels(status="ok").inc(3)
        jobs.labels(status="error").inc()
        depth = reg.gauge("repro_depth", "queue depth")
        depth.set(2.0)
        lat = reg.histogram(
            "repro_lat_seconds", "latency", buckets=(0.5, 1.0)
        )
        lat.observe(0.25)
        lat.observe(0.75)

        text = reg.render()
        assert text.endswith("\n")
        assert "# HELP repro_jobs_total jobs" in text
        assert "# TYPE repro_lat_seconds histogram" in text

        parsed = parse_prometheus_text(text)
        assert parsed["repro_jobs_total"][(("status", "ok"),)] == 3.0
        assert parsed["repro_jobs_total"][(("status", "error"),)] == 1.0
        assert parsed["repro_depth"][()] == 2.0
        assert parsed["repro_lat_seconds_count"][()] == 2.0
        assert parsed["repro_lat_seconds_sum"][()] == pytest.approx(1.0)
        buckets = parsed["repro_lat_seconds_bucket"]
        assert buckets[(("le", "0.5"),)] == 1.0
        assert buckets[(("le", "+Inf"),)] == 2.0

    def test_callback_counter_exposes_external_tally(self):
        # The pattern the splitter cache uses: existing tallies become
        # metrics without maintaining two counters.
        box = {"hits": 0}
        reg = MetricsRegistry()
        reg.counter_fn(
            "repro_cache_hits_total", "hits", lambda: box["hits"]
        )
        box["hits"] = 5
        assert (
            parse_prometheus_text(reg.render())[
                "repro_cache_hits_total"
            ][()]
            == 5.0
        )

    def test_snapshot_maps_nan_to_none(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds", "latency", buckets=(1.0,))
        snap = reg.snapshot()
        assert snap["repro_lat_seconds"]["count"] == 0
        assert snap["repro_lat_seconds"]["p50"] is None


class TestParser:
    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_x_total not-a-number\n")

    def test_comments_and_blank_lines_skipped(self):
        text = "# HELP a b\n\n# TYPE a counter\na 1\n"
        assert parse_prometheus_text(text)["a"][()] == 1.0
