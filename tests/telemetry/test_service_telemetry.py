"""Daemon observability: lifecycle spans, JSONL logs, metric pointers.

Satellite coverage: S1 (structured logging, including a real
``repro serve --log-level info`` subprocess), S6 (the legacy
``jobs_total``/``errors_total`` counters are now *views* over the
metrics registry, not independently-maintained tallies).
"""

import io
import json
import logging
import subprocess
import sys

from repro.service import SortService
from repro.telemetry import SERVICE_PID, TraceSink

SCENARIO = {
    "algorithm": "hss",
    "workload": "uniform",
    "procs": 4,
    "keys_per_rank": 800,
}


def _job(job_id, scenario=SCENARIO):
    return json.dumps({"id": job_id, "scenario": scenario})


def _stream(service, lines):
    out = io.StringIO()
    service.process_stream(lines, out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestLifecycleSpans:
    def test_job_spans_in_order(self):
        sink = TraceSink()
        service = SortService(trace_sink=sink)
        _stream(service, [_job("a")])
        names = [
            e["name"]
            for e in sink.events
            if e["pid"] == SERVICE_PID and e["ph"] in ("X", "i")
        ]
        assert names == [
            "fingerprint",
            "queued",
            "cache-probe",
            "run",
            "reply",
        ]
        # The cache-assisted second run adds a warm-start marker.
        before = len(sink.events)
        _stream(service, [_job("b")])
        later = [
            e["name"]
            for e in sink.events[before:]
            if e["pid"] == SERVICE_PID
        ]
        assert "warm-start" in later

    def test_cache_probe_args_carry_hit_and_source(self):
        sink = TraceSink()
        service = SortService(trace_sink=sink)
        _stream(service, [_job("a")])
        _stream(service, [_job("b")])
        probes = [
            e
            for e in sink.events
            if e["pid"] == SERVICE_PID and e["name"] == "cache-probe"
        ]
        assert probes[0]["args"]["hit"] is False
        assert probes[1]["args"]["hit"] is True
        assert probes[1]["args"]["source"] == "cache"

    def test_error_jobs_still_emit_a_reply_instant(self):
        sink = TraceSink()
        service = SortService(trace_sink=sink)
        bad = {**SCENARIO, "algorithm": "no-such-algorithm"}
        replies = _stream(service, [_job("bad", bad)])
        assert replies[0]["status"] == "error"
        (reply,) = [
            e
            for e in sink.events
            if e["pid"] == SERVICE_PID and e["ph"] == "i"
        ]
        assert reply["name"] == "reply"
        assert reply["args"]["status"] == "error"


class TestCounterPointers:
    def test_legacy_counters_are_registry_views(self):
        # S6: the ad-hoc tallies were deprecated in favour of the
        # registry; the public attributes survive as derived properties.
        assert isinstance(SortService.jobs_total, property)
        assert isinstance(SortService.errors_total, property)

    def test_views_agree_with_the_counter(self):
        service = SortService()
        bad = {**SCENARIO, "algorithm": "no-such-algorithm"}
        _stream(service, [_job("ok"), _job("bad", bad)])
        counter = service.metrics.get("repro_jobs_total")
        assert service.jobs_total == 2
        assert service.errors_total == 1
        assert counter.value(status="ok") == 1.0
        assert counter.value(status="error") == 1.0

    def test_stats_keys_unchanged_and_metrics_added(self):
        service = SortService()
        _stream(service, [_job("ok")])
        stats = service.stats()
        # The pre-telemetry keys are pinned; 'metrics' is the superset.
        assert {"jobs_total", "errors_total", "cache"} <= set(stats)
        assert stats["metrics"]["repro_jobs_total"] == {"status=ok": 1.0}


class TestStructuredLogging:
    def test_info_log_lines_are_json_with_expected_keys(self, caplog):
        service = SortService()
        with caplog.at_level(logging.INFO, logger="repro.service"):
            _stream(service, [_job("logged")])
        records = [r for r in caplog.records if r.name == "repro.service"]
        assert records
        line = json.loads(records[-1].getMessage())
        assert line["event"] == "job"
        assert line["id"] == "logged"
        assert line["status"] == "ok"
        assert len(line["fingerprint"]) == 12
        assert "rounds" in line and "wall_s" in line

    def test_logging_disabled_by_default(self, caplog):
        service = SortService()
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            _stream(service, [_job("quiet")])
        assert not [
            r for r in caplog.records if r.name == "repro.service"
        ]

    def test_serve_subprocess_emits_jsonl_to_stderr(self):
        # S1 end-to-end: the real CLI entry point, captured the way an
        # operator would (stderr), must produce parseable JSONL.
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--log-level", "info"],
            input=_job("sub-1") + "\n",
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        reply = json.loads(proc.stdout.splitlines()[0])
        assert reply["status"] == "ok"
        log_lines = [
            json.loads(line)
            for line in proc.stderr.splitlines()
            if line.startswith("{")
        ]
        assert any(
            entry.get("event") == "job" and entry.get("id") == "sub-1"
            for entry in log_lines
        )
