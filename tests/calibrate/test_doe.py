"""The DoE must be a pure, identifiable function of (seed, profile)."""

import json

import pytest

from repro.calibrate import DOE_PROFILES, design_cells, render_doe_table
from repro.errors import ConfigError


class TestDesignCells:
    def test_pure_function_of_seed(self):
        assert design_cells(seed=5) == design_cells(seed=5)
        assert design_cells(seed=5, profile="tiny") == design_cells(
            seed=5, profile="tiny"
        )

    def test_different_seeds_draw_fresh_data(self):
        a = design_cells(seed=1)
        b = design_cells(seed=2)
        assert [c.describe() for c in a] == [c.describe() for c in b]
        assert all(
            x.workload_seed != y.workload_seed for x, y in zip(a, b)
        )
        assert all(x.sort_seed != y.sort_seed for x, y in zip(a, b))

    def test_unknown_profile_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown DoE profile"):
            design_cells(profile="nope")

    def test_names_are_unique(self):
        for profile in DOE_PROFILES:
            names = [c.name for c in design_cells(profile=profile)]
            assert len(names) == len(set(names))

    def test_default_profile_excites_every_constant(self):
        """Both algorithms, both schema widths and several sizes appear —
        the structural prerequisite for an identifiable fit."""
        cells = design_cells()
        assert {c.algorithm for c in cells} == {"hss", "sample-regular"}
        assert {bool(c.schema) for c in cells} == {True, False}
        assert len({c.keys_per_rank for c in cells}) >= 3
        assert len({c.procs for c in cells}) >= 2

    def test_describe_is_json_safe(self):
        for cell in design_cells(profile="tiny"):
            assert json.loads(json.dumps(cell.describe())) == cell.describe()

    def test_payload_columns(self):
        cells = design_cells(profile="tiny")
        key_only = [c for c in cells if not c.schema]
        records = [c for c in cells if c.schema]
        assert key_only and records
        assert key_only[0].payload_columns() is None
        assert records[0].payload_columns() == {"mass": "f8", "id": "u4"}


class TestRenderTable:
    def test_table_lists_every_cell(self):
        cells = design_cells(profile="tiny")
        table = render_doe_table(cells)
        for cell in cells:
            assert cell.name in table
        assert "(key-only)" in table
