"""Emitted specs: provenance, registration semantics, cross-process path."""

import json
import subprocess
import sys

import pytest

from repro.calibrate import (
    build_spec,
    design_cells,
    emit_spec,
    extract_features,
    fit_constants,
    synthetic_measurements,
)
from repro.errors import ConfigError
from repro.machines import (
    MACHINES,
    MachineSpec,
    get_machine_spec,
    register_machine,
    resolve_machine,
)

pytestmark = pytest.mark.usefixtures("_clean_registry")


@pytest.fixture
def _clean_registry():
    before = dict(MACHINES)
    yield
    MACHINES.clear()
    MACHINES.update(before)


@pytest.fixture(scope="module")
def fit():
    cells = design_cells(seed=3, profile="tiny")
    features = extract_features(cells)
    synth = synthetic_measurements(features, get_machine_spec("laptop"))
    return fit_constants(features, synth)


class TestBuildSpec:
    def test_constants_and_inherited_fields(self, fit):
        spec = build_spec(fit)
        assert spec.name == "local-calibrated"
        assert spec.alpha == fit.constants["alpha"]
        assert spec.beta == fit.constants["beta"]
        assert spec.gamma_compare == fit.constants["gamma_compare"]
        assert spec.gamma_byte == fit.constants["gamma_byte"]
        # Unfittable constants stay 0 = inherit (the DoE runs flat).
        assert spec.node_alpha == 0.0
        assert spec.gamma_key_compare == 0.0
        assert spec.topology == "fully-connected"
        assert spec.cores_per_node == 1

    def test_provenance_block(self, fit):
        spec = build_spec(
            fit, doe_seed=3, profile="tiny", backend="thread",
            workers=2, warmup=1, repeats=5, trim=1,
        )
        prov = spec.provenance
        assert prov["tool"] == "repro calibrate"
        assert prov["doe_seed"] == 3
        assert prov["profile"] == "tiny"
        assert prov["backend"] == "thread"
        assert prov["workers"] == 2
        assert prov["repeats"] == 5
        assert prov["trim"] == 1
        assert prov["cells"] == fit.cells
        assert prov["fit"]["r2"] == fit.r2
        assert prov["fit"]["residual_s"] == fit.residual_s

    def test_json_round_trip_preserves_provenance(self, fit):
        spec = build_spec(fit, doe_seed=9)
        clone = MachineSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.provenance == spec.provenance

    def test_preset_serialization_has_no_provenance_key(self):
        """Hand-written presets keep their pre-calibration JSON form."""
        assert "provenance" not in get_machine_spec("laptop").to_dict()


class TestEmitSpec:
    def test_registers_and_resolves(self, fit):
        emit_spec(build_spec(fit))
        assert resolve_machine("local-calibrated").name == "local-calibrated"

    def test_re_emit_replaces_without_error(self, fit):
        emit_spec(build_spec(fit))
        updated = build_spec(fit, doe_seed=42)
        emit_spec(updated)
        assert get_machine_spec("local-calibrated").provenance["doe_seed"] == 42

    def test_register_without_replace_still_guards_duplicates(self, fit):
        emit_spec(build_spec(fit))
        conflicting = build_spec(fit, doe_seed=7)
        with pytest.raises(ConfigError, match="already registered"):
            register_machine(conflicting)

    def test_writes_json_file(self, fit, tmp_path):
        out = tmp_path / "local.json"
        spec = emit_spec(build_spec(fit), out=str(out))
        data = json.loads(out.read_text())
        assert MachineSpec.from_dict(data) == spec

    def test_not_registered_at_import(self):
        """`local-calibrated` exists only after an explicit calibration —
        the preset list (and its agreement test) must not change."""
        assert "local-calibrated" not in MACHINES


class TestMachinePathHandoff:
    def test_sweep_resolves_spec_from_env(self, fit, tmp_path):
        """REPRO_MACHINE_PATH makes the emitted spec visible to a fresh
        process — the `repro sweep --machines local-calibrated` handoff."""
        out = tmp_path / "local.json"
        emit_spec(build_spec(fit), out=str(out))
        code = (
            "from repro.machines import resolve_machine; "
            "m = resolve_machine('local-calibrated'); "
            "print(m.name, m.alpha)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "REPRO_MACHINE_PATH": str(out),
                "PATH": "/usr/bin:/bin",
            },
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == [
            "local-calibrated", repr(fit.constants["alpha"]),
        ]

    def test_unreadable_path_entry_is_config_error(self, monkeypatch):
        from repro.machines.registry import _load_machine_path

        monkeypatch.setenv("REPRO_MACHINE_PATH", "/nonexistent/spec.json")
        with pytest.raises(ConfigError, match="unreadable"):
            _load_machine_path()

    def test_lookup_miss_consults_path(self, fit, tmp_path, monkeypatch):
        out = tmp_path / "probe.json"
        emit_spec(
            build_spec(fit, name="path-probe-machine"), out=str(out)
        )
        MACHINES.pop("path-probe-machine")
        monkeypatch.setenv("REPRO_MACHINE_PATH", str(out))
        assert get_machine_spec("path-probe-machine").name == (
            "path-probe-machine"
        )
