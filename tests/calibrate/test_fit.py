"""Fitter tests: exact recovery, graceful noise, named failure modes."""

import numpy as np
import pytest

from repro.calibrate import (
    CellFeatures,
    CellMeasurement,
    constants_of,
    design_cells,
    extract_features,
    fit_constants,
    modeled_measurements,
    synthetic_measurements,
    total_abs_error,
)
from repro.calibrate.doe import DoECell
from repro.errors import CalibrationError, ConfigError
from repro.machines import get_machine_spec

CONSTANTS = ("alpha", "beta", "gamma_compare", "gamma_byte")


@pytest.fixture(scope="module")
def tiny_features():
    return extract_features(design_cells(seed=3, profile="tiny"))


class TestSyntheticRecovery:
    @pytest.mark.parametrize("truth", ["laptop", "cloud-ethernet"])
    def test_known_constants_recovered_within_tolerance(
        self, tiny_features, truth
    ):
        """The ISSUE acceptance bound is 1%; exact synthetic data is a
        consistent linear system, so assert far tighter."""
        spec = get_machine_spec(truth)
        fit = fit_constants(
            tiny_features, synthetic_measurements(tiny_features, spec)
        )
        expected = constants_of(spec)
        for name in CONSTANTS:
            rel = abs(fit.constants[name] - expected[name]) / expected[name]
            assert rel < 1e-9, (name, fit.constants[name], expected[name])
        assert fit.r2["compute"] == pytest.approx(1.0)
        assert fit.r2["comm"] == pytest.approx(1.0)
        assert fit.cells == len(tiny_features)

    def test_recovery_is_deterministic(self, tiny_features):
        spec = get_machine_spec("laptop")
        runs = [
            fit_constants(
                tiny_features, synthetic_measurements(tiny_features, spec)
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_noisy_recovery_stays_close(self, tiny_features):
        spec = get_machine_spec("laptop")
        fit = fit_constants(
            tiny_features,
            synthetic_measurements(
                tiny_features, spec, noise=0.05, seed=99
            ),
        )
        expected = constants_of(spec)
        for name in CONSTANTS:
            rel = abs(fit.constants[name] - expected[name]) / expected[name]
            assert rel < 0.2, name

    def test_fitted_constants_minimize_total_abs_error(self, tiny_features):
        """On its own DoE the fit beats any preset's constants."""
        spec = get_machine_spec("laptop")
        synth = synthetic_measurements(tiny_features, spec)
        fit = fit_constants(tiny_features, synth)
        fitted_err = total_abs_error(synth, tiny_features, fit.constants)
        for preset in ("cloud-ethernet", "mira-like-bgq"):
            preset_err = total_abs_error(
                synth, tiny_features, constants_of(get_machine_spec(preset))
            )
            assert fitted_err < preset_err

    def test_nonnegativity(self, tiny_features):
        """Negative targets cannot drive constants below zero."""
        spec = get_machine_spec("laptop")
        synth = synthetic_measurements(tiny_features, spec)
        hostile = [
            CellMeasurement(
                cell=m.cell,
                phase_wall_s={k: -v for k, v in m.phase_wall_s.items()},
                comm_wait_s=-m.comm_wait_s,
                samples=m.samples,
            )
            for m in synth
        ]
        fit = fit_constants(tiny_features, hostile)
        assert all(v >= 0.0 for v in fit.constants.values())


def _cell(i: int) -> DoECell:
    return DoECell(
        name=f"fake{i}",
        algorithm="hss",
        workload="uniform",
        procs=4,
        keys_per_rank=100,
        eps=0.1,
        schema="",
        workload_seed=i,
        sort_seed=i,
    )


def _features(rows):
    """Hand-built features: rows of (cmp, bytes, collectives, net_bytes)."""
    return [
        CellFeatures(
            cell=_cell(i),
            compute={"sort": (cmp, nbytes)},
            collectives=coll,
            net_bytes=net,
        )
        for i, (cmp, nbytes, coll, net) in enumerate(rows)
    ]


class TestIllConditioned:
    def test_zero_column_names_the_constant(self):
        """No cell moves any local bytes -> gamma_byte is unidentifiable."""
        feats = _features([(100.0, 0.0, 3, 50), (500.0, 0.0, 4, 90)])
        synth = synthetic_measurements(feats, get_machine_spec("laptop"))
        with pytest.raises(CalibrationError, match="gamma_byte") as info:
            fit_constants(feats, synth)
        assert info.value.constants == ("gamma_byte",)

    def test_rank_deficiency_names_the_entangled_constants(self):
        """Byte counts exactly proportional to comparison counts: the two
        gammas cannot be separated, and the error says which pair."""
        feats = _features(
            [(100.0, 200.0, 3, 50), (500.0, 1000.0, 7, 90),
             (900.0, 1800.0, 9, 130)]
        )
        synth = synthetic_measurements(feats, get_machine_spec("laptop"))
        with pytest.raises(
            CalibrationError, match="gamma_compare, gamma_byte"
        ) as info:
            fit_constants(feats, synth)
        assert set(info.value.constants) == {"gamma_compare", "gamma_byte"}

    def test_comm_rank_deficiency_detected(self):
        """Net bytes proportional to collective count entangles alpha/beta."""
        feats = _features(
            [(100.0, 30.0, 2, 200), (500.0, 700.0, 4, 400),
             (900.0, 100.0, 8, 800)]
        )
        synth = synthetic_measurements(feats, get_machine_spec("laptop"))
        with pytest.raises(CalibrationError, match="alpha, beta"):
            fit_constants(feats, synth)

    def test_calibration_error_is_config_error(self):
        assert issubclass(CalibrationError, ConfigError)


class TestInputValidation:
    def test_mismatched_cells_rejected(self, tiny_features):
        synth = synthetic_measurements(
            tiny_features, get_machine_spec("laptop")
        )
        with pytest.raises(ConfigError, match="different cells"):
            fit_constants(tiny_features, synth[:-1])

    def test_zero_cells_rejected(self):
        with pytest.raises(ConfigError, match="zero cells"):
            fit_constants([], [])


class TestModeledMeasurements:
    def test_linear_form_matches_synthetic_generator(self, tiny_features):
        spec = get_machine_spec("laptop")
        synth = synthetic_measurements(tiny_features, spec)
        modeled = modeled_measurements(tiny_features, constants_of(spec))
        for a, b in zip(synth, modeled):
            assert a.cell == b.cell
            assert a.comm_wait_s == pytest.approx(b.comm_wait_s)
            for phase in a.phase_wall_s:
                assert a.phase_wall_s[phase] == pytest.approx(
                    b.phase_wall_s[phase]
                )
        assert total_abs_error(
            synth, tiny_features, constants_of(spec)
        ) == pytest.approx(0.0, abs=1e-15)

    def test_features_price_record_cells_heavier(self, tiny_features):
        """Record-carrying cells move more local bytes than key-only twins
        at the same size — the property that identifies gamma_byte."""
        by_name = {f.cell.name: f for f in tiny_features}
        for feat in tiny_features:
            if not feat.cell.schema:
                continue
            twin_name = feat.cell.name.replace("/rec", "/key").replace(
                "c01", "c00"
            ).replace("c04", "c03")
            twin = by_name.get(twin_name)
            if twin is None:
                continue
            assert sum(b for _, b in feat.compute.values()) > sum(
                b for _, b in twin.compute.values()
            )
            assert feat.net_bytes > twin.net_bytes
            assert np.isclose(
                sum(c for c, _ in feat.compute.values()),
                sum(c for c, _ in twin.compute.values()),
                rtol=0.1,
            )
