"""Measurement layer: control validation, feature/wall alignment."""

import pytest

from repro.calibrate import (
    design_cells,
    extract_features,
    measure_cells,
)
from repro.errors import ConfigError

CELLS = design_cells(seed=3, profile="tiny")[:2]


class TestControlValidation:
    def test_repeats_must_be_positive(self):
        with pytest.raises(ConfigError, match="repeats"):
            measure_cells(CELLS, repeats=0)

    def test_warmup_must_be_nonnegative(self):
        with pytest.raises(ConfigError, match="warmup"):
            measure_cells(CELLS, warmup=-1)

    @pytest.mark.parametrize("repeats,trim", [(3, 2), (2, 1), (1, 1)])
    def test_trim_must_leave_samples(self, repeats, trim):
        with pytest.raises(ConfigError, match="trim"):
            measure_cells(CELLS, repeats=repeats, trim=trim)

    def test_simulator_rejected_as_measurement_backend(self):
        """The simulator has no per-phase Measured block to fit against."""
        with pytest.raises(ConfigError, match="measuring backend"):
            measure_cells(CELLS, backend="simulated", repeats=1, warmup=0)


class TestMeasureOnThreadBackend:
    @pytest.fixture(scope="class")
    def measurements(self):
        return measure_cells(CELLS, warmup=0, repeats=3, trim=1)

    def test_one_measurement_per_cell(self, measurements):
        assert [m.cell for m in measurements] == list(CELLS)
        assert all(m.samples == 3 for m in measurements)

    def test_phases_match_modeled_breakdown(self, measurements):
        """Measured phases line up with the features' modeled phases, so
        the fit's rows pair a real wall with real counts."""
        features = extract_features(CELLS)
        for feat, meas in zip(features, measurements):
            assert set(meas.phase_wall_s) >= set(feat.compute)

    def test_walls_are_finite_and_nonnegative(self, measurements):
        for meas in measurements:
            assert meas.comm_wait_s >= 0.0
            for phase, wall in meas.phase_wall_s.items():
                assert wall >= 0.0, phase
