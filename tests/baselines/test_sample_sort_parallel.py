"""Tests for parallel-sample PSRS (Goodrich-style, §4.1.2)."""

import numpy as np
import pytest

from repro.baselines.sample_sort_parallel import (
    sample_sort_regular_parallel_program,
)
from repro.bsp import BSPEngine
from repro.errors import ConfigError
from repro.metrics import check_load_balance, verify_sorted_output


def run_parallel(inputs, **kwargs):
    engine = BSPEngine(len(inputs))
    res = engine.run(
        sample_sort_regular_parallel_program,
        rank_args=[(x,) for x in inputs],
        **kwargs,
    )
    return res, [r[0].keys for r in res.returns], res.returns[0][1]


class TestCorrectness:
    def test_sorts(self, small_shards):
        _, outs, _ = run_parallel(small_shards, eps=0.1)
        verify_sorted_output(small_shards, outs)

    def test_balance_guarantee(self, rng):
        inputs = [rng.integers(0, 10**9, 2000) for _ in range(8)]
        _, outs, _ = run_parallel(inputs, eps=0.05)
        check_load_balance(outs, 0.05)

    def test_agrees_with_central_variant_shape(self, rng):
        """Both PSRS variants produce the same global order."""
        from repro.baselines.sample_sort import sample_sort_regular_program

        inputs = [rng.integers(0, 10**9, 800) for _ in range(4)]
        _, outs_p, _ = run_parallel(inputs, eps=0.2)
        engine = BSPEngine(4)
        res = engine.run(
            sample_sort_regular_program,
            rank_args=[(x,) for x in inputs],
            eps=0.2,
        )
        outs_c = [r[0].keys for r in res.returns]
        assert np.array_equal(
            np.concatenate(outs_p), np.concatenate(outs_c)
        )

    def test_float_keys(self, rng):
        inputs = [rng.normal(size=600) for _ in range(4)]
        _, outs, _ = run_parallel(inputs, eps=0.2)
        verify_sorted_output(inputs, outs)

    def test_single_rank(self, rng):
        inputs = [rng.integers(0, 1000, 300)]
        _, outs, stats = run_parallel(inputs, eps=0.2)
        assert np.array_equal(outs[0], np.sort(inputs[0]))
        assert stats.bitonic_exchanges == 0


class TestScalabilityProperties:
    def test_sample_never_centralized(self, rng):
        """Per-rank sample memory stays O(s) = O(p/ε), not the central
        variant's O(p·s) = O(p²/ε) at the root."""
        inputs = [rng.integers(0, 10**9, 2000) for _ in range(8)]
        res, _, stats = run_parallel(inputs, eps=0.05)
        # The resident block each rank ever holds is one sample block (the
        # bitonic compare-exchange keeps exactly `block` keys).
        assert stats.sample_block <= 2 * stats.oversample
        assert stats.sample_block * 8 < stats.total_sample * 8 / 2
        # And no gather collective appears in the splitting phase at all.
        gathers = [
            r for r in res.trace.records
            if r.op == "gather" and r.phase == "splitting"
        ]
        assert not gathers

    def test_exchange_rounds_log_squared(self, rng):
        inputs = [rng.integers(0, 10**9, 600) for _ in range(16)]
        _, _, stats = run_parallel(inputs, eps=0.2)
        assert stats.bitonic_exchanges == 4 * 5 // 2  # log²p pattern

    def test_non_power_of_two_rejected(self, rng):
        inputs = [rng.integers(0, 100, 50) for _ in range(3)]
        with pytest.raises(ConfigError, match="power of two"):
            run_parallel(inputs, eps=0.2)

    def test_sentinel_collision_rejected(self):
        info = np.iinfo(np.int64)
        inputs = [np.array([1, 2, info.max]), np.array([3, 4, 5])]
        with pytest.raises(ConfigError, match="sentinel"):
            run_parallel(inputs, eps=0.9)

    def test_registry(self, rng):
        from repro.core.api import parallel_sort

        inputs = [rng.integers(0, 10**9, 500) for _ in range(4)]
        run = parallel_sort(inputs, "sample-regular-parallel", eps=0.1)
        assert run.imbalance <= 1.1 + 1e-9
