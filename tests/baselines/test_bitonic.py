"""Tests for Batcher bitonic sort over the BSP engine."""

import numpy as np
import pytest

from repro.baselines.bitonic import bitonic_sort_program
from repro.bsp import BSPEngine
from repro.errors import ConfigError
from repro.metrics import verify_sorted_output


def run_bitonic(inputs):
    engine = BSPEngine(len(inputs))
    res = engine.run(bitonic_sort_program, rank_args=[(x,) for x in inputs])
    return res, list(res.returns)


class TestBitonic:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_sorts_power_of_two(self, p, rng):
        inputs = [rng.integers(0, 10**9, 256) for _ in range(p)]
        _, outs = run_bitonic(inputs)
        verify_sorted_output(inputs, outs)

    def test_exact_block_balance(self, rng):
        inputs = [rng.integers(0, 10**9, 128) for _ in range(8)]
        _, outs = run_bitonic(inputs)
        assert all(len(o) == 128 for o in outs)

    def test_non_power_of_two_rejected(self, rng):
        inputs = [rng.integers(0, 100, 16) for _ in range(3)]
        with pytest.raises(ConfigError, match="power-of-two"):
            run_bitonic(inputs)

    def test_unequal_sizes_rejected(self, rng):
        inputs = [rng.integers(0, 100, 16), rng.integers(0, 100, 17)]
        with pytest.raises(ConfigError, match="equal local sizes"):
            run_bitonic(inputs)

    def test_exchange_count_is_theta_log_squared(self, rng):
        """log2(p)(log2(p)+1)/2 compare-exchange stages, each one exchange."""
        p = 8
        inputs = [rng.integers(0, 10**9, 64) for _ in range(p)]
        res, _ = run_bitonic(inputs)
        lg = 3
        assert res.trace.count_collectives("exchange") == lg * (lg + 1) // 2

    def test_moves_all_data_every_stage(self, rng):
        """The paper's criticism: Θ(log p) full-data movements."""
        p, n = 8, 256
        inputs = [rng.integers(0, 10**9, n) for _ in range(p)]
        res, _ = run_bitonic(inputs)
        exchanged = sum(
            r.nbytes for r in res.trace.records if r.op == "exchange"
        )
        stages = 6  # log2(8) * (log2(8)+1) / 2
        assert exchanged == stages * p * n * 8

    def test_duplicates_fine(self):
        inputs = [np.full(64, 7, dtype=np.int64) for _ in range(4)]
        _, outs = run_bitonic(inputs)
        verify_sorted_output(inputs, outs)

    def test_presorted_descending(self):
        keys = np.arange(1024)[::-1]
        inputs = [keys[i * 256:(i + 1) * 256].copy() for i in range(4)]
        _, outs = run_bitonic(inputs)
        verify_sorted_output(inputs, outs)
