"""Tests for the exact-splitting baseline (Cheng et al., §2.1)."""

import numpy as np

from repro.baselines.exact_split import exact_split_sort_program
from repro.bsp import BSPEngine
from repro.metrics import verify_sorted_output


def run_exact(inputs, **kwargs):
    engine = BSPEngine(len(inputs))
    res = engine.run(
        exact_split_sort_program, rank_args=[(x,) for x in inputs], **kwargs
    )
    return res, [r[0].keys for r in res.returns], res.returns[0][1]


def unique_shards(rng, p, n_per):
    keys = rng.permutation(np.arange(p * n_per, dtype=np.int64) * 7 + 3)
    return [chunk.copy() for chunk in np.array_split(keys, p)]


class TestPerfectBalance:
    def test_loads_differ_by_at_most_one(self, rng):
        inputs = unique_shards(rng, 8, 1000)
        _, outs, stats = run_exact(inputs)
        loads = [len(o) for o in outs]
        assert max(loads) - min(loads) <= 1
        assert stats.all_exact
        verify_sorted_output(inputs, outs)

    def test_uneven_inputs_still_perfect(self, rng):
        keys = rng.permutation(np.arange(3000, dtype=np.int64) * 11)
        sizes = [100, 1400, 500, 1000]
        inputs = []
        start = 0
        for s in sizes:
            inputs.append(keys[start:start + s].copy())
            start += s
        _, outs, _ = run_exact(inputs)
        loads = [len(o) for o in outs]
        assert max(loads) - min(loads) <= 1
        verify_sorted_output(inputs, outs)

    def test_float_keys(self, rng):
        inputs = [np.unique(rng.normal(size=1200))[:1000] for _ in range(4)]
        # Ensure global uniqueness by offsetting each rank.
        inputs = [x + 10.0 * r for r, x in enumerate(inputs)]
        _, outs, stats = run_exact(inputs)
        loads = [len(o) for o in outs]
        assert max(loads) - min(loads) <= 1
        assert stats.all_exact

    def test_single_rank(self, rng):
        inputs = [rng.permutation(np.arange(500, dtype=np.int64))]
        _, outs, _ = run_exact(inputs)
        assert np.array_equal(outs[0], np.arange(500))


class TestRounds:
    def test_rounds_bounded_by_log_keyrange(self, rng):
        inputs = unique_shards(rng, 8, 2000)
        _, _, stats = run_exact(inputs)
        key_range = 8 * 2000 * 7
        assert stats.rounds <= np.log2(key_range) + 2

    def test_probes_per_round_at_most_p(self, rng):
        inputs = unique_shards(rng, 16, 500)
        _, _, stats = run_exact(inputs)
        assert stats.probes_total <= stats.rounds * 15

    def test_more_rounds_than_hss(self, rng):
        """The trade-off the paper maps: exactness costs log N rounds."""
        from repro.core.api import hss_sort
        from repro.core.config import HSSConfig

        inputs = unique_shards(rng, 8, 2000)
        _, _, exact_stats = run_exact(inputs)
        hss = hss_sort(inputs, config=HSSConfig(eps=0.05, seed=1))
        assert exact_stats.rounds > hss.splitter_stats.num_rounds


class TestFailureModes:
    def test_heavy_duplicates_break_exactness(self):
        """A constant input cannot be split exactly: the pinch resolves to
        the hot key and one rank receives everything (the §2.1 algorithm
        presumes distinct keys; tag upstream per §4.3)."""
        inputs = [np.full(500, 7, dtype=np.int64) for _ in range(4)]
        _, outs, stats = run_exact(inputs, max_rounds=80)
        verify_sorted_output(inputs, outs)  # still a sorted permutation
        loads = sorted(len(o) for o in outs)
        assert loads[-1] == 2000  # all keys collapse onto one bucket

    def test_registry_entry(self, rng):
        from repro.core.api import parallel_sort

        inputs = unique_shards(rng, 4, 500)
        run = parallel_sort(inputs, "exact-split", eps=0.05)
        assert run.imbalance <= 1.01
