"""Tests for sample sort baselines (regular + block random sampling)."""

import numpy as np

from repro.bsp import BSPEngine
from repro.baselines.sample_sort import (
    sample_sort_random_program,
    sample_sort_regular_program,
)
from repro.metrics import check_load_balance, verify_sorted_output


def run_program(program, inputs, **kwargs):
    engine = BSPEngine(len(inputs))
    res = engine.run(program, rank_args=[(x,) for x in inputs], **kwargs)
    return res, [r[0].keys for r in res.returns], res.returns[0][1]


class TestRegularSampling:
    def test_sorts(self, small_shards):
        _, outs, _ = run_program(
            sample_sort_regular_program, small_shards, eps=0.1
        )
        verify_sorted_output(small_shards, outs)

    def test_lemma_4_1_1_load_guarantee(self, rng):
        """s = p/eps gives deterministic (1+eps) balance."""
        inputs = [rng.integers(0, 10**9, 2000) for _ in range(8)]
        _, outs, _ = run_program(
            sample_sort_regular_program, inputs, eps=0.05
        )
        check_load_balance(outs, 0.05)

    def test_oversample_recorded(self, small_shards):
        _, _, stats = run_program(
            sample_sort_regular_program, small_shards, eps=0.1
        )
        assert stats.oversample == int(np.ceil(8 / 0.1))
        assert stats.total_sample > 0

    def test_sample_size_quadratic_in_p(self, rng):
        """The p²/ε total sample (the paper's core criticism)."""
        results = {}
        for p in (4, 8):
            inputs = [rng.integers(0, 10**9, 2000) for _ in range(p)]
            _, _, stats = run_program(
                sample_sort_regular_program, inputs, eps=0.2
            )
            results[p] = stats.total_sample
        # Doubling p should ~quadruple the sample.
        assert results[8] >= 3.0 * results[4]

    def test_custom_oversample(self, small_shards):
        _, outs, stats = run_program(
            sample_sort_regular_program, small_shards, eps=0.1, oversample=16
        )
        assert stats.oversample == 16
        verify_sorted_output(small_shards, outs)

    def test_deterministic(self, small_shards):
        _, outs_a, _ = run_program(sample_sort_regular_program, small_shards, eps=0.1)
        _, outs_b, _ = run_program(sample_sort_regular_program, small_shards, eps=0.1)
        for a, b in zip(outs_a, outs_b):
            assert np.array_equal(a, b)


class TestRandomSampling:
    def test_sorts(self, small_shards):
        _, outs, _ = run_program(
            sample_sort_random_program, small_shards, eps=0.2, seed=3
        )
        verify_sorted_output(small_shards, outs)

    def test_balance_with_theorem_oversampling(self, rng):
        inputs = [rng.integers(0, 10**9, 3000) for _ in range(4)]
        _, outs, _ = run_program(
            sample_sort_random_program, inputs, eps=0.3, seed=1
        )
        # Thm 4.1.1 holds w.h.p.; with these sizes failure is ~1/N.
        check_load_balance(outs, 0.3)

    def test_forced_small_sample_still_sorts(self, small_shards):
        _, outs, stats = run_program(
            sample_sort_random_program,
            small_shards,
            eps=0.2,
            seed=2,
            oversample=4,
        )
        assert stats.oversample == 4
        verify_sorted_output(small_shards, outs)

    def test_seed_changes_sample(self, small_shards):
        _, _, s1 = run_program(
            sample_sort_random_program, small_shards, eps=0.2, seed=1, oversample=8
        )
        _, _, s2 = run_program(
            sample_sort_random_program, small_shards, eps=0.2, seed=2, oversample=8
        )
        assert not np.array_equal(s1.splitters, s2.splitters)
