"""Tests for over-partitioning (Li & Sevcik, distributed adaptation)."""

import numpy as np
import pytest

from repro.baselines.over_partition import (
    assign_buckets_greedy,
    over_partition_program,
)
from repro.bsp import BSPEngine
from repro.errors import ConfigError
from repro.metrics import load_imbalance, verify_sorted_output


def run_op(inputs, **kwargs):
    engine = BSPEngine(len(inputs))
    res = engine.run(over_partition_program, rank_args=[(x,) for x in inputs], **kwargs)
    return res, [r[0].keys for r in res.returns], res.returns[0][1]


class TestGreedyAssignment:
    def test_uniform_buckets_even_split(self):
        sizes = np.full(16, 100, dtype=np.int64)
        owner = assign_buckets_greedy(sizes, 4)
        assert np.array_equal(np.bincount(owner), [4, 4, 4, 4])

    def test_owner_non_decreasing(self, rng):
        sizes = rng.integers(1, 1000, 64).astype(np.int64)
        owner = assign_buckets_greedy(sizes, 8)
        assert np.all(np.diff(owner) >= 0)
        assert owner[0] == 0 and owner[-1] == 7

    def test_every_proc_gets_a_bucket(self, rng):
        sizes = rng.integers(1, 100, 20).astype(np.int64)
        owner = assign_buckets_greedy(sizes, 10)
        assert len(np.unique(owner)) == 10

    def test_balances_variable_buckets(self, rng):
        sizes = rng.integers(1, 1000, 256).astype(np.int64)
        owner = assign_buckets_greedy(sizes, 8)
        loads = np.bincount(owner, weights=sizes, minlength=8)
        assert loads.max() / loads.mean() < 1.3

    def test_too_few_buckets(self):
        with pytest.raises(ConfigError):
            assign_buckets_greedy(np.array([5, 5]), 3)


class TestOverPartitionSort:
    def test_sorts(self, small_shards):
        _, outs, _ = run_op(small_shards, eps=0.1, seed=2)
        verify_sorted_output(small_shards, outs)

    def test_default_ratio_log_p(self, small_shards):
        _, _, stats = run_op(small_shards, eps=0.1)
        assert stats.ratio == int(np.ceil(np.log2(8))) + 1
        assert stats.bucket_count == stats.ratio * 8

    def test_load_balance_beats_plain_splitters(self, rng):
        """Over-partitioning's pitch: good balance from a modest sample."""
        inputs = [rng.integers(0, 10**9, 2000) for _ in range(8)]
        _, outs, _ = run_op(inputs, eps=0.1, seed=1, ratio=8, oversample=16)
        assert load_imbalance(outs) < 1.15

    def test_stats_accounting(self, small_shards):
        _, _, stats = run_op(small_shards, eps=0.1, ratio=4, oversample=8)
        assert stats.bucket_count == 32
        assert stats.buckets_per_proc.sum() == 32
        assert stats.total_sample > 0

    def test_invalid_params(self, small_shards):
        with pytest.raises(ConfigError):
            run_op(small_shards, ratio=0)
        with pytest.raises(ConfigError):
            run_op(small_shards, oversample=0)

    def test_skewed_input(self, rng):
        inputs = [
            (rng.lognormal(0, 4, 1500) * 1e5).astype(np.int64) for _ in range(8)
        ]
        _, outs, _ = run_op(inputs, eps=0.1, seed=3)
        verify_sorted_output(inputs, outs)
