"""Tests for classic histogram sort (key-space probe bisection)."""

import numpy as np
import pytest

from repro.bsp import BSPEngine
from repro.baselines.histogram_sort import histogram_sort_program, keyspace_probes
from repro.core.splitters import SplitterState
from repro.errors import ConfigError, VerificationError
from repro.metrics import check_load_balance, verify_sorted_output


def run_histogram(inputs, **kwargs):
    engine = BSPEngine(len(inputs))
    res = engine.run(histogram_sort_program, rank_args=[(x,) for x in inputs], **kwargs)
    return res, [r[0].keys for r in res.returns], res.returns[0][1]


class TestCorrectness:
    def test_sorts_uniform(self, small_shards):
        _, outs, stats = run_histogram(small_shards, eps=0.05)
        verify_sorted_output(small_shards, outs, 0.05)
        assert stats.all_finalized

    def test_float_keys(self, rng):
        inputs = [rng.normal(size=800) for _ in range(4)]
        _, outs, _ = run_histogram(inputs, eps=0.1)
        verify_sorted_output(inputs, outs, 0.1)

    def test_guaranteed_balance(self, rng):
        inputs = [rng.integers(0, 10**9, 2000) for _ in range(8)]
        _, outs, _ = run_histogram(inputs, eps=0.02)
        check_load_balance(outs, 0.02)

    def test_probes_per_round_recorded(self, small_shards):
        _, _, stats = run_histogram(small_shards, eps=0.05)
        assert stats.rounds == len(stats.probes_per_round)
        assert stats.total_probes == sum(stats.probes_per_round)

    def test_invalid_probes_per_splitter(self, small_shards):
        with pytest.raises(ConfigError):
            run_histogram(small_shards, probes_per_splitter=0)

    def test_round_cap_raises(self, rng):
        # Extremely skewed keys + tight eps + 1 round cannot finalize.
        inputs = [
            np.concatenate(
                (rng.integers(0, 10, 990), rng.integers(0, 2**60, 10))
            )
            for _ in range(4)
        ]
        with pytest.raises(VerificationError, match="did not finalize"):
            run_histogram(inputs, eps=0.01, max_rounds=1)


class TestSkewSensitivity:
    @staticmethod
    def _skewed(rng, p, n):
        """Duplicate-free skew: 90% of mass in a 2^-39 sliver of key space."""
        return [
            np.where(
                rng.random(n) < 0.9,
                rng.integers(0, 2**20, n),
                rng.integers(2**59, 2**60, n),
            )
            for _ in range(p)
        ]

    def test_skewed_needs_more_rounds_than_uniform(self, rng):
        """The distribution dependence HSS removes (Fig 6.2 mechanism)."""
        p, n = 8, 2000
        uniform = [rng.integers(0, 2**40, n) for _ in range(p)]
        skewed = self._skewed(rng, p, n)
        _, _, stats_u = run_histogram(uniform, eps=0.05)
        _, _, stats_s = run_histogram(skewed, eps=0.05)
        assert stats_s.rounds > stats_u.rounds

    def test_hss_rounds_insensitive_to_same_skew(self, rng):
        """Control: HSS round counts barely move between the same inputs."""
        from repro.core.api import hss_sort
        from repro.core.config import HSSConfig

        p, n = 8, 2000
        uniform = [rng.integers(0, 2**40, n) for _ in range(p)]
        skewed = self._skewed(rng, p, n)
        cfg = HSSConfig.constant_oversampling(5.0, eps=0.05, seed=3)
        r_u = hss_sort(uniform, config=cfg).splitter_stats.num_rounds
        r_s = hss_sort(skewed, config=cfg).splitter_stats.num_rounds
        assert abs(r_u - r_s) <= 1


class TestKeyspaceProbes:
    def test_initial_probes_span_range(self):
        state = SplitterState(1000, 4, 0.01, key_dtype=np.float64)
        probes = keyspace_probes(state, 3, 0.0, 1.0)
        assert len(probes) > 0
        assert probes.min() >= 0.0 and probes.max() <= 1.0

    def test_no_probes_when_finalized(self):
        state = SplitterState(100, 2, 0.1, key_dtype=np.float64)
        state.update(np.array([0.5]), np.array([50]))
        assert len(keyspace_probes(state, 3, 0.0, 1.0)) == 0

    def test_probes_inside_open_intervals(self):
        state = SplitterState(1000, 2, 0.001, key_dtype=np.float64)
        state.update(np.array([0.2, 0.8]), np.array([300, 700]))
        probes = keyspace_probes(state, 3, 0.0, 1.0)
        assert np.all((probes >= 0.2) & (probes <= 0.8))

    def test_signed_range_wider_than_int64_does_not_wrap(self):
        # Regression: an interval spanning [-2^62, 2^62] has width 2^63,
        # which wraps under signed int64 subtraction; the probe grid must
        # still spread across the whole range instead of collapsing to
        # a single lo+1 probe.
        state = SplitterState(1000, 4, 0.1, key_dtype=np.int64)
        probes = keyspace_probes(state, 3, -(2**62), 2**62)
        assert len(probes) >= 4
        assert np.all(np.diff(probes) > 0)
        assert probes[0] > -(2**62) and probes[-1] < 2**62
        # Spread, not bunched: the extremes sit in opposite halves.
        assert probes[0] < 0 < probes[-1]
