"""Tests for the distributed LSD radix sort."""

import numpy as np
import pytest

from repro.baselines.radix import radix_sort_program
from repro.bsp import BSPEngine
from repro.errors import ConfigError
from repro.metrics import verify_sorted_output


def run_radix(inputs, **kwargs):
    engine = BSPEngine(len(inputs))
    res = engine.run(radix_sort_program, rank_args=[(x,) for x in inputs], **kwargs)
    outs = [r[0] for r in res.returns]
    stats = res.returns[0][1]
    return res, outs, stats


class TestRadix:
    def test_sorts_unsigned(self, rng):
        inputs = [rng.integers(0, 2**40, 500, dtype=np.uint64) for _ in range(8)]
        _, outs, _ = run_radix(inputs)
        verify_sorted_output(inputs, outs)

    def test_sorts_signed_with_negatives(self, rng):
        inputs = [
            rng.integers(-(2**30), 2**30, 500, dtype=np.int64) for _ in range(8)
        ]
        _, outs, _ = run_radix(inputs)
        verify_sorted_output(inputs, outs)

    def test_float_rejected(self, rng):
        inputs = [rng.normal(size=100) for _ in range(4)]
        with pytest.raises(ConfigError, match="integer"):
            run_radix(inputs)

    def test_single_rank(self, rng):
        inputs = [rng.integers(0, 1000, 500, dtype=np.int64)]
        _, outs, stats = run_radix(inputs)
        assert np.array_equal(outs[0], np.sort(inputs[0]))
        assert stats.passes == 0

    def test_pass_count_tracks_key_bits(self, rng):
        p = 8  # 3 bits/pass
        narrow = [rng.integers(0, 2**9, 300, dtype=np.uint64) for _ in range(p)]
        wide = [rng.integers(0, 2**45, 300, dtype=np.uint64) for _ in range(p)]
        _, _, s_narrow = run_radix(narrow)
        _, _, s_wide = run_radix(wide)
        assert s_wide.passes > s_narrow.passes
        assert s_narrow.bits_per_pass == 3

    def test_one_alltoall_per_pass(self, rng):
        """The paper's criticism: full data exchange every pass."""
        inputs = [rng.integers(0, 2**12, 300, dtype=np.uint64) for _ in range(8)]
        res, _, stats = run_radix(inputs)
        assert res.trace.count_collectives("alltoallv") == stats.passes

    def test_forced_key_bits(self, rng):
        inputs = [rng.integers(0, 2**10, 200, dtype=np.uint64) for _ in range(4)]
        _, outs, stats = run_radix(inputs, key_bits=40)
        assert stats.passes == -(-40 // stats.bits_per_pass)
        verify_sorted_output(inputs, outs)

    def test_constant_top_bits_skipped(self, rng):
        """Signed non-negative keys must not all land on one rank."""
        inputs = [rng.integers(0, 2**20, 500, dtype=np.int64) for _ in range(8)]
        _, outs, _ = run_radix(inputs)
        nonempty = sum(1 for o in outs if len(o))
        assert nonempty >= 2

    def test_duplicates(self):
        inputs = [np.full(100, 3, dtype=np.uint64) for _ in range(4)]
        _, outs, _ = run_radix(inputs)
        verify_sorted_output(inputs, outs)

    def test_empty_rank(self, rng):
        inputs = [
            rng.integers(0, 2**16, 300, dtype=np.uint64),
            np.empty(0, dtype=np.uint64),
            rng.integers(0, 2**16, 300, dtype=np.uint64),
            np.empty(0, dtype=np.uint64),
        ]
        _, outs, _ = run_radix(inputs)
        verify_sorted_output(inputs, outs)
