"""Tests for the full scanning-based sort (§3.2 end-to-end)."""

import numpy as np

from repro.baselines.scanning_sort import scanning_sort_program
from repro.bsp import BSPEngine
from repro.core.config import HSSConfig
from repro.metrics import check_load_balance, verify_sorted_output


def run_scanning(inputs, eps=0.1, seed=0, **cfg_kwargs):
    engine = BSPEngine(len(inputs))
    cfg = HSSConfig(eps=eps, seed=seed, **cfg_kwargs)
    res = engine.run(scanning_sort_program, rank_args=[(x,) for x in inputs], cfg=cfg)
    return res, [r[0].keys for r in res.returns], res.returns[0][1]


class TestScanningSort:
    def test_sorts(self, small_shards):
        _, outs, _ = run_scanning(small_shards)
        verify_sorted_output(small_shards, outs)

    def test_single_round(self, small_shards):
        _, _, stats = run_scanning(small_shards)
        assert stats.num_rounds == 1
        assert stats.method == "scanning"
        assert stats.all_finalized

    def test_theorem_balance(self, rng):
        inputs = [rng.integers(0, 10**9, 4000) for _ in range(8)]
        _, outs, _ = run_scanning(inputs, eps=0.1, seed=7)
        check_load_balance(outs, 0.1)

    def test_sample_size_near_2p_over_eps(self, rng):
        inputs = [rng.integers(0, 10**9, 4000) for _ in range(8)]
        eps = 0.1
        _, _, stats = run_scanning(inputs, eps=eps, seed=1)
        expected = 2 * 8 / eps
        assert 0.5 * expected <= stats.total_sample <= 2.0 * expected

    def test_smaller_sample_than_one_round_hss(self, rng):
        """§3.2: the scan needs 2p/eps vs HSS's 2p·ln p/eps."""
        from repro.core.api import hss_sort

        inputs = [rng.integers(0, 10**9, 4000) for _ in range(8)]
        _, _, scan_stats = run_scanning(inputs, eps=0.05, seed=1)
        hss = hss_sort(inputs, config=HSSConfig.one_round(0.05, seed=1))
        assert scan_stats.total_sample < hss.splitter_stats.total_sample

    def test_duplicates_with_tagging(self):
        from repro.workloads.duplicates import hotspot_shards

        shards = hotspot_shards(8, 500, 3)
        _, outs, _ = run_scanning(shards, eps=0.1, seed=1, tag_duplicates=True)
        verify_sorted_output(shards, outs, 0.1)

    def test_skewed(self, rng):
        inputs = [
            (rng.lognormal(0, 5, 2000) * 1e4).astype(np.int64) for _ in range(8)
        ]
        _, outs, _ = run_scanning(inputs, eps=0.1, seed=2)
        verify_sorted_output(inputs, outs, 0.1)
