"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; tests needing other seeds spawn their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_shards(rng) -> list[np.ndarray]:
    """8 ranks x 500 uniform int64 keys — the workhorse correctness input."""
    return [rng.integers(0, 10**9, 500) for _ in range(8)]


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running statistical or scale tests"
    )
