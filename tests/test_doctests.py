"""Execute doctest examples embedded in public-API docstrings."""

import doctest

import pytest

import repro
import repro.algorithms
import repro.algorithms.dataset
import repro.algorithms.sorter
import repro.algorithms.spec
import repro.bsp.node
import repro.core.api
import repro.experiments
import repro.experiments.scenario
import repro.machines
import repro.machines.registry
import repro.machines.spec
import repro.machines.topologies
import repro.runtime
import repro.runtime.base
import repro.telemetry.metrics
import repro.telemetry.spans
import repro.utils.rng

MODULES = [
    repro,
    repro.algorithms,
    repro.algorithms.dataset,
    repro.algorithms.sorter,
    repro.algorithms.spec,
    repro.bsp.node,
    repro.core.api,
    repro.experiments,
    repro.experiments.scenario,
    repro.machines,
    repro.machines.registry,
    repro.machines.spec,
    repro.machines.topologies,
    repro.runtime,
    repro.runtime.base,
    repro.telemetry.metrics,
    repro.telemetry.spans,
    repro.utils.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert result.failed == 0
    assert result.attempted >= 0
