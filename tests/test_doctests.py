"""Execute doctest examples embedded in public-API docstrings."""

import doctest

import pytest

import repro
import repro.algorithms
import repro.algorithms.dataset
import repro.algorithms.sorter
import repro.algorithms.spec
import repro.bsp.node
import repro.core.api
import repro.utils.rng

MODULES = [
    repro,
    repro.algorithms,
    repro.algorithms.dataset,
    repro.algorithms.sorter,
    repro.algorithms.spec,
    repro.bsp.node,
    repro.core.api,
    repro.utils.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert result.failed == 0
    assert result.attempted >= 0
