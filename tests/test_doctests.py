"""Execute doctest examples embedded in public-API docstrings."""

import doctest

import pytest

import repro
import repro.bsp.node
import repro.core.api
import repro.utils.rng

MODULES = [
    repro,
    repro.bsp.node,
    repro.core.api,
    repro.utils.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tested = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    ).failed, doctest.testmod(module, optionflags=doctest.ELLIPSIS).attempted
    assert failures == 0
    assert tested >= 0
