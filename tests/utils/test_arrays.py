"""Equivalence tests: the sort-based unique helpers vs ``np.unique``.

The hot paths replaced NumPy's hash-based ``np.unique`` with
sort+adjacent-diff constructions (:func:`repro.utils.arrays.sorted_unique`
and :func:`~repro.utils.arrays.sorted_unique_pairs`); these tests pin the
exact-output equivalence on every payload shape the call sites produce —
plain integers, floats, duplicates-heavy draws, and the §4.3 structured
(tagged) probe dtype.
"""

import numpy as np
import pytest

from repro.utils.arrays import sorted_unique, sorted_unique_pairs

TAGGED_DTYPE = np.dtype(
    [("key", "<i8"), ("pe", "<i8"), ("idx", "<i8")]
)


class TestSortedUnique:
    @pytest.mark.parametrize("dtype", [np.int64, np.uint64, np.float64])
    def test_matches_np_unique_on_random_draws(self, dtype):
        rng = np.random.default_rng(7)
        for size in (0, 1, 2, 17, 1000):
            values = rng.integers(0, 50, size).astype(dtype)
            np.testing.assert_array_equal(
                sorted_unique(values), np.unique(values)
            )

    def test_all_duplicates(self):
        values = np.full(64, 3, dtype=np.int64)
        np.testing.assert_array_equal(sorted_unique(values), [3])

    def test_structured_dtype_matches_np_unique(self):
        # The tagged key space dedups (key, pe, idx) triples; np.sort on a
        # structured dtype orders lexicographically by field, exactly like
        # np.unique.
        rng = np.random.default_rng(11)
        values = np.empty(200, dtype=TAGGED_DTYPE)
        values["key"] = rng.integers(0, 10, 200)
        values["pe"] = rng.integers(0, 4, 200)
        values["idx"] = rng.integers(0, 5, 200)
        np.testing.assert_array_equal(
            sorted_unique(values), np.unique(values)
        )

    def test_does_not_mutate_input(self):
        values = np.array([3, 1, 2, 1], dtype=np.int64)
        keep = values.copy()
        sorted_unique(values)
        np.testing.assert_array_equal(values, keep)


class TestSortedUniquePairs:
    def _reference(self, lo, hi):
        pairs, counts = np.unique(
            np.column_stack((lo, hi)), axis=0, return_counts=True
        )
        return pairs[:, 0], pairs[:, 1], counts

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_np_unique_axis0(self, seed):
        rng = np.random.default_rng(seed)
        lo = rng.integers(-10, 10, 300)
        hi = rng.integers(-10, 10, 300)
        l_ref, h_ref, c_ref = self._reference(lo, hi)
        l_out, h_out, c_out = sorted_unique_pairs(lo, hi)
        np.testing.assert_array_equal(l_out, l_ref)
        np.testing.assert_array_equal(h_out, h_ref)
        np.testing.assert_array_equal(c_out, c_ref)

    def test_empty(self):
        lo = np.empty(0, dtype=np.int64)
        l_out, h_out, c_out = sorted_unique_pairs(lo, lo.copy())
        assert len(l_out) == len(h_out) == len(c_out) == 0
        assert c_out.dtype == np.int64

    def test_counts_sum_to_input_length(self):
        rng = np.random.default_rng(5)
        lo = rng.integers(0, 3, 100)
        hi = rng.integers(0, 3, 100)
        _, _, counts = sorted_unique_pairs(lo, hi)
        assert counts.sum() == 100

    def test_signed_extremes(self):
        # The histogram-sort intervals span the whole dtype on round one;
        # the lexsort path must order extreme signed values like np.unique.
        lo = np.array([-(2**62), -(2**62), 5], dtype=np.int64)
        hi = np.array([2**62, 2**62, 9], dtype=np.int64)
        l_out, h_out, c_out = sorted_unique_pairs(lo, hi)
        l_ref, h_ref, c_ref = self._reference(lo, hi)
        np.testing.assert_array_equal(l_out, l_ref)
        np.testing.assert_array_equal(h_out, h_ref)
        np.testing.assert_array_equal(c_out, c_ref)
