"""Tests for Morton encoding (bit interleaving)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bits import (
    MORTON_BITS_PER_DIM,
    MORTON_COORD_MAX,
    compact1by2,
    deinterleave_bits_3d,
    interleave_bits_3d,
    morton_decode_3d,
    morton_encode_3d,
    part1by2,
)


class TestPartCompact:
    def test_zero(self):
        assert part1by2(np.array([0], dtype=np.uint64))[0] == 0

    def test_one(self):
        assert part1by2(np.array([1], dtype=np.uint64))[0] == 1

    def test_two(self):
        # bit 1 moves to bit 3.
        assert part1by2(np.array([2], dtype=np.uint64))[0] == 8

    def test_max_coordinate(self):
        spread = part1by2(np.array([MORTON_COORD_MAX], dtype=np.uint64))
        # Every third bit set, 21 of them.
        assert bin(int(spread[0])).count("1") == MORTON_BITS_PER_DIM
        assert compact1by2(spread)[0] == MORTON_COORD_MAX

    @given(st.integers(min_value=0, max_value=MORTON_COORD_MAX))
    def test_roundtrip(self, value):
        x = np.array([value], dtype=np.uint64)
        assert compact1by2(part1by2(x))[0] == value

    @given(st.integers(min_value=0, max_value=MORTON_COORD_MAX))
    def test_spread_bits_are_every_third(self, value):
        spread = int(part1by2(np.array([value], dtype=np.uint64))[0])
        # No bits outside positions 0, 3, 6, ...
        mask = 0x1249249249249249
        assert spread & ~mask == 0


class TestInterleave3D:
    def test_distinct_axes(self):
        x = np.array([1], dtype=np.uint64)
        zero = np.array([0], dtype=np.uint64)
        assert interleave_bits_3d(x, zero, zero)[0] == 1
        assert interleave_bits_3d(zero, x, zero)[0] == 2
        assert interleave_bits_3d(zero, zero, x)[0] == 4

    @given(
        st.integers(0, MORTON_COORD_MAX),
        st.integers(0, MORTON_COORD_MAX),
        st.integers(0, MORTON_COORD_MAX),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, ix, iy, iz):
        code = interleave_bits_3d(
            np.array([ix], dtype=np.uint64),
            np.array([iy], dtype=np.uint64),
            np.array([iz], dtype=np.uint64),
        )
        rx, ry, rz = deinterleave_bits_3d(code)
        assert (rx[0], ry[0], rz[0]) == (ix, iy, iz)

    def test_codes_fit_63_bits(self):
        m = np.array([MORTON_COORD_MAX], dtype=np.uint64)
        code = interleave_bits_3d(m, m, m)
        assert int(code[0]) < (1 << 63)


class TestMortonFloat:
    def test_origin_and_corner(self):
        code = morton_encode_3d(
            np.array([0.0]), np.array([0.0]), np.array([0.0])
        )
        assert code[0] == 0
        code = morton_encode_3d(
            np.array([1.0]), np.array([1.0]), np.array([1.0])
        )
        assert int(code[0]) == (1 << 63) - 1

    def test_clipping(self):
        code = morton_encode_3d(
            np.array([-5.0]), np.array([2.0]), np.array([0.5])
        )
        # Out-of-box coordinates clip rather than wrap.
        x, y, z = morton_decode_3d(code)
        assert x[0] == 0.0 and abs(y[0] - 1.0) < 1e-9

    def test_monotone_along_axis(self):
        xs = np.linspace(0, 1, 100)
        fixed = np.zeros(100)
        codes = morton_encode_3d(xs, fixed, fixed)
        assert np.all(np.diff(codes.astype(np.int64)) >= 0)

    def test_decode_approximates_encode(self, rng):
        pts = rng.random((200, 3))
        codes = morton_encode_3d(pts[:, 0], pts[:, 1], pts[:, 2])
        x, y, z = morton_decode_3d(codes)
        resolution = 1.0 / MORTON_COORD_MAX
        assert np.max(np.abs(x - pts[:, 0])) <= resolution * 2
        assert np.max(np.abs(z - pts[:, 2])) <= resolution * 2

    def test_locality(self):
        # Nearby points share high Morton bits more often than far ones.
        a = morton_encode_3d(np.array([0.5]), np.array([0.5]), np.array([0.5]))
        b = morton_encode_3d(np.array([0.5 + 1e-7]), np.array([0.5]), np.array([0.5]))
        c = morton_encode_3d(np.array([0.9]), np.array([0.1]), np.array([0.2]))
        assert abs(int(a[0]) - int(b[0])) < abs(int(a[0]) - int(c[0]))

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            morton_encode_3d(
                np.array([0.5]), np.array([0.5]), np.array([0.5]), lo=1.0, hi=1.0
            )
