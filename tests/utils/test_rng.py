"""Tests for the deterministic RNG tree."""

import numpy as np

from repro.utils.rng import RngTree, rng_or_default, spawn_rngs


class TestRngTree:
    def test_same_name_same_stream(self):
        a = RngTree(7).generator("x", 3).integers(0, 1 << 30, 10)
        b = RngTree(7).generator("x", 3).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_different_indices_differ(self):
        a = RngTree(7).generator("x", 0).integers(0, 1 << 30, 10)
        b = RngTree(7).generator("x", 1).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        a = RngTree(7).generator("x", 0).integers(0, 1 << 30, 10)
        b = RngTree(7).generator("y", 0).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngTree(1).generator("x", 0).integers(0, 1 << 30, 10)
        b = RngTree(2).generator("x", 0).integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_generators_list(self):
        gens = RngTree(0).generators("ranks", 5)
        assert len(gens) == 5
        draws = [g.integers(0, 1 << 30) for g in gens]
        assert len(set(draws)) > 1

    def test_subtree_independent_and_deterministic(self):
        s1 = RngTree(5).subtree("child").generator("x").integers(0, 1 << 30, 5)
        s2 = RngTree(5).subtree("child").generator("x").integers(0, 1 << 30, 5)
        parent = RngTree(5).generator("x").integers(0, 1 << 30, 5)
        assert np.array_equal(s1, s2)
        assert not np.array_equal(s1, parent)

    def test_seed_property(self):
        assert RngTree(42).seed == 42


class TestSpawnRngs:
    def test_count_and_independence(self):
        gens = spawn_rngs(0, 4)
        assert len(gens) == 4
        a, b = gens[0].integers(0, 1 << 30, 8), gens[1].integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        a = spawn_rngs(9, 2)[1].integers(0, 1 << 30, 8)
        b = spawn_rngs(9, 2)[1].integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)


class TestRngOrDefault:
    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_or_default(g) is g

    def test_from_int(self):
        a = rng_or_default(3).integers(0, 100, 5)
        b = rng_or_default(3).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(rng_or_default(None), np.random.Generator)
