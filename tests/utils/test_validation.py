"""Tests for argument validation helpers."""

import pytest

from repro.errors import ConfigError
from repro.utils.validation import (
    check_epsilon,
    check_positive_int,
    check_probability,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises_with_message(self):
        with pytest.raises(ConfigError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    @pytest.mark.parametrize("value", [1, 5, 10**9])
    def test_valid(self, value):
        assert check_positive_int(value, "x") == value

    @pytest.mark.parametrize("value", [0, -1, 1.5, "three", None])
    def test_invalid(self, value):
        with pytest.raises(ConfigError):
            check_positive_int(value, "x")

    def test_float_integral_accepted(self):
        assert check_positive_int(4.0, "x") == 4


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_invalid(self, value):
        with pytest.raises(ConfigError):
            check_probability(value, "p")


class TestCheckEpsilon:
    @pytest.mark.parametrize("value", [0.001, 0.05, 1.0])
    def test_valid(self, value):
        assert check_epsilon(value) == value

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5])
    def test_invalid(self, value):
        with pytest.raises(ConfigError):
            check_epsilon(value)
