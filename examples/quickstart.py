#!/usr/bin/env python
"""Quickstart: sort a distributed dataset with Histogram Sort with Sampling.

Creates a simulated 16-processor machine, generates one million uniform
64-bit keys spread across the processors, sorts them with HSS at a 5%
load-imbalance budget, and prints what the algorithm did: histogramming
rounds, sample sizes, interval shrinkage, the modeled phase breakdown and
the achieved balance.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.api import hss_sort
from repro.core.config import HSSConfig
from repro.metrics import verify_sorted_output

P = 16               # simulated processors
KEYS_PER_PROC = 62_500  # 1M keys total
EPS = 0.05           # load-imbalance budget: max load <= (1+eps) * N/p


def main() -> None:
    rng = np.random.default_rng(2019)
    inputs = [rng.integers(0, 2**62, KEYS_PER_PROC) for _ in range(P)]

    # The §6.1.2 configuration: expected 5p sample keys per histogramming
    # round, iterate until every splitter is inside its tolerance window.
    cfg = HSSConfig.constant_oversampling(5.0, eps=EPS, seed=1)
    run = hss_sort(inputs, config=cfg)

    # The output is the same multiset, globally sorted, within the budget —
    # hss_sort already verified this (verify=True); do it again explicitly
    # to show the API.
    verify_sorted_output(inputs, run.shards, EPS)

    stats = run.splitter_stats
    print(f"sorted {P * KEYS_PER_PROC:,} keys on {P} simulated processors")
    print(f"achieved imbalance : {run.imbalance:.4f}  (budget {1 + EPS})")
    print(f"histogramming rounds: {stats.num_rounds}")
    print(f"total sample        : {stats.total_sample} keys "
          f"({stats.total_sample / (P * KEYS_PER_PROC):.2e} of the input)")
    print()
    print("per-round view (intervals shrink, Fig 3.1 style):")
    print(f"{'round':>5} {'prob':>10} {'sample':>7} {'G_j before':>12} "
          f"{'open':>5} {'max width':>10}")
    for r in stats.rounds:
        print(
            f"{r.round_index:>5} {r.probability:>10.2e} {r.sample_size:>7} "
            f"{r.candidate_mass_before:>12,} {r.open_intervals_after:>5} "
            f"{r.max_interval_width_after:>10.0f}"
        )
    print()
    print("modeled phase breakdown on the simulated machine:")
    print(run.breakdown().table())
    print()
    print(f"network messages: {run.engine_result.stats.messages:,}, "
          f"bytes: {run.engine_result.stats.bytes:,}")


if __name__ == "__main__":
    main()
