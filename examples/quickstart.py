#!/usr/bin/env python
"""Quickstart: sort a distributed dataset with Histogram Sort with Sampling.

Sorts one million uniform 64-bit keys spread across 16 simulated
processors with the one-call façade ``repro.sort(...)`` at a 5%
load-imbalance budget, and prints what the algorithm did: histogramming
rounds, sample sizes, interval shrinkage, the modeled phase breakdown and
the achieved balance.  (``repro.sort`` wraps the layered
Dataset → Sorter → SortRun API — drop down to it when you need registries
or pre-built configs.)

Run:  python examples/quickstart.py
"""

import repro
from repro.algorithms import Dataset
from repro.metrics import verify_sorted_output

P = 16               # simulated processors
KEYS_PER_PROC = 62_500  # 1M keys total
EPS = 0.05           # load-imbalance budget: max load <= (1+eps) * N/p


def main() -> None:
    # A Dataset owns the distributed input: one shard per simulated rank,
    # validated once (any workload from repro.workloads.WORKLOADS by name,
    # or Dataset.from_arrays for your own arrays).
    dataset = Dataset.from_workload(
        "uniform", p=P, n_per=KEYS_PER_PROC, seed=2019
    )

    # repro.sort resolves "hss" through the algorithm registry and builds
    # the §6.1.2 configuration: expected 5p sample keys per histogramming
    # round, iterate until every splitter is inside its tolerance window.
    # (A flat array plus p= works too: repro.sort(keys, p=16, eps=0.05).)
    run = repro.sort(dataset, algorithm="hss", eps=EPS, seed=1, oversample=5.0)

    # The output is the same multiset, globally sorted, within the budget —
    # the Sorter already verified this (verify=True); do it again
    # explicitly to show the API.
    verify_sorted_output(dataset.shards, run.shards, EPS)

    stats = run.splitter_stats
    print(f"sorted {P * KEYS_PER_PROC:,} keys on {P} simulated processors")
    print(f"achieved imbalance : {run.imbalance:.4f}  (budget {1 + EPS})")
    print(f"histogramming rounds: {stats.num_rounds}")
    print(f"total sample        : {stats.total_sample} keys "
          f"({stats.total_sample / (P * KEYS_PER_PROC):.2e} of the input)")
    print()
    print("per-round view (intervals shrink, Fig 3.1 style):")
    print(f"{'round':>5} {'prob':>10} {'sample':>7} {'G_j before':>12} "
          f"{'open':>5} {'max width':>10}")
    for r in stats.rounds:
        print(
            f"{r.round_index:>5} {r.probability:>10.2e} {r.sample_size:>7} "
            f"{r.candidate_mass_before:>12,} {r.open_intervals_after:>5} "
            f"{r.max_interval_width_after:>10.0f}"
        )
    print()
    print("modeled phase breakdown on the simulated machine:")
    print(run.breakdown().table())
    print()
    print(f"network messages: {run.engine_result.stats.messages:,}, "
          f"bytes: {run.engine_result.stats.bytes:,}")


if __name__ == "__main__":
    main()
