#!/usr/bin/env python
"""Measured vs modeled, with the loop closed by calibration.

The paper reports *measured* end-to-end times on real parallel hardware
alongside its analytic cost model.  This example tells the same
two-sided story — and then closes the gap with :mod:`repro.calibrate`:

1. sort one dataset with HSS on the lockstep simulator and again on the
   thread backend (real concurrency through GIL-releasing numpy), and
   check outputs and modeled metrics are bit-identical — the backend
   contract;
2. run the tiny calibration design of experiments on this host, fit the
   cost model's alpha/beta/gamma constants by non-negative least
   squares, and emit the ``local-calibrated`` machine;
3. print measured per-phase wall-clock next to the model priced two
   ways — the ``laptop`` preset and the fitted constants — so the
   calibration's improvement is visible phase by phase.

Run:  python examples/measured_vs_modeled.py [keys_per_rank]
"""

import sys

import numpy as np

import repro
from repro.algorithms import Dataset
from repro.calibrate import (
    build_spec,
    constants_of,
    design_cells,
    emit_spec,
    extract_features,
    fit_constants,
    measure_cells,
    render_report,
    total_abs_error,
)
from repro.machines import get_machine_spec

P = 8                    # ranks (the thread backend maps them to cores)
KEYS_PER_PROC = 200_000  # bump this to see real-core speedups grow
EPS = 0.05


def backend_parity(n_per: int) -> None:
    """Step 1: the backend contract, demonstrated."""
    dataset = Dataset.from_workload("uniform", p=P, n_per=n_per, seed=2019)
    runs = {}
    for backend in ("simulated", "thread"):
        runs[backend] = repro.sort(
            dataset,
            algorithm="hss",
            machine="mira-like-bgq",
            eps=EPS,
            seed=1,
            backend=backend,
            verify=False,
        )
    sim, thr = runs["simulated"], runs["thread"]
    assert all(
        np.array_equal(a, b) for a, b in zip(sim.shards, thr.shards)
    ), "backends disagreed on the sorted output"
    assert sim.engine_result.stats == thr.engine_result.stats
    assert sim.makespan == thr.makespan

    print(
        f"sorted {P * n_per:,} keys on {P} ranks with both backends "
        f"(outputs and comm stats bit-identical)"
    )
    print(
        f"  simulated : wall {sim.measured.wall_s:8.3f} s   "
        f"(single process, lockstep)"
    )
    print(
        f"  thread    : wall {thr.measured.wall_s:8.3f} s   "
        f"({thr.measured.workers} worker threads; compute "
        f"{thr.measured.compute_s:.3f} s, collective wait "
        f"{thr.measured.comm_wait_s:.3f} s)"
    )
    print()


def calibrate_host() -> None:
    """Steps 2 and 3: fit this host's constants, report the gap closed."""
    cells = design_cells(seed=2019, profile="tiny")
    print(
        f"calibrating against {len(cells)} DoE cells on the thread "
        f"backend..."
    )
    measurements = measure_cells(cells, warmup=1, repeats=3, trim=0)
    features = extract_features(cells)
    fit = fit_constants(features, measurements)
    spec = emit_spec(build_spec(fit, doe_seed=2019, profile="tiny"))
    print()
    print(render_report(features, measurements, fit))
    print()

    preset_err = total_abs_error(
        measurements, features, constants_of(get_machine_spec("laptop"))
    )
    fitted_err = total_abs_error(measurements, features, fit.constants)
    print(
        f"machine {spec.name!r} is registered: "
        f"repro.sort(..., machine={spec.name!r}) now prices this host "
        f"({preset_err / fitted_err:.1f}x closer than the laptop preset)."
    )


def main() -> None:
    n_per = int(sys.argv[1]) if len(sys.argv) > 1 else KEYS_PER_PROC
    backend_parity(n_per)
    calibrate_host()


if __name__ == "__main__":
    main()
