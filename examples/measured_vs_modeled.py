#!/usr/bin/env python
"""Measured vs modeled: one HSS run on both execution backends.

The paper reports *measured* end-to-end times on real parallel hardware
alongside its analytic cost model.  This example tells the same two-sided
story with the `repro.runtime` backends: it sorts one dataset with HSS on
the lockstep simulator and again on the process backend (real worker
processes, one per rank up to the core count), checks the outputs and the
modeled metrics are bit-identical — that is the backend contract — and
prints the modeled per-phase seconds next to the measured per-phase
wall-clock, under the same phase labels.

The modeled column prices a Mira-like BG/Q; the measured column is this
host.  The per-phase ratio between the two columns is the seed for
calibrating the cost model's α–β constants against real hardware as the
runtime grows toward MPI backends.

Run:  python examples/measured_vs_modeled.py [keys_per_rank]
"""

import sys

import numpy as np

import repro
from repro.algorithms import Dataset

P = 8                    # ranks (the process backend maps them to cores)
KEYS_PER_PROC = 200_000  # bump this to see real-core speedups grow
EPS = 0.05


def main() -> None:
    n_per = int(sys.argv[1]) if len(sys.argv) > 1 else KEYS_PER_PROC
    dataset = Dataset.from_workload("uniform", p=P, n_per=n_per, seed=2019)

    runs = {}
    for backend in ("simulated", "process"):
        runs[backend] = repro.sort(
            dataset,
            algorithm="hss",
            machine="mira-like-bgq",
            eps=EPS,
            seed=1,
            backend=backend,
            verify=False,
        )

    sim, proc = runs["simulated"], runs["process"]

    # The backend contract: execution strategy changes nothing observable
    # except wall-clock.
    assert all(
        np.array_equal(a, b) for a, b in zip(sim.shards, proc.shards)
    ), "backends disagreed on the sorted output"
    assert sim.engine_result.stats == proc.engine_result.stats
    assert sim.makespan == proc.makespan

    print(
        f"sorted {P * n_per:,} keys on {P} ranks with both backends "
        f"(outputs and comm stats bit-identical)"
    )
    print(
        f"  simulated : wall {sim.measured.wall_s:8.3f} s   "
        f"(single process, lockstep)"
    )
    print(
        f"  process   : wall {proc.measured.wall_s:8.3f} s   "
        f"({proc.measured.workers} workers; compute "
        f"{proc.measured.compute_s:.3f} s, collective wait "
        f"{proc.measured.comm_wait_s:.3f} s)"
    )
    speedup = sim.measured.wall_s / proc.measured.wall_s
    print(f"  speedup   : {speedup:.2f}x over the lockstep simulator")
    print()

    # Modeled phase seconds (max over ranks, priced on the simulated
    # machine) next to measured phase wall-clock (max over ranks, this
    # host) — same labels, same aggregation convention.
    breakdown = sim.breakdown()
    modeled = {
        phase: breakdown.total(phase) for phase in breakdown.phases()
    }
    measured = proc.measured.phase_wall_s
    print(f"{'phase':<16} {'modeled (s)':>12} {'measured (s)':>13} "
          f"{'measured/modeled':>17}")
    for phase in modeled:
        model_s = modeled[phase]
        meas_s = measured.get(phase, 0.0)
        ratio = f"{meas_s / model_s:16.1f}x" if model_s > 0 else f"{'—':>17}"
        print(f"{phase:<16} {model_s:>12.3e} {meas_s:>13.3e} {ratio}")
    print()
    print(
        "modeled seconds price a Mira-like BG/Q; measured seconds are "
        "this host.\nPer-phase ratios are the starting point for "
        "calibrating alpha/beta against real hardware."
    )


if __name__ == "__main__":
    main()
