#!/usr/bin/env python
"""Sorting inputs dominated by duplicate keys (§4.3 implicit tagging).

Duplicates break every untagged splitter-based sorter: a splitter equal to
a hot key cannot divide that key's copies, so the processor owning the hot
key's bucket gets overloaded no matter how cleverly the sample was drawn.
The paper's fix is *implicit tagging* — treat each key as the triple
``(key, PE, local index)``, a strict total order, without materializing the
tags on the data.

This example sorts a 70%-hot-key workload with tagging off (fails the
balance contract) and on (meets it), then shows a word-frequency-style
Zipf workload.

Run:  python examples/duplicate_keys.py
"""

import numpy as np

import repro
from repro.algorithms import Dataset
from repro.errors import LoadBalanceError, VerificationError
from repro.metrics import load_imbalance

P = 16
N_PER = 5_000
EPS = 0.05


def demo(dataset: Dataset, label: str) -> None:
    print(f"== {label} ==")
    values, counts = np.unique(np.concatenate(dataset.shards), return_counts=True)
    print(f"   {len(values):,} distinct keys / {P * N_PER:,} total; "
          f"hottest key holds {counts.max() / (P * N_PER):.1%}")

    try:
        repro.sort(dataset, algorithm="hss", eps=EPS, seed=1)
        print("   untagged: met the balance contract (duplicates mild)")
    except (LoadBalanceError, VerificationError):
        # Re-run in best-effort mode to measure how badly it degrades.
        raw = repro.sort(
            dataset, algorithm="hss", eps=EPS, seed=1, strict=False,
            verify=False,
        )
        print(f"   untagged: FAILS — imbalance {load_imbalance(raw.shards):.2f} "
              f"(budget {1 + EPS})")

    run = repro.sort(
        dataset, algorithm="hss", eps=EPS, seed=1, tag_duplicates=True
    )
    print(f"   tagged  : imbalance {run.imbalance:.4f} in "
          f"{run.splitter_stats.num_rounds} rounds — contract met")
    print()


def main() -> None:
    demo(
        Dataset.from_workload("hotspot", p=P, n_per=N_PER, seed=3,
                              hot_fraction=0.7),
        "hotspot: one key = 70% of input",
    )
    demo(
        Dataset.from_workload("zipf-duplicates", p=P, n_per=N_PER, seed=3,
                              alphabet=500, exponent=1.6),
        "zipf over a 500-word alphabet",
    )
    print("tagging never bloats the input — only histogram probes carry")
    print("explicit (key, PE, index) tags, a constant-factor histogram cost.")


if __name__ == "__main__":
    main()
