#!/usr/bin/env python
"""Mini Fig 6.1 across two machine presets: where does the crossover move?

The paper's Figure 6.1 stacks local sort / histogramming / data exchange
for HSS weak scaling on Mira. The interesting *machine* statement is where
the phase crossover falls: on the 5-D torus, all-to-all contention grows
like p^(1/5), so data exchange overtakes the (constant) local-sort bar as
p grows; on a full-bisection fat tree the exchange bar stays flat and the
crossover moves out of reach.

This example reproduces that comparison with the machine registry — both
presets are referenced purely *by name* through the new
``repro.machines`` / ``perf.model`` API — and finishes with a small
end-to-end ``repro.experiments`` sweep over the same two machines at
simulatable scale.

Run:  python examples/machine_sweep.py
"""

from repro.core.config import HSSConfig
from repro.core.rankspace import RankSpaceSimulator
from repro.experiments import run_sweep
from repro.machines import get_machine
from repro.perf.model import model_weak_scaling
from repro.perf.report import format_stacked_table

MACHINES = ("mira-like-bgq", "fat-tree-hpc")
PS = [512, 2048, 8192, 32768]
KEYS_PER_CORE = 1_000_000
EPS = 0.02


def phases_for(machine_name: str, p: int):
    """Model the Fig 6.1 stack for one (machine, p) point by name."""
    machine = get_machine(machine_name)
    nodes = max(2, p // machine.cores_per_node)
    stats = RankSpaceSimulator(
        p * KEYS_PER_CORE,
        nodes,
        HSSConfig.constant_oversampling(5.0, eps=EPS, seed=17),
    ).run()
    return model_weak_scaling(
        machine_name,  # the perf model resolves registry names itself
        nprocs=p,
        keys_per_core=KEYS_PER_CORE,
        splitter_stats=stats,
        key_bytes=8,
        payload_bytes=4,
        node_level=True,
    )


def main() -> None:
    crossovers: dict[str, int | None] = {}
    for name in MACHINES:
        stacks = []
        crossovers[name] = None
        for p in PS:
            times = phases_for(name, p)
            assert times.machine["name"] == name  # resolved spec recorded
            stacks.append(times.as_dict())
            if crossovers[name] is None and times.data_exchange > times.local_sort:
                crossovers[name] = p
        print(
            format_stacked_table(
                "p",
                PS,
                stacks,
                title=(
                    f"mini Fig 6.1 — HSS weak scaling on {name} "
                    f"({KEYS_PER_CORE:,} keys/core, eps={EPS})"
                ),
            )
        )
        print()

    for name, p in crossovers.items():
        where = f"p = {p}" if p else f"beyond p = {PS[-1]}"
        print(f"{name:14s}: data exchange overtakes local sort at {where}")

    # The same comparison end-to-end (simulated ranks, real data movement)
    # at a scale the BSP engine can materialize, via the sweep API.
    print()
    doc = run_sweep(
        algorithms=["hss"],
        workloads=["uniform"],
        machines=list(MACHINES),
        procs=64,
        keys_per_rank=2_000,
        eps=EPS,
        seed=17,
    )
    for cell in doc.iter_ok():
        m = cell.metrics
        print(
            f"simulated p=64 on {cell.machine['name']:14s} "
            f"({cell.machine['topology']}): makespan {m['makespan_s']:.3e} s, "
            f"{m['net_messages']:,} msgs, imbalance {m['imbalance']:.3f}"
        )


if __name__ == "__main__":
    main()
