#!/usr/bin/env python
"""Approximate distributed rank queries via representative samples (§3.4).

The paper notes the §3.4 oracle "can be of independent interest for
answering general queries in large parallel processing systems": keep a
√(2p·ln p)/ε-key block-random sample per processor and answer *global rank*
queries from the samples alone — each answer within εN/p of the truth
w.h.p., at log(s) cost instead of log(N/p), valid for up to p⁴ queries.

This example builds the oracle over a simulated cluster's data, answers a
batch of percentile-style queries, and compares against exact ranks.

Run:  python examples/rank_queries.py
"""

import numpy as np

from repro.sampling.representative import (
    RepresentativeSample,
    representative_sample_size,
)
from repro.utils.rng import RngTree

P = 64
KEYS_PER_PROC = 100_000
EPS = 0.05


def main() -> None:
    rng_tree = RngTree(7)
    data_rng = rng_tree.generator("data")
    # Skewed data: the oracle's guarantee is distribution-free.
    local_data = [
        np.sort((data_rng.lognormal(0, 2.5, KEYS_PER_PROC) * 1e6).astype(np.int64))
        for _ in range(P)
    ]
    total = P * KEYS_PER_PROC

    s = representative_sample_size(P, EPS)
    oracles = [
        RepresentativeSample(local_data[r], s, rng_tree.generator("sample", r))
        for r in range(P)
    ]
    resident = sum(o.nbytes for o in oracles)
    full = sum(d.nbytes for d in local_data)
    print(f"{P} processors x {KEYS_PER_PROC:,} keys = {total:,} total")
    print(f"oracle keeps {s} keys/processor: {resident / 1e6:.2f} MB resident "
          f"vs {full / 1e6:.1f} MB of data ({resident / full:.2%})\n")

    # Percentile-style queries.
    everything = np.sort(np.concatenate(local_data))
    queries = everything[np.linspace(0, total - 1, 9).astype(int)]

    print(f"{'query key':>16} {'true rank':>12} {'estimated':>12} "
          f"{'error':>8} {'budget eps*N/p':>14}")
    budget = EPS * total / P
    worst = 0.0
    for q in queries:
        arr = np.array([q])
        estimate = sum(o.local_rank_estimate(arr)[0] for o in oracles)
        truth = int(np.searchsorted(everything, q, side="right"))
        err = abs(estimate - truth)
        worst = max(worst, err)
        print(f"{int(q):>16,} {truth:>12,} {estimate:>12,.0f} "
              f"{err:>8,.0f} {budget:>14,.0f}")

    print(f"\nworst error {worst:,.0f} vs Theorem 3.4.1 budget {budget:,.0f} "
          f"({worst / budget:.1%} of budget)")


if __name__ == "__main__":
    main()
