#!/usr/bin/env python
"""Two-level node-partitioned sort on a simulated multicore cluster (§6.1).

Builds a Mira-like machine (16 cores per node, 5-D torus), sorts with the
shared-memory-optimized HSS — node-level splitters, per-node message
combining, within-node regular-sampling sort — and contrasts it against
flat core-level HSS on the same input: fewer splitters, a much smaller
histogram, and ~cores²-fold fewer network messages.

Run:  python examples/node_level_cluster.py
"""

import repro
from repro.algorithms import Dataset
from repro.machines import get_machine

P = 64               # simulated cores
CORES_PER_NODE = 16  # => 4 nodes
KEYS_PER_CORE = 10_000
EPS_NODE = 0.02      # across nodes (paper's setting)
EPS_WITHIN = 0.05    # within a node


def main() -> None:
    dataset = Dataset.from_workload(
        "uniform", p=P, n_per=KEYS_PER_CORE, seed=42
    )
    machine = get_machine(
        "mira-like-bgq", overrides={"cores_per_node": CORES_PER_NODE}
    )

    # --- two-level: node splitters + shared-memory within-node sort ------
    # The Sorter verifies against the combined (1+eps)(1+within)-1 bound
    # declared by the hss-node spec.
    node_run = repro.sort(
        dataset,
        algorithm="hss-node",
        machine=machine,
        eps=EPS_NODE,
        within_node_eps=EPS_WITHIN,
        seed=9,
    )
    node_stats = node_run.stats

    # --- flat core-level HSS for contrast --------------------------------
    flat_run = repro.sort(
        dataset, algorithm="hss", machine=machine, eps=EPS_NODE, seed=9
    )
    flat_stats = flat_run.stats

    nodes = P // CORES_PER_NODE
    print(f"machine: {P} cores = {nodes} nodes x {CORES_PER_NODE} cores, "
          f"{machine.topology.describe()}")
    print(f"input  : {P * KEYS_PER_CORE:,} keys\n")
    header = f"{'':28s} {'node-level':>12s} {'core-level':>12s}"
    print(header)
    print("-" * len(header))
    print(f"{'splitters determined':28s} {node_stats.nparts - 1:>12} "
          f"{flat_stats.nparts - 1:>12}")
    print(f"{'histogramming rounds':28s} {node_stats.num_rounds:>12} "
          f"{flat_stats.num_rounds:>12}")
    print(f"{'total sample (keys)':28s} {node_stats.total_sample:>12} "
          f"{flat_stats.total_sample:>12}")
    print(f"{'network messages':28s} "
          f"{node_run.engine_result.stats.messages:>12,} "
          f"{flat_run.engine_result.stats.messages:>12,}")
    print(f"{'modeled makespan (ms)':28s} "
          f"{node_run.makespan * 1e3:>12.3f} {flat_run.makespan * 1e3:>12.3f}")
    print(f"{'imbalance':28s} {node_run.imbalance:>12.4f} "
          f"{flat_run.imbalance:>12.4f}")

    print("\nnode-level phase breakdown:")
    print(node_run.breakdown().table())


if __name__ == "__main__":
    main()
