#!/usr/bin/env python
"""Two-level node-partitioned sort on a simulated multicore cluster (§6.1).

Builds a Mira-like machine (16 cores per node, 5-D torus), sorts with the
shared-memory-optimized HSS — node-level splitters, per-node message
combining, within-node regular-sampling sort — and contrasts it against
flat core-level HSS on the same input: fewer splitters, a much smaller
histogram, and ~cores²-fold fewer network messages.

Run:  python examples/node_level_cluster.py
"""

import numpy as np

from repro.bsp import BSPEngine
from repro.bsp.machine import MIRA_LIKE
from repro.core.config import HSSConfig
from repro.core.hss import hss_sort_program
from repro.core.node_sort import combined_eps, hss_node_sort_program
from repro.metrics import load_imbalance, verify_sorted_output

P = 64               # simulated cores
CORES_PER_NODE = 16  # => 4 nodes
KEYS_PER_CORE = 10_000
EPS_NODE = 0.02      # across nodes (paper's setting)
EPS_WITHIN = 0.05    # within a node


def main() -> None:
    rng = np.random.default_rng(42)
    inputs = [rng.integers(0, 2**62, KEYS_PER_CORE) for _ in range(P)]
    machine = MIRA_LIKE.with_(cores_per_node=CORES_PER_NODE)

    # --- two-level: node splitters + shared-memory within-node sort ------
    engine = BSPEngine(P, machine=machine)
    cfg = HSSConfig(
        eps=EPS_NODE, within_node_eps=EPS_WITHIN, node_level=True, seed=9
    )
    node_res = engine.run(
        hss_node_sort_program, rank_args=[(x,) for x in inputs], cfg=cfg
    )
    node_out = [r[0].keys for r in node_res.returns]
    verify_sorted_output(inputs, node_out, combined_eps(EPS_NODE, EPS_WITHIN))
    node_stats = node_res.returns[0][1]

    # --- flat core-level HSS for contrast --------------------------------
    engine = BSPEngine(P, machine=machine)
    flat_res = engine.run(
        hss_sort_program,
        rank_args=[(x, None) for x in inputs],
        cfg=HSSConfig(eps=EPS_NODE, seed=9),
    )
    flat_out = [r[0].keys for r in flat_res.returns]
    flat_stats = flat_res.returns[0][1]

    nodes = P // CORES_PER_NODE
    print(f"machine: {P} cores = {nodes} nodes x {CORES_PER_NODE} cores, "
          f"{machine.topology.describe()}")
    print(f"input  : {P * KEYS_PER_CORE:,} keys\n")
    header = f"{'':28s} {'node-level':>12s} {'core-level':>12s}"
    print(header)
    print("-" * len(header))
    print(f"{'splitters determined':28s} {node_stats.nparts - 1:>12} "
          f"{flat_stats.nparts - 1:>12}")
    print(f"{'histogramming rounds':28s} {node_stats.num_rounds:>12} "
          f"{flat_stats.num_rounds:>12}")
    print(f"{'total sample (keys)':28s} {node_stats.total_sample:>12} "
          f"{flat_stats.total_sample:>12}")
    print(f"{'network messages':28s} {node_res.stats.messages:>12,} "
          f"{flat_res.stats.messages:>12,}")
    print(f"{'modeled makespan (ms)':28s} "
          f"{node_res.makespan * 1e3:>12.3f} {flat_res.makespan * 1e3:>12.3f}")
    print(f"{'imbalance':28s} {load_imbalance(node_out):>12.4f} "
          f"{load_imbalance(flat_out):>12.4f}")

    print("\nnode-level phase breakdown:")
    print(node_res.breakdown().table())


if __name__ == "__main__":
    main()
