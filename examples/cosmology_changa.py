#!/usr/bin/env python
"""ChaNGa-style cosmology sort: clustered Morton keys, HSS vs histogram sort.

The paper's motivating application (§6.3): an N-body code sorts particles
by space-filling-curve key at every step, and clustered matter makes those
keys brutally skewed.  This example

1. builds a synthetic "dwarf galaxy" snapshot (one dominant Plummer halo)
   and a "cosmological web" snapshot (many halos + filaments),
2. shows how concentrated their Morton keys are,
3. sorts both with HSS and with classic histogram sort ("Old" in Fig 6.2),
   comparing histogramming rounds — the quantity that makes HSS win on
   skewed data.

Run:  python examples/cosmology_changa.py
"""

import numpy as np

from repro.bsp import BSPEngine
from repro.baselines.histogram_sort import histogram_sort_program
from repro.core.api import hss_sort
from repro.core.config import HSSConfig
from repro.metrics import verify_sorted_output
from repro.workloads.changa import dwarf_like_shards, lambb_like_shards

P = 16
PARTICLES_PER_PROC = 20_000
EPS = 0.05


def key_concentration(shards) -> float:
    """Fraction of the key-space span holding the middle 90% of keys."""
    keys = np.sort(np.concatenate(shards).astype(np.float64))
    n = len(keys)
    core = keys[int(0.95 * n)] - keys[int(0.05 * n)]
    return core / max(1.0, keys[-1] - keys[0])


def old_histogram_rounds(shards) -> int:
    """Run classic histogram sort and report its probe-refinement rounds."""
    engine = BSPEngine(P)
    # Morton keys are uint64; bisection needs signed-safe arithmetic, so
    # histogram sort runs on the float view of the keys (order-preserving
    # for 63-bit Morton codes).
    as_float = [s.astype(np.float64) for s in shards]
    res = engine.run(
        histogram_sort_program,
        rank_args=[(x,) for x in as_float],
        eps=EPS,
        max_rounds=300,
    )
    return res.returns[0][1].rounds


def main() -> None:
    for name, maker in (
        ("dwarf (single halo)", dwarf_like_shards),
        ("lambb (cosmic web) ", lambb_like_shards),
    ):
        shards = maker(P, PARTICLES_PER_PROC, 7)
        conc = key_concentration(shards)
        print(f"== {name}: {P * PARTICLES_PER_PROC:,} particles ==")
        print(f"   90% of keys occupy {conc:.2%} of the key-space span")

        cfg = HSSConfig.constant_oversampling(
            5.0, eps=EPS, seed=3, tag_duplicates=True
        )
        run = hss_sort(shards, config=cfg)
        verify_sorted_output(shards, run.shards, EPS)
        hss_rounds = run.splitter_stats.num_rounds

        old_rounds = old_histogram_rounds(shards)
        print(f"   HSS rounds          : {hss_rounds} "
              f"(sample {run.splitter_stats.total_sample} keys)")
        print(f"   Old histogram rounds: {old_rounds}")
        print(f"   imbalance           : {run.imbalance:.4f}")
        print()

    print("HSS's sampled probes are distribution-free; key-space bisection")
    print("pays for every decade of clustering — the Fig 6.2 story.")


if __name__ == "__main__":
    main()
