#!/usr/bin/env python
"""ChaNGa-style cosmology sort: clustered Morton keys, HSS vs histogram sort.

The paper's motivating application (§6.3): an N-body code sorts particles
by space-filling-curve key at every step, and clustered matter makes those
keys brutally skewed.  This example

1. builds a synthetic "dwarf galaxy" snapshot (one dominant Plummer halo)
   and a "cosmological web" snapshot (many halos + filaments),
2. shows how concentrated their Morton keys are,
3. sorts both with HSS and with classic histogram sort ("Old" in Fig 6.2),
   comparing histogramming rounds — the quantity that makes HSS win on
   skewed data.

Run:  python examples/cosmology_changa.py
"""

import numpy as np

import repro
from repro.algorithms import Dataset
from repro.metrics import verify_sorted_output

P = 16
PARTICLES_PER_PROC = 20_000
EPS = 0.05


def key_concentration(shards) -> float:
    """Fraction of the key-space span holding the middle 90% of keys."""
    keys = np.sort(np.concatenate(shards).astype(np.float64))
    n = len(keys)
    core = keys[int(0.95 * n)] - keys[int(0.05 * n)]
    return core / max(1.0, keys[-1] - keys[0])


def old_histogram_rounds(dataset: Dataset) -> int:
    """Run classic histogram sort and report its probe-refinement rounds."""
    # Morton keys are uint64; bisection needs signed-safe arithmetic, so
    # histogram sort runs on the float view of the keys (order-preserving
    # for 63-bit Morton codes).
    as_float = Dataset.from_arrays(
        [s.astype(np.float64) for s in dataset.shards]
    )
    run = repro.sort(
        as_float, algorithm="histogram", eps=EPS, max_rounds=300,
        verify=False,
    )
    return run.stats.rounds


def main() -> None:
    for name, workload in (
        ("dwarf (single halo)", "changa-dwarf"),
        ("lambb (cosmic web) ", "changa-lambb"),
    ):
        dataset = Dataset.from_workload(
            workload, p=P, n_per=PARTICLES_PER_PROC, seed=7
        )
        conc = key_concentration(dataset.shards)
        print(f"== {name}: {P * PARTICLES_PER_PROC:,} particles ==")
        print(f"   90% of keys occupy {conc:.2%} of the key-space span")

        run = repro.sort(
            dataset, algorithm="hss", eps=EPS, seed=3, oversample=5.0,
            tag_duplicates=True,
        )
        verify_sorted_output(dataset.shards, run.shards, EPS)
        hss_rounds = run.splitter_stats.num_rounds

        old_rounds = old_histogram_rounds(dataset)
        print(f"   HSS rounds          : {hss_rounds} "
              f"(sample {run.splitter_stats.total_sample} keys)")
        print(f"   Old histogram rounds: {old_rounds}")
        print(f"   imbalance           : {run.imbalance:.4f}")
        print()

    print("HSS's sampled probes are distribution-free; key-space bisection")
    print("pays for every decade of clustering — the Fig 6.2 story.")


if __name__ == "__main__":
    main()
