"""Bernoulli (binomial-trial) sampling — the paper's Sampling Method 1.

    *"Every key in G is independently chosen to be a part of the sample with
    probability ps/N, where we refer to s as the sampling ratio."*

Two entry points: :func:`bernoulli_sample` draws from an entire local array,
:func:`bernoulli_sample_in_intervals` restricts the candidate set ``G`` to the
union of the current splitter intervals (HSS rounds ≥ 2), which is where the
sample-size savings of multi-round HSS come from.

Both are O(n) vectorized; the interval-restricted variant is
O(log n · #intervals + |G ∩ local|) by slicing the sorted local array.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "bernoulli_sample",
    "bernoulli_sample_in_intervals",
    "expected_total_sample",
]


def bernoulli_sample(
    keys: np.ndarray, prob: float, rng: np.random.Generator
) -> np.ndarray:
    """Select each key independently with probability ``prob``.

    Parameters
    ----------
    keys:
        Local keys (any order, any dtype).
    prob:
        Inclusion probability ``p·s/N``; clipped to [0, 1].
    rng:
        Source of randomness (rank-local, seeded).

    Returns
    -------
    The selected keys, in their original relative order.
    """
    prob = min(1.0, max(0.0, float(prob)))
    n = len(keys)
    if n == 0 or prob == 0.0:
        return keys[:0]
    if prob >= 1.0:
        return keys.copy()
    # Drawing the count first (binomial) then positions is equivalent to n
    # independent coin flips but touches O(count) memory instead of O(n).
    count = rng.binomial(n, prob)
    if count == 0:
        return keys[:0]
    idx = rng.choice(n, size=count, replace=False)
    idx.sort()
    return keys[idx]


def bernoulli_sample_in_intervals(
    sorted_keys: np.ndarray,
    intervals: Sequence[tuple],
    prob: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Bernoulli-sample only keys falling in the union of key intervals.

    ``intervals`` is a sequence of ``(lo, hi)`` *closed* key intervals.
    Interval endpoints are usually keys whose global rank is already known
    from a previous histogramming round; including them is harmless (their
    rank is simply re-derived) and closed semantics keep the first round
    correct when the endpoints are dtype-extreme sentinels (e.g. 0 for
    unsigned keys).

    ``sorted_keys`` must be ascending (the HSS local input is sorted before
    splitter determination starts, as in the paper's implementation).
    """
    prob = min(1.0, max(0.0, float(prob)))
    if len(sorted_keys) == 0 or prob == 0.0 or not intervals:
        return sorted_keys[:0]
    pieces: list[np.ndarray] = []
    for lo, hi in intervals:
        start = int(np.searchsorted(sorted_keys, lo, side="left"))
        stop = int(np.searchsorted(sorted_keys, hi, side="right"))
        if stop > start:
            pieces.append(
                bernoulli_sample(sorted_keys[start:stop], prob, rng)
            )
    if not pieces:
        return sorted_keys[:0]
    return np.concatenate(pieces)


def expected_total_sample(total_keys: int, prob: float) -> float:
    """Expected overall sample size across all processors: ``|G| · prob``."""
    return float(total_keys) * min(1.0, max(0.0, float(prob)))
