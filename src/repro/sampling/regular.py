"""Regular sampling (Shi & Schaeffer; §4.1.2 of the paper).

Each processor picks ``s`` evenly spaced keys from its *sorted* local input:
with local data :math:`I^i_1 … I^i_{N/p}`, the sample is
:math:`I^i_{N/ps}, I^i_{2N/ps}, …, I^i_{N/p}` — i.e. the last element of each
of ``s`` equal blocks.  Theorem 4.1.2 then bounds every chosen splitter's rank
error by ``N/(2s)``, which yields the PSRS guarantee
(``s = p/ε`` ⇒ ``(1+ε)`` load balance, Lemma 4.1.1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["regular_sample"]


def regular_sample(sorted_keys: np.ndarray, s: int) -> np.ndarray:
    """Pick ``s`` evenly spaced keys (block maxima) from a sorted array.

    Handles local sizes not divisible by ``s`` by spacing block boundaries
    fractionally — block ``t`` ends at index ``⌈(t+1)·n/s⌉ - 1`` — which keeps
    every block within one element of ``n/s`` and preserves the Theorem 4.1.2
    rank-error argument.

    Raises
    ------
    ConfigError
        If ``s < 1``.  When ``s`` exceeds the local size the whole local
        array is returned (the sample cannot be finer than the data).
    """
    if s < 1:
        raise ConfigError(f"oversampling ratio s must be >= 1, got {s}")
    n = len(sorted_keys)
    if n == 0:
        return sorted_keys[:0]
    if s >= n:
        return sorted_keys.copy()
    ends = np.ceil((np.arange(1, s + 1) * n) / s).astype(np.int64) - 1
    return sorted_keys[ends]
