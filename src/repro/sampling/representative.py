"""Representative samples for approximate histogramming (§3.4).

Every processor keeps a resident block-random sample of
``s = √(2·p·ln p)/ε`` keys of its local input and answers *rank queries*
against the sample instead of the full data: if ``r`` of the ``p·s``
representative keys across all processors are ≤ ``k``, the estimated global
rank of ``k`` is ``N·r/(p·s)``.

Theorem 3.4.1 shows this estimate is within ``ε·N/p`` of the true rank w.h.p.
— accurate enough to drive HSS's splitter refinement while reducing
per-round histogramming work from ``O(S·log(N/p))`` over the full local data
to ``O(S·log s)`` over the sample.  The paper notes the oracle is valid for
histograms smaller than ``p⁴`` queries (union bound budget).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError
from repro.sampling.random_blocks import block_random_sample

__all__ = ["RepresentativeSample", "representative_sample_size"]


def representative_sample_size(p: int, eps: float) -> int:
    """Per-processor representative sample size ``√(2·p·ln p)/ε``.

    (Theorem 3.4.1 states ``s = √(2·p·ln p)/ε``; the abstract's
    ``O(√p·log N/ε)`` form absorbs the union bound over queries.)
    """
    if p < 1:
        raise ConfigError(f"p must be >= 1, got {p}")
    if not 0.0 < eps <= 1.0:
        raise ConfigError(f"eps must be in (0, 1], got {eps}")
    return max(1, math.ceil(math.sqrt(2.0 * p * math.log(max(2, p))) / eps))


class RepresentativeSample:
    """A processor-resident sample answering approximate local rank queries.

    Parameters
    ----------
    sorted_keys:
        The processor's sorted local input.
    s:
        Number of sample keys to keep (one per block).  Use
        :func:`representative_sample_size` for the theorem's setting.
    rng:
        Rank-local random generator.

    Notes
    -----
    ``local_rank_estimate(q)`` returns ``(#sample keys ≤ q) · n/s`` — the
    unbiased estimator from the proof of Theorem 3.4.1 (each sample key
    stands for its whole block of ``n/s`` input keys).  Summing the estimate
    across processors (a reduction in the BSP program) gives the global
    approximate histogram.
    """

    def __init__(
        self,
        sorted_keys: np.ndarray,
        s: int,
        rng: np.random.Generator,
    ) -> None:
        self.n = int(len(sorted_keys))
        self.sample = block_random_sample(sorted_keys, s, rng)
        self.s = int(len(self.sample))
        #: How many input keys each sample key represents.
        self.keys_per_sample = self.n / self.s if self.s else 0.0

    @property
    def nbytes(self) -> int:
        """Resident memory of the sample."""
        return int(self.sample.nbytes)

    def local_rank_estimate(self, queries: np.ndarray) -> np.ndarray:
        """Estimated number of local keys ≤ each query key.

        Vectorized over a sorted-or-unsorted query array; O(len(queries) ·
        log s).
        """
        if self.s == 0:
            return np.zeros(len(queries), dtype=np.float64)
        counts = np.searchsorted(self.sample, queries, side="right")
        return counts.astype(np.float64) * self.keys_per_sample

    def local_rank_exact_bounds(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic bounds on the true local rank of each query.

        If ``b`` blocks are completely ≤ q then the true count lies in
        ``[b·n/s, (b+1)·n/s]``; used by tests to verify the estimator's
        per-processor error never exceeds one block.
        """
        if self.s == 0:
            zero = np.zeros(len(queries), dtype=np.float64)
            return zero, zero
        at_most = np.searchsorted(self.sample, queries, side="right").astype(
            np.float64
        )
        lo = np.maximum(0.0, (at_most - 1.0)) * self.keys_per_sample
        hi = np.minimum(float(self.s), at_most + 1.0) * self.keys_per_sample
        return lo, np.minimum(hi, float(self.n))
