"""Block random sampling (Blelloch et al.; §4.1.1 of the paper).

The sorted local input is divided into ``s`` blocks of ``N/(p·s)`` keys and
one uniformly random key is drawn from each block.  Compared to plain uniform
sampling this stratification guarantees the sample is spread across the local
key range, which is what Theorem 4.1.1's load-balance bound relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["block_random_sample"]


def block_random_sample(
    sorted_keys: np.ndarray, s: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw one uniform key from each of ``s`` blocks of a sorted array.

    Block boundaries are spaced fractionally so any ``n`` works; if
    ``s >= n`` every key is returned (each block is a single key).

    Returns the sampled keys in ascending order (one per block, and blocks
    are ascending).
    """
    if s < 1:
        raise ConfigError(f"oversampling ratio s must be >= 1, got {s}")
    n = len(sorted_keys)
    if n == 0:
        return sorted_keys[:0]
    if s >= n:
        return sorted_keys.copy()
    bounds = np.ceil((np.arange(s + 1) * n) / s).astype(np.int64)
    starts, stops = bounds[:-1], bounds[1:]
    # Guard against empty blocks (cannot happen for s < n, but keep the
    # invariant explicit for safety with degenerate inputs).
    valid = stops > starts
    starts, stops = starts[valid], stops[valid]
    offsets = rng.integers(0, stops - starts)
    return sorted_keys[starts + offsets]
