"""Sampling methods used by HSS and the sample-sort baselines.

Four methods appear in the paper:

* **Bernoulli sampling** (Sampling Method 1, §3): every key is independently
  included with probability ``p·s/N`` — the method HSS histogramming rounds
  use, optionally restricted to the current splitter intervals.
* **Regular sampling** (§4.1.2, Shi & Schaeffer): ``s`` evenly spaced keys
  from each processor's sorted input; deterministic.
* **Block random sampling** (§4.1.1, Blelloch et al.): the sorted input is cut
  into ``s`` blocks and one uniform key is drawn per block.
* **Representative sampling** (§3.4): block random sampling with
  ``s = √(2p·ln p)/ε``, kept resident to answer repeated rank queries
  approximately.
"""

from repro.sampling.bernoulli import (
    bernoulli_sample,
    bernoulli_sample_in_intervals,
    expected_total_sample,
)
from repro.sampling.regular import regular_sample
from repro.sampling.random_blocks import block_random_sample
from repro.sampling.representative import RepresentativeSample

__all__ = [
    "bernoulli_sample",
    "bernoulli_sample_in_intervals",
    "expected_total_sample",
    "regular_sample",
    "block_random_sample",
    "RepresentativeSample",
]
