"""Splitter-interval state: the ``[L_j(i), U_j(i)]`` bookkeeping of §3.3.

The central processor maintains, for every splitter ``i`` with target rank
``t_i = N·i/p``:

* ``lo_rank[i]`` / ``lo_key[i]`` — rank and key of the largest key seen so
  far whose rank is ≤ ``t_i`` (the paper's ``L_j(i)``),
* ``hi_rank[i]`` / ``hi_key[i]`` — rank and key of the smallest key seen so
  far with rank ≥ ``t_i`` (``U_j(i)``).

A splitter is *finalized* once some seen key lands inside
``T_i = [t_i − εN/2p, t_i + εN/2p]`` (§2.1).  Unfinalized splitters define
the *splitter intervals* that the next round samples from; intervals shrink
monotonically (the proof of Theorem 3.3.1 hinges on ``L``/``U`` never
regressing, which :meth:`SplitterState.update` enforces).

The class is fully vectorized over splitters, so it also backs the
rank-space simulator at ``p`` up to hundreds of thousands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = ["SplitterState", "MergedIntervals"]


@dataclass(frozen=True)
class MergedIntervals:
    """Disjoint union of the unfinalized splitter intervals.

    ``lo_keys[t] .. hi_keys[t]`` (closed, in key space) with known boundary
    ranks ``lo_ranks[t]`` / ``hi_ranks[t]``.  ``mass`` is the paper's ``G_j``:
    the number of input keys inside the union (computable exactly from the
    boundary ranks, since ranks count keys strictly below a key, plus the
    boundary keys themselves which are already known).
    """

    lo_keys: np.ndarray
    hi_keys: np.ndarray
    lo_ranks: np.ndarray
    hi_ranks: np.ndarray

    @property
    def mass(self) -> int:
        if len(self.lo_ranks) == 0:
            return 0
        return int(np.sum(self.hi_ranks - self.lo_ranks))

    @property
    def count(self) -> int:
        return len(self.lo_keys)

    def pairs(self) -> list[tuple]:
        """Key intervals as a list of ``(lo, hi)`` tuples for samplers."""
        return list(zip(self.lo_keys.tolist(), self.hi_keys.tolist()))


class SplitterState:
    """Central-processor state tracking all ``p−1`` splitter intervals."""

    def __init__(
        self,
        total_keys: int,
        nparts: int,
        eps: float,
        *,
        key_dtype: np.dtype | type = np.int64,
        lo_sentinel: object | None = None,
        hi_sentinel: object | None = None,
        targets: np.ndarray | None = None,
        tolerances: np.ndarray | float | None = None,
        initial_intervals: Sequence[tuple] | None = None,
    ) -> None:
        if nparts < 1:
            raise ConfigError(f"nparts must be >= 1, got {nparts}")
        if total_keys < nparts:
            raise ConfigError(
                f"need at least one key per part: N={total_keys}, p={nparts}"
            )
        self.total_keys = int(total_keys)
        self.nparts = int(nparts)
        self.eps = float(eps)
        self.key_dtype = np.dtype(key_dtype)

        p, n = self.nparts, self.total_keys
        if targets is None:
            #: Target ranks ``t_i = N·i/p`` for splitters ``i = 1..p−1``.
            self.targets = (np.arange(1, p, dtype=np.int64) * n) // p
        else:
            # Weighted partitioning (e.g. ragged node layouts where part b
            # should receive N·cores_b/p keys).
            self.targets = np.asarray(targets, dtype=np.int64)
            if len(self.targets) != p - 1:
                raise ConfigError(
                    f"expected {p - 1} targets, got {len(self.targets)}"
                )
            if np.any(self.targets < 0) or np.any(self.targets > n) or np.any(
                np.diff(self.targets) < 0
            ):
                raise ConfigError("targets must be non-decreasing in [0, N]")
        if tolerances is None:
            #: Rank tolerance ``εN/(2p)`` of the acceptance window ``T_i``.
            self.tolerance = eps * n / (2.0 * p)
        else:
            self.tolerance = (
                np.asarray(tolerances, dtype=np.float64)
                if np.ndim(tolerances)
                else float(tolerances)
            )

        m = p - 1
        self.lo_rank = np.zeros(m, dtype=np.int64)
        self.hi_rank = np.full(m, n, dtype=np.int64)
        if lo_sentinel is None or hi_sentinel is None:
            if np.issubdtype(self.key_dtype, np.floating):
                auto_lo, auto_hi = -np.inf, np.inf
            else:
                info = np.iinfo(self.key_dtype)
                auto_lo, auto_hi = info.min, info.max
            lo_sentinel = auto_lo if lo_sentinel is None else lo_sentinel
            hi_sentinel = auto_hi if hi_sentinel is None else hi_sentinel
        self.lo_key = np.empty(m, dtype=self.key_dtype)
        self.hi_key = np.empty(m, dtype=self.key_dtype)
        self.lo_key[:] = lo_sentinel
        self.hi_key[:] = hi_sentinel
        self.rounds_completed = 0

        #: Warm-start hints: key-space intervals carried over from a prior
        #: run on similar data (e.g. a splitter cache).  Hints never touch
        #: the ``L``/``U`` bounds directly — their ranks on *this* input
        #: are unknown, and seeding bounds without exact ranks would break
        #: the Theorem 3.3.1 monotonicity invariant.  Instead the driver
        #: probes :meth:`hint_probes` in its first histogramming round, so
        #: every tightening still flows through :meth:`update` with exact
        #: ranks and a stale hint degrades to a wasted probe, never a
        #: wrong answer.
        self.initial_intervals = None
        if initial_intervals is not None:
            pairs = list(initial_intervals)
            if len(pairs) == 0:
                raise ConfigError(
                    "initial_intervals must contain at least one "
                    "(lo, hi) key pair (pass None for a cold start)"
                )
            lo = np.array([pair[0] for pair in pairs], dtype=self.key_dtype)
            hi = np.array([pair[1] for pair in pairs], dtype=self.key_dtype)
            if np.any(hi < lo):
                raise ConfigError(
                    "initial_intervals pairs must satisfy lo <= hi"
                )
            self.initial_intervals = list(zip(lo.tolist(), hi.tolist()))
            self._hint_endpoints = np.concatenate([lo, hi])

    def hint_probes(self) -> np.ndarray:
        """Sorted, deduplicated warm-start probe keys (empty when cold).

        The endpoints of every :attr:`initial_intervals` pair — for a
        cache of previous final splitters these are the splitter keys
        themselves (degenerate ``(s, s)`` pairs work fine).
        """
        if self.initial_intervals is None:
            return np.empty(0, dtype=self.key_dtype)
        from repro.utils.arrays import sorted_unique

        return sorted_unique(self._hint_endpoints)

    # ------------------------------------------------------------------ #
    @property
    def nsplitters(self) -> int:
        return self.nparts - 1

    def finalized_mask(self) -> np.ndarray:
        """Boolean mask of splitters already inside their window ``T_i``."""
        lo_ok = (self.targets - self.lo_rank) <= self.tolerance
        hi_ok = (self.hi_rank - self.targets) <= self.tolerance
        return lo_ok | hi_ok

    def all_finalized(self) -> bool:
        return bool(np.all(self.finalized_mask()))

    def num_finalized(self) -> int:
        return int(np.count_nonzero(self.finalized_mask()))

    # ------------------------------------------------------------------ #
    def update(self, probe_keys: np.ndarray, probe_ranks: np.ndarray) -> None:
        """Fold one histogramming round's results into the bounds.

        ``probe_keys`` must be sorted ascending and ``probe_ranks`` are their
        exact global ranks (number of input keys strictly below each probe).
        For every splitter the largest probe with rank ≤ target improves
        ``L``; the smallest probe with rank ≥ target improves ``U``.  Bounds
        only ever tighten (Theorem 3.3.1's monotonicity invariant).
        """
        probe_keys = np.asarray(probe_keys)
        probe_ranks = np.asarray(probe_ranks, dtype=np.int64)
        if len(probe_keys) != len(probe_ranks):
            raise ConfigError("probe_keys and probe_ranks length mismatch")
        if len(probe_keys) == 0:
            self.rounds_completed += 1
            return
        if probe_keys.dtype.kind != "V" and np.any(
            probe_keys[1:] < probe_keys[:-1]
        ):
            # (Structured/void probe dtypes — tagged keys — don't support
            # ufunc comparison; they arrive pre-sorted from sorted_unique
            # and the rank monotonicity check below still guards ordering.)
            raise ConfigError("probe_keys must be sorted ascending")
        if np.any(probe_ranks[1:] < probe_ranks[:-1]):
            raise ConfigError(
                "probe_ranks must be non-decreasing (ranks are monotone in keys)"
            )

        # On equal ranks a probe can still tighten the *key-space* interval
        # (a probe landing in a gap between input keys has the same rank as
        # the bound but is a strictly better endpoint).  This matters for
        # classic histogram sort, whose synthetic probes are not input keys;
        # void (tagged) dtypes don't support ufunc comparison and never
        # produce such probes, so ties are skipped there.
        keys_comparable = probe_keys.dtype.kind != "V"

        # Largest probe with rank <= target: index of rightmost rank ≤ t.
        idx_lo = np.searchsorted(probe_ranks, self.targets, side="right") - 1
        has_lo = idx_lo >= 0
        safe_lo = np.clip(idx_lo, 0, None)
        better_rank = probe_ranks[safe_lo] > self.lo_rank
        if keys_comparable:
            tie_tighter = (probe_ranks[safe_lo] == self.lo_rank) & (
                probe_keys[safe_lo] > self.lo_key
            )
            improves = has_lo & (better_rank | tie_tighter)
        else:
            improves = has_lo & better_rank
        sel = np.where(improves)[0]
        if len(sel):
            self.lo_rank[sel] = probe_ranks[idx_lo[sel]]
            self.lo_key[sel] = probe_keys[idx_lo[sel]]

        # Smallest probe with rank >= target.
        idx_hi = np.searchsorted(probe_ranks, self.targets, side="left")
        has_hi = idx_hi < len(probe_ranks)
        safe_hi = np.clip(idx_hi, None, len(probe_ranks) - 1)
        better_rank = probe_ranks[safe_hi] < self.hi_rank
        if keys_comparable:
            tie_tighter = (probe_ranks[safe_hi] == self.hi_rank) & (
                probe_keys[safe_hi] < self.hi_key
            )
            improves = has_hi & (better_rank | tie_tighter)
        else:
            improves = has_hi & better_rank
        sel = np.where(improves)[0]
        if len(sel):
            self.hi_rank[sel] = probe_ranks[idx_hi[sel]]
            self.hi_key[sel] = probe_keys[idx_hi[sel]]

        self.rounds_completed += 1

    # ------------------------------------------------------------------ #
    def merged_intervals(self) -> MergedIntervals:
        """Disjoint union of intervals of *unfinalized* splitters.

        Intervals of distinct splitters either coincide or are disjoint up to
        shared endpoints (§3.3); we merge any overlap so the sampling mass
        ``G_j`` is counted once.  Merging happens in rank space (keys are
        monotone in rank, so key intervals merge identically).
        """
        open_mask = ~self.finalized_mask()
        if not np.any(open_mask):
            empty_i = np.empty(0, dtype=np.int64)
            empty_k = np.empty(0, dtype=self.key_dtype)
            return MergedIntervals(empty_k, empty_k, empty_i, empty_i)

        lo_r = self.lo_rank[open_mask]
        hi_r = self.hi_rank[open_mask]
        lo_k = self.lo_key[open_mask]
        hi_k = self.hi_key[open_mask]
        order = np.argsort(lo_r, kind="stable")
        lo_r, hi_r = lo_r[order], hi_r[order]
        lo_k, hi_k = lo_k[order], hi_k[order]

        merged_lo_r: list[int] = []
        merged_hi_r: list[int] = []
        merged_lo_k: list = []
        merged_hi_k: list = []
        for t in range(len(lo_r)):
            if merged_hi_r and lo_r[t] <= merged_hi_r[-1]:
                if hi_r[t] > merged_hi_r[-1]:
                    merged_hi_r[-1] = int(hi_r[t])
                    merged_hi_k[-1] = hi_k[t]
            else:
                merged_lo_r.append(int(lo_r[t]))
                merged_hi_r.append(int(hi_r[t]))
                merged_lo_k.append(lo_k[t])
                merged_hi_k.append(hi_k[t])

        return MergedIntervals(
            np.array(merged_lo_k, dtype=self.key_dtype),
            np.array(merged_hi_k, dtype=self.key_dtype),
            np.array(merged_lo_r, dtype=np.int64),
            np.array(merged_hi_r, dtype=np.int64),
        )

    def candidate_mass(self) -> int:
        """``G_j``: input keys still inside some splitter interval."""
        return self.merged_intervals().mass

    # ------------------------------------------------------------------ #
    def final_splitters(self) -> np.ndarray:
        """Choose, per splitter, the seen key ranked closest to its target.

        (Algorithm step 5, §3.3.)  Works whether or not every splitter is
        inside its window — callers that must guarantee the ε bound check
        :meth:`all_finalized` first.
        """
        lo_err = self.targets - self.lo_rank
        hi_err = self.hi_rank - self.targets
        use_lo = lo_err <= hi_err
        # Index-based selection (np.where does not support structured dtypes,
        # which the duplicate-tagged key space uses).
        out = self.hi_key.copy()
        out[use_lo] = self.lo_key[use_lo]
        return out

    def final_splitter_ranks(self) -> np.ndarray:
        """Exact ranks of the chosen splitters (for verification)."""
        lo_err = self.targets - self.lo_rank
        hi_err = self.hi_rank - self.targets
        return np.where(lo_err <= hi_err, self.lo_rank, self.hi_rank)

    def max_rank_error(self) -> int:
        """Largest ``|rank(S_i) − t_i|`` over splitters, for diagnostics."""
        errs = np.abs(self.final_splitter_ranks() - self.targets)
        return int(errs.max()) if len(errs) else 0

    # ------------------------------------------------------------------ #
    def interval_width_stats(self) -> dict[str, float]:
        """Summary of current interval rank-widths (drives Fig 3.1)."""
        widths = (self.hi_rank - self.lo_rank).astype(np.float64)
        return {
            "rounds": float(self.rounds_completed),
            "open_splitters": float(self.nsplitters - self.num_finalized()),
            "mass": float(self.candidate_mass()),
            "max_width": float(widths.max()) if len(widths) else 0.0,
            "mean_width": float(widths.mean()) if len(widths) else 0.0,
        }
