"""User-facing entry points.

The first-class API lives in :mod:`repro.algorithms`:
``Sorter(name, ...).run(Dataset...)`` resolves algorithms through the
typed-spec plugin registry, validates capabilities up front, and returns a
:class:`~repro.algorithms.SortRun`.  This module keeps the two historical
entry points as thin shims over it:

:func:`hss_sort` sorts a distributed input (list of per-rank key arrays)
with Histogram Sort with Sampling on a simulated BSP machine and returns the
sorted shards plus full run diagnostics.

:func:`parallel_sort` is the uniform entry point over *every* algorithm in
the paper — HSS variants and all baselines — keyed by name, which is what
the benchmark shootouts use:

======================  ====================================================
name                    algorithm
======================  ====================================================
``hss``                 HSS, constant oversampling (§6.1.2 implementation)
``hss-1round``          HSS, one geometric round (Lemma 3.2.1)
``hss-2round``          HSS, two geometric rounds
``hss-node``            two-level node-partitioned HSS (§6.1; needs a
                        multicore ``machine``)
``scanning``            one-round sample + Axtmann scan (§3.2)
``sample-regular``      sample sort, regular sampling (§4.1.2)
``sample-regular-parallel``  PSRS with the sample sorted *in parallel*
                        (Goodrich-style, §4.1.2's scalability remedy)
``sample-random``       sample sort, block random sampling (§4.1.1)
``histogram``           classic histogram sort, no sampling (§2.3)
``over-partition``      parallel sorting by over-partitioning (§4.2)
``exact-split``         exact splitters / perfect balance (Cheng et al.,
                        §2.1) — ``O(log N)`` histogram rounds, ε = 0
``bitonic``             Batcher bitonic sort (§4.2)
``radix``               parallel MSB radix sort (§4.2)
======================  ====================================================

Every row is backed by an :class:`~repro.algorithms.AlgorithmSpec` in
:data:`repro.algorithms.REGISTRY` (also exported here as ``ALGORITHMS``);
``repro algorithms`` on the command line prints the same table with each
algorithm's capability flags.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.algorithms import REGISTRY, Dataset, Sorter, SortRun, get_spec
from repro.bsp.machine import MachineModel
from repro.machines import MachineSpec
from repro.core.config import HSSConfig

__all__ = ["SortRun", "hss_sort", "parallel_sort", "ALGORITHMS"]

#: Live view of the algorithm registry (name -> AlgorithmSpec).  Retained
#: under its historical name; prefer :data:`repro.algorithms.REGISTRY`.
ALGORITHMS = REGISTRY


def hss_sort(
    keys: Sequence[np.ndarray],
    *,
    eps: float = 0.05,
    config: HSSConfig | None = None,
    machine: str | MachineSpec | MachineModel | None = None,
    payloads: Sequence[np.ndarray] | None = None,
    verify: bool = True,
) -> SortRun:
    """Sort a distributed input with Histogram Sort with Sampling.

    Shim over ``Sorter("hss")`` kept for compatibility; new code should
    use :class:`repro.algorithms.Sorter` directly.

    Parameters
    ----------
    keys:
        One key array per simulated rank (``p = len(keys)``).
    eps:
        Load-imbalance threshold (ignored when ``config`` is given).
    config:
        Full :class:`HSSConfig`; defaults to the §6.1.2 constant-oversampling
        schedule with ``eps``.
    machine:
        Simulated machine: a registered name, spec, or model
        (defaults to the ``"laptop"`` preset).
    payloads:
        Optional per-rank payload arrays aligned with ``keys``.
    verify:
        Check sortedness, permutation and the ``(1+ε)`` load bound on the
        output (raises :class:`repro.errors.VerificationError` on failure).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> inputs = [rng.integers(0, 10**9, 5000) for _ in range(8)]
    >>> run = hss_sort(inputs, eps=0.05)
    >>> run.imbalance <= 1.05
    True
    """
    cfg = config if config is not None else HSSConfig(eps=eps)
    dataset = Dataset.from_arrays(keys, payloads=payloads)
    return Sorter("hss", machine=machine, config=cfg, verify=verify).run(dataset)


def parallel_sort(
    keys: Sequence[np.ndarray],
    algorithm: str = "hss",
    *,
    eps: float = 0.05,
    machine: str | MachineSpec | MachineModel | None = None,
    seed: int = 0,
    verify: bool = True,
    **kwargs: Any,
) -> SortRun:
    """Sort with any algorithm from the paper, selected by name.

    Shim over :class:`repro.algorithms.Sorter` kept for compatibility.
    ``kwargs`` are validated against the algorithm's typed config class —
    unknown keys raise :class:`~repro.errors.ConfigError` naming the valid
    ones (e.g. ``key_bits`` for radix, ``ratio`` for over-partitioning);
    ``eps``/``seed`` are accepted for every algorithm and ignored by those
    without such a knob.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> inputs = [rng.integers(0, 10**6, 400) for _ in range(4)]
    >>> parallel_sort(inputs, "sample-regular", eps=0.2).algorithm
    'sample-regular'
    >>> parallel_sort(inputs, "radix", radix_width=8)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: unknown config key(s) ['radix_width'] ...
    """
    spec = get_spec(algorithm)
    config = spec.legacy_config(eps=eps, seed=seed, **kwargs)
    sorter = Sorter(algorithm, machine=machine, config=config, verify=verify)
    return sorter.run(keys)
