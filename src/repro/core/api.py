"""User-facing entry points.

:func:`hss_sort` sorts a distributed input (list of per-rank key arrays)
with Histogram Sort with Sampling on a simulated BSP machine and returns the
sorted shards plus full run diagnostics.

:func:`parallel_sort` is the uniform entry point over *every* algorithm in
the paper — HSS variants and all baselines — keyed by name, which is what
the benchmark shootouts use:

======================  ====================================================
name                    algorithm
======================  ====================================================
``hss``                 HSS, constant oversampling (§6.1.2 implementation)
``hss-1round``          HSS, one geometric round (Lemma 3.2.1)
``hss-2round``          HSS, two geometric rounds
``hss-node``            two-level node-partitioned HSS (§6.1; needs a
                        multicore ``machine``)
``scanning``            one-round sample + Axtmann scan (§3.2)
``sample-regular``      sample sort, regular sampling (§4.1.2)
``sample-regular-parallel``  PSRS with the sample sorted *in parallel*
                        (Goodrich-style, §4.1.2's scalability remedy)
``sample-random``       sample sort, block random sampling (§4.1.1)
``histogram``           classic histogram sort, no sampling (§2.3)
``over-partition``      parallel sorting by over-partitioning (§4.2)
``exact-split``         exact splitters / perfect balance (Cheng et al.,
                        §2.1) — ``O(log N)`` histogram rounds, ε = 0
``bitonic``             Batcher bitonic sort (§4.2)
``radix``               parallel MSB radix sort (§4.2)
======================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.bsp.engine import BSPEngine, RunResult
from repro.bsp.machine import MachineModel
from repro.core.config import HSSConfig
from repro.core.data_movement import Shard
from repro.core.hss import SplitterStats, hss_sort_program
from repro.errors import ConfigError
from repro.metrics.verify import verify_sorted_output

__all__ = ["SortRun", "hss_sort", "parallel_sort", "ALGORITHMS"]


@dataclass
class SortRun:
    """Sorted output plus everything observable about the simulated run."""

    #: Per-rank sorted output key arrays (globally ascending across ranks).
    shards: list[np.ndarray]
    #: Per-rank payload arrays when the input carried payloads, else None.
    payloads: list[np.ndarray] | None
    #: Splitter-phase statistics (HSS/scanning runs; None for baselines that
    #: do not histogram).
    splitter_stats: SplitterStats | None
    #: Raw BSP engine result (trace, comm stats, modeled makespan).
    engine_result: RunResult
    #: Algorithm name.
    algorithm: str

    @property
    def makespan(self) -> float:
        """Modeled execution time on the simulated machine (seconds)."""
        return self.engine_result.makespan

    @property
    def imbalance(self) -> float:
        loads = np.array([len(s) for s in self.shards], dtype=np.float64)
        return float(loads.max() / loads.mean()) if loads.sum() else 1.0

    def breakdown(self):
        return self.engine_result.breakdown()


def _as_shards(keys: Sequence[np.ndarray]) -> list[np.ndarray]:
    shards = [np.asarray(k) for k in keys]
    if not shards:
        raise ConfigError("need at least one rank's keys")
    dtypes = {s.dtype for s in shards}
    if len(dtypes) != 1:
        raise ConfigError(f"all shards must share a dtype, got {dtypes}")
    return shards


def hss_sort(
    keys: Sequence[np.ndarray],
    *,
    eps: float = 0.05,
    config: HSSConfig | None = None,
    machine: MachineModel | None = None,
    payloads: Sequence[np.ndarray] | None = None,
    verify: bool = True,
) -> SortRun:
    """Sort a distributed input with Histogram Sort with Sampling.

    Parameters
    ----------
    keys:
        One key array per simulated rank (``p = len(keys)``).
    eps:
        Load-imbalance threshold (ignored when ``config`` is given).
    config:
        Full :class:`HSSConfig`; defaults to the §6.1.2 constant-oversampling
        schedule with ``eps``.
    machine:
        Simulated machine (defaults to :data:`repro.bsp.machine.LAPTOP`).
    payloads:
        Optional per-rank payload arrays aligned with ``keys``.
    verify:
        Check sortedness, permutation and the ``(1+ε)`` load bound on the
        output (raises :class:`repro.errors.VerificationError` on failure).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> inputs = [rng.integers(0, 10**9, 5000) for _ in range(8)]
    >>> run = hss_sort(inputs, eps=0.05)
    >>> run.imbalance <= 1.05
    True
    """
    cfg = config if config is not None else HSSConfig(eps=eps)
    shards = _as_shards(keys)
    p = len(shards)
    engine = BSPEngine(p, machine=machine)
    if payloads is not None:
        if len(payloads) != p:
            raise ConfigError("payloads must match keys rank-for-rank")
        rank_args = [(shards[r], np.asarray(payloads[r])) for r in range(p)]
    else:
        rank_args = [(shards[r], None) for r in range(p)]

    result = engine.run(hss_sort_program, rank_args=rank_args, cfg=cfg)
    out_shards = [ret[0].keys for ret in result.returns]
    out_payloads = (
        [ret[0].payload for ret in result.returns] if payloads is not None else None
    )
    stats = result.returns[0][1]
    if verify:
        verify_sorted_output(shards, out_shards, cfg.eps)
    return SortRun(
        shards=out_shards,
        payloads=out_payloads,
        splitter_stats=stats,
        engine_result=result,
        algorithm="hss",
    )


def _run_named(
    name: str,
    program: Callable,
    keys: Sequence[np.ndarray],
    *,
    machine: MachineModel | None,
    verify: bool,
    verify_eps: float | None,
    program_kwargs: dict[str, Any],
) -> SortRun:
    shards = _as_shards(keys)
    p = len(shards)
    engine = BSPEngine(p, machine=machine)
    rank_args = [(shards[r],) for r in range(p)]
    result = engine.run(program, rank_args=rank_args, **program_kwargs)
    returns = result.returns
    # Programs return either Shard / ndarray, or (Shard/ndarray, stats).
    stats = None
    outs = []
    for ret in returns:
        if isinstance(ret, tuple):
            payload, rank_stats = ret
            if stats is None:
                stats = rank_stats
        else:
            payload = ret
        outs.append(payload.keys if isinstance(payload, Shard) else payload)
    if verify:
        verify_sorted_output(shards, outs, verify_eps)
    return SortRun(
        shards=outs,
        payloads=None,
        splitter_stats=stats if isinstance(stats, SplitterStats) else None,
        engine_result=result,
        algorithm=name,
    )


def parallel_sort(
    keys: Sequence[np.ndarray],
    algorithm: str = "hss",
    *,
    eps: float = 0.05,
    machine: MachineModel | None = None,
    seed: int = 0,
    verify: bool = True,
    **kwargs: Any,
) -> SortRun:
    """Sort with any algorithm from the paper, selected by name.

    ``kwargs`` are forwarded to the algorithm's program (e.g. ``radix_bits``
    for radix sort, ``over_partition_ratio`` for over-partitioning).
    """
    if algorithm not in ALGORITHMS:
        raise ConfigError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    return ALGORITHMS[algorithm](
        keys, eps=eps, machine=machine, seed=seed, verify=verify, **kwargs
    )


# --------------------------------------------------------------------- #
# Registry construction.  Baseline entries are bound lazily to avoid import
# cycles (baselines import the data-movement phase from core).
# --------------------------------------------------------------------- #
def _hss_entry(name: str, config_factory: Callable[..., HSSConfig]) -> Callable:
    def run(
        keys: Sequence[np.ndarray],
        *,
        eps: float,
        machine: MachineModel | None,
        seed: int,
        verify: bool,
        **kwargs: Any,
    ) -> SortRun:
        cfg = config_factory(eps=eps, seed=seed, **kwargs)
        result = hss_sort(keys, config=cfg, machine=machine, verify=verify)
        result.algorithm = name
        return result

    return run


def _node_level_entry(
    keys: Sequence[np.ndarray],
    *,
    eps: float,
    machine: MachineModel | None,
    seed: int,
    verify: bool,
    within_node_eps: float = 0.05,
    **kwargs: Any,
) -> SortRun:
    from repro.bsp.machine import LAPTOP
    from repro.core.node_sort import combined_eps, hss_node_sort_program

    effective_machine = machine if machine is not None else LAPTOP
    if effective_machine.cores_per_node < 2:
        raise ConfigError(
            "hss-node needs a multicore machine (machine.cores_per_node > 1)"
        )
    cfg = HSSConfig(
        eps=eps,
        within_node_eps=within_node_eps,
        node_level=True,
        seed=seed,
        **kwargs,
    )
    return _run_named(
        "hss-node",
        hss_node_sort_program,
        keys,
        machine=effective_machine,
        verify=verify,
        verify_eps=combined_eps(eps, within_node_eps),
        program_kwargs={"cfg": cfg},
    )


def _scanning_entry(
    keys: Sequence[np.ndarray],
    *,
    eps: float,
    machine: MachineModel | None,
    seed: int,
    verify: bool,
    **kwargs: Any,
) -> SortRun:
    from repro.baselines.scanning_sort import scanning_sort_program

    cfg = HSSConfig(eps=eps, seed=seed, **kwargs)
    return _run_named(
        "scanning",
        scanning_sort_program,
        keys,
        machine=machine,
        verify=verify,
        verify_eps=eps,
        program_kwargs={"cfg": cfg},
    )


def _baseline_entry(name: str, module: str, program_name: str, *, balanced: bool):
    def run(
        keys: Sequence[np.ndarray],
        *,
        eps: float,
        machine: MachineModel | None,
        seed: int,
        verify: bool,
        **kwargs: Any,
    ) -> SortRun:
        import importlib

        mod = importlib.import_module(module)
        program = getattr(mod, program_name)
        program_kwargs: dict[str, Any] = {"eps": eps, "seed": seed, **kwargs}
        return _run_named(
            name,
            program,
            keys,
            machine=machine,
            verify=verify,
            verify_eps=eps if balanced else None,
            program_kwargs=program_kwargs,
        )

    return run


ALGORITHMS: dict[str, Callable[..., SortRun]] = {
    "hss": _hss_entry("hss", HSSConfig.constant_oversampling),
    "hss-1round": _hss_entry("hss-1round", HSSConfig.one_round),
    "hss-2round": _hss_entry("hss-2round", lambda **kw: HSSConfig.k_rounds(2, **kw)),
    "hss-node": _node_level_entry,
    "scanning": _scanning_entry,
    "sample-regular": _baseline_entry(
        "sample-regular",
        "repro.baselines.sample_sort",
        "sample_sort_regular_program",
        balanced=True,
    ),
    "sample-random": _baseline_entry(
        "sample-random",
        "repro.baselines.sample_sort",
        "sample_sort_random_program",
        balanced=False,
    ),
    "sample-regular-parallel": _baseline_entry(
        "sample-regular-parallel",
        "repro.baselines.sample_sort_parallel",
        "sample_sort_regular_parallel_program",
        balanced=True,
    ),
    "histogram": _baseline_entry(
        "histogram",
        "repro.baselines.histogram_sort",
        "histogram_sort_program",
        balanced=True,
    ),
    "over-partition": _baseline_entry(
        "over-partition",
        "repro.baselines.over_partition",
        "over_partition_program",
        balanced=False,
    ),
    "exact-split": _baseline_entry(
        "exact-split",
        "repro.baselines.exact_split",
        "exact_split_sort_program",
        balanced=True,
    ),
    "bitonic": _baseline_entry(
        "bitonic",
        "repro.baselines.bitonic",
        "bitonic_sort_program",
        balanced=False,
    ),
    "radix": _baseline_entry(
        "radix",
        "repro.baselines.radix",
        "radix_sort_program",
        balanced=False,
    ),
}
