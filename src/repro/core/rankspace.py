"""Rank-space simulation of HSS splitter determination at massive ``p``.

A key observation (implicit in the paper's analysis, §3.3): HSS's splitter
phase is **distribution-free**.  Bernoulli sampling picks each *key* with
equal probability regardless of its value, and histogramming returns exact
global *ranks* — so the entire phase depends only on which ranks get
sampled, never on key values.  Replacing keys by their ranks (a monotone
bijection for duplicate-free inputs) therefore yields a *statistically
identical* process that needs no key arrays at all.

This module exploits that to simulate splitter determination for the
paper's large configurations (``p`` up to 256K, ``N = p·10⁶``, i.e. tens of
terabytes of notional keys) in milliseconds:

* per round, the number of samples inside each open merged interval of rank
  mass ``m`` is drawn as ``Binomial(m, q)``; the sampled ranks are uniform
  without replacement inside the interval;
* the histogram step is the identity (a rank's rank is itself);
* the same :class:`~repro.core.splitters.SplitterState` as the real SPMD
  program tracks the ``[L_j, U_j]`` bounds.

Contrast: classic histogram sort's probe refinement bisects *key space*, so
it is **not** distribution-free — which is precisely why HSS beats it on
skewed inputs (Fig 6.2).  :class:`RankSpaceSimulator` therefore also
supports an analytic CDF so the classic algorithm can be simulated at scale
for that comparison.

Used by: Table 6.1 (round counts), Fig 4.1 (measured sample sizes),
Fig 3.1 (interval shrinkage), and the Fig 6.1/6.2 cost models (round/sample
event counts fed to :mod:`repro.perf`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import HSSConfig
from repro.core.hss import RoundStats, SplitterStats
from repro.core.splitters import SplitterState
from repro.errors import ConfigError

__all__ = ["RankSpaceSimulator", "simulate_histogram_sort_rounds", "HistogramSortSim"]


def _sample_ranks_in_interval(
    lo: int, hi: int, prob: float, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli(prob) over ranks ``[lo, hi)``, exact count, unique ranks.

    Drawing ``Binomial(m, prob)`` positions uniformly *with* replacement and
    deduplicating under-counts slightly when collisions occur; we compensate
    by re-drawing until the exact binomial count is reached (collision rates
    are ~count²/m, negligible at the paper's scales, so the loop almost
    always runs once).
    """
    m = hi - lo
    if m <= 0 or prob <= 0.0:
        return np.empty(0, dtype=np.int64)
    if prob >= 1.0:
        return np.arange(lo, hi, dtype=np.int64)
    count = int(rng.binomial(m, prob))
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count > m // 2:
        # Dense regime: flip per-rank coins directly.
        picks = lo + np.where(rng.random(m) < prob)[0]
        return picks.astype(np.int64)
    picks = np.unique(rng.integers(lo, hi, size=count, dtype=np.int64))
    attempts = 0
    while len(picks) < count and attempts < 64:
        extra = rng.integers(lo, hi, size=count - len(picks), dtype=np.int64)
        picks = np.unique(np.concatenate((picks, extra)))
        attempts += 1
    return picks


class RankSpaceSimulator:
    """Exact statistical simulation of the HSS splitter phase in rank space."""

    def __init__(
        self,
        total_keys: int,
        nparts: int,
        cfg: HSSConfig,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if total_keys < nparts:
            raise ConfigError(
                f"need at least one key per part: N={total_keys}, p={nparts}"
            )
        self.total_keys = int(total_keys)
        self.nparts = int(nparts)
        self.cfg = cfg
        self.rng = rng if rng is not None else np.random.default_rng(cfg.seed)

    def run(self) -> SplitterStats:
        """Simulate until all splitters finalize (or the schedule's bound).

        Returns the same :class:`SplitterStats` the SPMD program produces,
        so benchmark code is agnostic to which engine generated it.
        """
        n, p, cfg = self.total_keys, self.nparts, self.cfg
        state = SplitterState(n, p, cfg.eps, key_dtype=np.int64)
        stats = SplitterStats(
            nparts=p, total_keys=n, eps=cfg.eps, method="hss-rankspace"
        )
        schedule = cfg.schedule
        max_rounds = cfg.max_rounds(p)

        round_index = 0
        while not state.all_finalized() and round_index < max_rounds:
            round_index += 1
            if round_index == 1:
                intervals = [(0, n)]
                mass = n
            else:
                merged = state.merged_intervals()
                # In rank space key == rank, so the rank bounds are usable
                # directly as sampling intervals.
                intervals = list(
                    zip(merged.lo_ranks.tolist(), merged.hi_ranks.tolist())
                )
                mass = merged.mass
            prob = schedule.probability(
                round_index,
                p=p,
                eps=cfg.eps,
                total_keys=n,
                candidate_mass=mass,
            )
            pieces = [
                _sample_ranks_in_interval(lo, hi, prob, self.rng)
                for lo, hi in intervals
            ]
            sampled = (
                np.unique(np.concatenate(pieces))
                if any(len(x) for x in pieces)
                else np.empty(0, dtype=np.int64)
            )
            state.update(sampled, sampled)  # a rank's rank is itself
            width = state.interval_width_stats()
            stats.rounds.append(
                RoundStats(
                    round_index=round_index,
                    probability=prob,
                    sample_size=len(sampled),
                    candidate_mass_before=mass,
                    finalized_after=state.num_finalized(),
                    open_intervals_after=int(width["open_splitters"]),
                    max_interval_width_after=width["max_width"],
                    mean_interval_width_after=width["mean_width"],
                )
            )

        stats.all_finalized = state.all_finalized()
        stats.max_rank_error = state.max_rank_error()
        return stats


# --------------------------------------------------------------------- #
# Classic histogram sort at scale (needs a key distribution -> CDF).
# --------------------------------------------------------------------- #
@dataclass
class HistogramSortSim:
    """Per-round record of the simulated classic histogram sort."""

    rounds: int
    probes_per_round: list[int] = field(default_factory=list)
    all_finalized: bool = False

    @property
    def total_probes(self) -> int:
        return sum(self.probes_per_round)


def simulate_histogram_sort_rounds(
    total_keys: int,
    nparts: int,
    eps: float,
    rank_of_key: Callable[[np.ndarray], np.ndarray],
    key_min: float,
    key_max: float,
    *,
    probes_per_splitter: int = 3,
    max_rounds: int = 256,
    key_dtype: np.dtype | type = np.float64,
    adaptive: bool = False,
) -> HistogramSortSim:
    """Simulate classic histogram sort's probe refinement against a CDF.

    ``rank_of_key(keys)`` must return the exact global rank (``N·F(key)``)
    for an array of probe positions in ``key_dtype`` — an analytic CDF for
    synthetic distributions, or binary search into the actual sorted keys
    for empirical ones.  Use an integer ``key_dtype`` for wide integer keys
    (float64 cannot resolve adjacent 63-bit keys, which would stall the
    bisection artificially).  The round count is what we measure (Fig 6.2's
    "Old" series).
    """
    from repro.baselines.histogram_sort import keyspace_probes

    state = SplitterState(total_keys, nparts, eps, key_dtype=key_dtype)
    sim = HistogramSortSim(rounds=0)

    for _ in range(max_rounds):
        if state.all_finalized():
            break
        probes = keyspace_probes(
            state, probes_per_splitter, key_min, key_max, adaptive=adaptive
        )
        if len(probes) == 0:
            break
        ranks = np.asarray(rank_of_key(probes), dtype=np.int64)
        order = np.argsort(probes, kind="stable")
        state.update(probes[order], ranks[order])
        sim.rounds += 1
        sim.probes_per_round.append(len(probes))

    sim.all_finalized = state.all_finalized()
    return sim
