"""Rank-space simulation of HSS splitter determination at massive ``p``.

A key observation (implicit in the paper's analysis, §3.3): HSS's splitter
phase is **distribution-free**.  Bernoulli sampling picks each *key* with
equal probability regardless of its value, and histogramming returns exact
global *ranks* — so the entire phase depends only on which ranks get
sampled, never on key values.  Replacing keys by their ranks (a monotone
bijection for duplicate-free inputs) therefore yields a *statistically
identical* process that needs no key arrays at all.

This module exploits that to simulate splitter determination for the
paper's large configurations (``p`` up to 256K, ``N = p·10⁶``, i.e. tens of
terabytes of notional keys) in milliseconds:

* per round, the number of samples inside each open merged interval of rank
  mass ``m`` is drawn as ``Binomial(m, q)``; the sampled ranks are uniform
  without replacement inside the interval;
* the histogram step is the identity (a rank's rank is itself);
* the same :class:`~repro.core.splitters.SplitterState` as the real SPMD
  program tracks the ``[L_j, U_j]`` bounds.

Contrast: classic histogram sort's probe refinement bisects *key space*, so
it is **not** distribution-free — which is precisely why HSS beats it on
skewed inputs (Fig 6.2).  :class:`RankSpaceSimulator` therefore also
supports an analytic CDF so the classic algorithm can be simulated at scale
for that comparison.

Used by: Table 6.1 (round counts), Fig 4.1 (measured sample sizes),
Fig 3.1 (interval shrinkage), and the Fig 6.1/6.2 cost models (round/sample
event counts fed to :mod:`repro.perf`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import HSSConfig
from repro.core.hss import RoundStats, SplitterStats
from repro.core.splitters import SplitterState
from repro.errors import ConfigError
from repro.utils.arrays import sorted_unique as _sorted_unique

__all__ = ["RankSpaceSimulator", "simulate_histogram_sort_rounds", "HistogramSortSim"]


def _draw_in_intervals(
    lo: np.ndarray, hi: np.ndarray, counts: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """``counts[i]`` uniform draws (with replacement) from each ``[lo_i, hi_i)``.

    Scalar-bound ``rng.integers`` is an order of magnitude faster than the
    broadcast array-bound form, so the single-interval case — round 1's
    whole-keyspace draw, by far the largest — gets the scalar path.
    """
    if len(lo) == 1:
        return rng.integers(lo[0], hi[0], size=int(counts[0]), dtype=np.int64)
    return rng.integers(
        np.repeat(lo, counts), np.repeat(hi, counts), dtype=np.int64
    )


def _sample_ranks_in_intervals(
    lo: np.ndarray, hi: np.ndarray, prob: float, rng: np.random.Generator
) -> np.ndarray:
    """Bernoulli(prob) over the disjoint rank intervals ``[lo_i, hi_i)``.

    Returns the sorted union of sampled ranks.  Statistically this is a
    per-rank coin flip with success probability ``prob``, realized as an
    exact ``Binomial(m_i, prob)`` count per interval followed by uniform
    sampling without replacement inside the interval — but batched across
    *all* intervals of a round.  Late HSS rounds have tens of thousands of
    narrow intervals; drawing them one `np.unique` at a time used to
    dominate quick-tier benchmark wall-clock.

    Sampling without replacement draws positions uniformly *with*
    replacement and deduplicates; collisions (rate ~count²/m, negligible in
    the sparse regime) are compensated by re-drawing only the deficient
    intervals until every interval holds its exact binomial count.  Dense
    intervals (count > m/16) flip per-rank coins directly instead: above
    that occupancy the with-replacement top-up re-sorts the whole draw per
    round of collisions, while coins cost O(m) with already-sorted output.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    masses = hi - lo
    keep = masses > 0
    if prob <= 0.0 or not np.any(keep):
        return np.empty(0, dtype=np.int64)
    lo, hi, masses = lo[keep], hi[keep], masses[keep]
    # Normalize to ascending rank order so every return path below can rely
    # on "per-interval outputs are ascending and intervals are disjoint" to
    # produce a globally sorted result without a final sort.
    if len(lo) > 1 and np.any(lo[1:] < lo[:-1]):
        order = np.argsort(lo, kind="stable")
        lo, hi, masses = lo[order], hi[order], masses[order]
    if prob >= 1.0:
        pieces = [np.arange(a, b, dtype=np.int64) for a, b in zip(lo, hi)]
        return np.concatenate(pieces)

    counts = rng.binomial(masses, prob)

    # Dense regime: per-rank coins over the interval's full mass.
    dense = counts > masses // 16
    dense_picks = np.empty(0, dtype=np.int64)
    if np.any(dense):
        # Conceptually one coin per rank of the dense intervals'
        # concatenated mass; flipped in bounded slabs so the float scratch
        # stays ~128 MB no matter how large the notional key space is.
        # Slab outputs are ascending, so the result needs no sort.
        d_lo, d_m = lo[dense], masses[dense]
        bounds = np.concatenate(([0], np.cumsum(d_m)))
        mass_total = int(bounds[-1])
        slab = 1 << 24
        pieces = []
        for start in range(0, mass_total, slab):
            stop = min(start + slab, mass_total)
            pieces.append(np.where(rng.random(stop - start) < prob)[0] + start)
        hits = np.concatenate(pieces)
        owner = np.searchsorted(bounds, hits, side="right") - 1
        dense_picks = d_lo[owner] + (hits - bounds[owner])
        lo, hi, counts = lo[~dense], hi[~dense], counts[~dense]

    positive = counts > 0
    lo, hi, counts = lo[positive], hi[positive], counts[positive]
    total = int(counts.sum())
    if total == 0:
        picks = np.empty(0, dtype=np.int64)
    else:
        picks = _sorted_unique(_draw_in_intervals(lo, hi, counts, rng))
        attempts = 0
        # Intervals are disjoint, so per-interval unique counts are
        # recoverable from the sorted union by binary search; top up only
        # the intervals that actually collided.
        while len(picks) < total and attempts < 64:
            have = np.searchsorted(picks, hi) - np.searchsorted(picks, lo)
            deficit = counts - have
            short = deficit > 0
            extra = _draw_in_intervals(
                lo[short], hi[short], deficit[short], rng
            )
            picks = _sorted_unique(np.concatenate((picks, extra)))
            attempts += 1

    if len(dense_picks):
        if len(picks) == 0:
            return dense_picks
        # Dense and sparse intervals are disjoint, but interleaved in rank
        # order; one final sort merges the two sorted halves.
        picks = np.sort(np.concatenate((picks, dense_picks)))
    return picks


class RankSpaceSimulator:
    """Exact statistical simulation of the HSS splitter phase in rank space."""

    def __init__(
        self,
        total_keys: int,
        nparts: int,
        cfg: HSSConfig,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if total_keys < nparts:
            raise ConfigError(
                f"need at least one key per part: N={total_keys}, p={nparts}"
            )
        self.total_keys = int(total_keys)
        self.nparts = int(nparts)
        self.cfg = cfg
        self.rng = rng if rng is not None else np.random.default_rng(cfg.seed)

    def run(self) -> SplitterStats:
        """Simulate until all splitters finalize (or the schedule's bound).

        Returns the same :class:`SplitterStats` the SPMD program produces,
        so benchmark code is agnostic to which engine generated it.
        """
        n, p, cfg = self.total_keys, self.nparts, self.cfg
        state = SplitterState(n, p, cfg.eps, key_dtype=np.int64)
        stats = SplitterStats(
            nparts=p, total_keys=n, eps=cfg.eps, method="hss-rankspace"
        )
        schedule = cfg.schedule
        max_rounds = cfg.max_rounds(p)

        round_index = 0
        while not state.all_finalized() and round_index < max_rounds:
            round_index += 1
            if round_index == 1:
                lo_ranks = np.zeros(1, dtype=np.int64)
                hi_ranks = np.full(1, n, dtype=np.int64)
                mass = n
            else:
                merged = state.merged_intervals()
                # In rank space key == rank, so the rank bounds are usable
                # directly as sampling intervals.
                lo_ranks = merged.lo_ranks
                hi_ranks = merged.hi_ranks
                mass = merged.mass
            prob = schedule.probability(
                round_index,
                p=p,
                eps=cfg.eps,
                total_keys=n,
                candidate_mass=mass,
            )
            sampled = _sample_ranks_in_intervals(lo_ranks, hi_ranks, prob, self.rng)
            state.update(sampled, sampled)  # a rank's rank is itself
            width = state.interval_width_stats()
            stats.rounds.append(
                RoundStats(
                    round_index=round_index,
                    probability=prob,
                    sample_size=len(sampled),
                    candidate_mass_before=mass,
                    finalized_after=state.num_finalized(),
                    open_intervals_after=int(width["open_splitters"]),
                    max_interval_width_after=width["max_width"],
                    mean_interval_width_after=width["mean_width"],
                )
            )

        stats.all_finalized = state.all_finalized()
        stats.max_rank_error = state.max_rank_error()
        return stats


# --------------------------------------------------------------------- #
# Classic histogram sort at scale (needs a key distribution -> CDF).
# --------------------------------------------------------------------- #
@dataclass
class HistogramSortSim:
    """Per-round record of the simulated classic histogram sort."""

    rounds: int
    probes_per_round: list[int] = field(default_factory=list)
    all_finalized: bool = False

    @property
    def total_probes(self) -> int:
        return sum(self.probes_per_round)


def simulate_histogram_sort_rounds(
    total_keys: int,
    nparts: int,
    eps: float,
    rank_of_key: Callable[[np.ndarray], np.ndarray],
    key_min: float,
    key_max: float,
    *,
    probes_per_splitter: int = 3,
    max_rounds: int = 256,
    key_dtype: np.dtype | type = np.float64,
    adaptive: bool = False,
) -> HistogramSortSim:
    """Simulate classic histogram sort's probe refinement against a CDF.

    ``rank_of_key(keys)`` must return the exact global rank (``N·F(key)``)
    for an array of probe positions in ``key_dtype`` — an analytic CDF for
    synthetic distributions, or binary search into the actual sorted keys
    for empirical ones.  Use an integer ``key_dtype`` for wide integer keys
    (float64 cannot resolve adjacent 63-bit keys, which would stall the
    bisection artificially).  The round count is what we measure (Fig 6.2's
    "Old" series).
    """
    from repro.baselines.histogram_sort import keyspace_probes

    state = SplitterState(total_keys, nparts, eps, key_dtype=key_dtype)
    sim = HistogramSortSim(rounds=0)

    for _ in range(max_rounds):
        if state.all_finalized():
            break
        probes = keyspace_probes(
            state, probes_per_splitter, key_min, key_max, adaptive=adaptive
        )
        if len(probes) == 0:
            break
        ranks = np.asarray(rank_of_key(probes), dtype=np.int64)
        order = np.argsort(probes, kind="stable")
        state.update(probes[order], ranks[order])
        sim.rounds += 1
        sim.probes_per_round.append(len(probes))

    sim.all_finalized = state.all_finalized()
    return sim
