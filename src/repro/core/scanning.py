"""The scanning algorithm of Axtmann et al. (§3.2, Theorem 3.2.1).

Given a Bernoulli sample whose *exact global ranks* are known (from one
histogramming round), the scanning algorithm walks the sorted sample and
greedily closes a processor's bucket just before its load would exceed the
cap ``N(1+ε)/p``.  Every processor except possibly the last is then within
the cap *by construction*; Theorem 3.2.1 shows that with sampling ratio
``s = 2/ε`` the leftover for the last processor is also within the cap
w.h.p. — using an ``O(p/ε)`` sample instead of sample sort's
``O(p·log N/ε²)``.

The paper presents scanning as the best one-round method (better constants
than one-round HSS) but notes it does not extend to multiple rounds; we
implement it both as a standalone splitter chooser and as a baseline in the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["ScanResult", "scanning_splitters", "scanning_sample_probability"]


def scanning_sample_probability(total_keys: int, p: int, eps: float) -> float:
    """Theorem 3.2.1's inclusion probability ``p·s/N`` with ``s = 2/ε``."""
    if total_keys <= 0:
        raise ConfigError(f"total_keys must be positive, got {total_keys}")
    return min(1.0, 2.0 * p / (eps * total_keys))


@dataclass(frozen=True)
class ScanResult:
    """Splitters chosen by the scan plus per-bucket rank accounting."""

    #: ``p−1`` splitter keys (ascending).
    splitters: np.ndarray
    #: Rank of each splitter (bucket ``i`` holds ranks
    #: ``[splitter_ranks[i-1], splitter_ranks[i])``).
    splitter_ranks: np.ndarray
    #: Number of keys each of the ``p`` buckets receives.
    loads: np.ndarray

    @property
    def max_load(self) -> int:
        return int(self.loads.max())

    def imbalance(self, total_keys: int, p: int) -> float:
        """Load imbalance ``max load / (N/p)``."""
        return float(self.max_load) / (total_keys / p)


def scanning_splitters(
    sample_keys: np.ndarray,
    sample_ranks: np.ndarray,
    total_keys: int,
    p: int,
    eps: float,
) -> ScanResult:
    """Greedily choose ``p−1`` splitters from a ranked sample.

    Parameters
    ----------
    sample_keys, sample_ranks:
        The histogrammed sample, sorted by key; ``sample_ranks[t]`` is the
        exact number of input keys strictly below ``sample_keys[t]``.
    total_keys:
        ``N``.
    p:
        Number of buckets/processors.
    eps:
        Load-imbalance threshold; per-bucket cap is ``⌊N(1+ε)/p⌋``.

    Notes
    -----
    Bucket ``i`` is closed at the largest sampled key whose rank keeps the
    bucket's load ≤ cap ("skips to the next processor when the total load
    would exceed ``N(1+ε)/p``"); the last bucket absorbs the remainder,
    which Theorem 3.2.1 bounds w.h.p. when the sample used probability
    ``2p/(εN)``.
    """
    sample_keys = np.asarray(sample_keys)
    sample_ranks = np.asarray(sample_ranks, dtype=np.int64)
    if len(sample_keys) != len(sample_ranks):
        raise ConfigError("sample_keys and sample_ranks length mismatch")
    if p < 1:
        raise ConfigError(f"p must be >= 1, got {p}")
    if np.any(sample_ranks[1:] < sample_ranks[:-1]):
        raise ConfigError("sample_ranks must be non-decreasing")

    cap = int((1.0 + eps) * total_keys / p)
    if cap < 1:
        raise ConfigError(
            f"bucket cap is zero: N={total_keys}, p={p}, eps={eps}"
        )

    splitters = np.empty(max(0, p - 1), dtype=sample_keys.dtype)
    splitter_ranks = np.empty(max(0, p - 1), dtype=np.int64)
    start = 0  # rank where the current bucket begins
    for i in range(p - 1):
        # Largest sample rank ≤ start + cap closes bucket i.
        idx = int(np.searchsorted(sample_ranks, start + cap, side="right")) - 1
        if idx < 0 or sample_ranks[idx] <= start:
            # No sample advances the scan: close an empty/duplicate bucket at
            # the current position (possible only for under-sized samples —
            # the theorem's sampling rate makes this vanishingly rare).
            if len(sample_keys) == 0:
                raise ConfigError("cannot scan an empty sample")
            rank = start
            key = sample_keys[min(idx + 1, len(sample_keys) - 1)]
        else:
            rank = int(sample_ranks[idx])
            key = sample_keys[idx]
        splitters[i] = key
        splitter_ranks[i] = rank
        start = rank

    bounds = np.concatenate(
        (np.zeros(1, dtype=np.int64), splitter_ranks, [np.int64(total_keys)])
    )
    loads = np.diff(bounds)
    return ScanResult(splitters, splitter_ranks, loads)
