"""Phase 3: bucketize, all-to-all exchange, and merge (identical for HSS,
sample sort and histogram sort — §2.2 step 3).

Once splitters are known, every rank cuts its sorted local array into ``p``
contiguous runs (binary search per splitter), sends run ``i`` to rank ``i``
in one personalized all-to-all, and merges the ``p`` sorted runs it
receives.  Keys may carry a fixed-size payload (the Mira experiments use
8-byte keys + 4-byte payloads); payloads are permuted along with their keys.

Cost charging follows §5.1: partitioning is ``(p−1)`` binary searches plus a
linear pass of memory traffic; the merge is ``(N_recv)·log p`` comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.bsp.engine import Context

__all__ = [
    "Shard",
    "locally_sorted_shard",
    "partition_by_splitters",
    "exchange_and_merge",
]


@dataclass
class Shard:
    """A rank's keys (sorted) plus an optional aligned payload array."""

    keys: np.ndarray
    payload: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.payload is not None and len(self.payload) != len(self.keys):
            raise ValueError(
                f"payload length {len(self.payload)} != keys length {len(self.keys)}"
            )

    def __len__(self) -> int:
        return len(self.keys)

    def slice(self, start: int, stop: int) -> "Shard":
        return Shard(
            self.keys[start:stop],
            None if self.payload is None else self.payload[start:stop],
        )


def locally_sorted_shard(
    ctx: Context,
    keys: np.ndarray,
    payload: np.ndarray | None = None,
) -> Shard:
    """Stable local sort with cost charging, for every program's phase 1.

    When a payload rides along it is permuted with its keys (argsort);
    otherwise the cheaper in-place path is taken.  Charged as a plain key
    sort either way, matching §5.1's accounting.
    """
    if payload is not None:
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        payload = payload[order]
    else:
        keys = np.sort(keys, kind="stable")
    ctx.charge_sort(len(keys), key_bytes=keys.dtype.itemsize)
    return Shard(keys, payload)


def partition_by_splitters(
    shard: Shard,
    positions: np.ndarray,
) -> list[Shard]:
    """Cut a sorted shard into ``len(positions)+1`` contiguous bucket runs.

    ``positions`` are the pre-computed boundary indices (from the key-space
    adapter's ``bucket_positions``); they must be non-decreasing.
    """
    n = len(shard)
    bounds = np.empty(len(positions) + 2, dtype=np.int64)
    bounds[0] = 0
    bounds[1:-1] = positions
    bounds[-1] = n
    if np.any(np.diff(bounds) < 0):
        raise ValueError("bucket boundary positions must be non-decreasing")
    return [
        shard.slice(int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
    ]


def _merge_runs(runs: list[Shard], key_dtype: np.dtype) -> Shard:
    """Merge ``p`` sorted runs.

    Implemented as concatenate + mergesort: NumPy's mergesort (timsort) on
    the concatenation of sorted runs detects and galloping-merges the runs,
    which is the vectorized equivalent of a ``p``-way merge; the simulated
    cost is charged separately as ``total·log₂(ways)`` by the caller.
    """
    nonempty = [r for r in runs if len(r)]
    if not nonempty:
        return Shard(np.empty(0, dtype=key_dtype))
    keys = np.concatenate([r.keys for r in nonempty])
    have_payload = nonempty[0].payload is not None
    if have_payload:
        payload = np.concatenate([r.payload for r in nonempty])
        order = np.argsort(keys, kind="stable")
        return Shard(keys[order], payload[order])
    keys.sort(kind="stable")
    return Shard(keys)


def exchange_and_merge(
    ctx: Context,
    shard: Shard,
    positions: np.ndarray,
    *,
    node_combining: bool = False,
    key_bytes: int | None = None,
) -> Generator:
    """Run the full data-movement phase for one rank (``yield from`` this).

    Parameters
    ----------
    ctx:
        BSP context.
    shard:
        The rank's *sorted* local data.
    positions:
        Bucket boundary indices for the ``p−1`` splitters.
    node_combining:
        Price the all-to-all with §6.1.1 per-node message combining.
    key_bytes:
        Override the per-key byte size for cost charging (defaults to the
        key dtype's item size plus payload item size).

    Returns
    -------
    The rank's merged output :class:`Shard`.
    """
    p = ctx.nprocs
    if len(positions) != p - 1:
        raise ValueError(
            f"expected {p - 1} boundary positions, got {len(positions)}"
        )
    if key_bytes is None:
        key_bytes = shard.keys.dtype.itemsize + (
            shard.payload.dtype.itemsize if shard.payload is not None else 0
        )

    # Bucketize: p−1 binary searches (already done by the caller to get
    # `positions`) plus one linear pass of copies.
    outgoing = partition_by_splitters(shard, positions)
    ctx.charge_binary_searches(p - 1, max(1, len(shard)))
    ctx.charge_bytes(len(shard) * key_bytes)

    payload_rows = [
        (run.keys, run.payload) if run.payload is not None else run.keys
        for run in outgoing
    ]
    received = yield from ctx.alltoall(payload_rows, node_combining=node_combining)

    if outgoing[0].payload is not None:
        runs = [Shard(k, v) for (k, v) in received]
    else:
        runs = [Shard(k) for k in received]
    merged = _merge_runs(runs, shard.keys.dtype)
    ctx.charge_merge(len(merged), p, key_bytes=key_bytes)
    return merged
