"""Configuration of an HSS run: load-balance target and sampling schedule.

The paper exposes two knobs:

* ``eps`` — the application's load-imbalance tolerance; every processor must
  end with at most ``N(1+eps)/p`` keys.
* the **sampling schedule** — how aggressively each histogramming round
  samples.  Section 3.3 analyzes the geometric schedule
  ``s_j = (2·ln p / eps)^{j/k}`` for a fixed round count ``k``; §6.1.2's
  implementation instead uses *constant oversampling* (expected ``f·p``
  sample keys per round, ``f = 5``) and runs until all splitters finalize.

Both schedules are provided.  :class:`SamplingSchedule` converts a round
index plus the current candidate-set mass ``G_j`` into the Bernoulli
inclusion probability for that round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.utils.validation import check_epsilon, check_positive_int

__all__ = ["SamplingSchedule", "HSSConfig"]


@dataclass(frozen=True)
class SamplingSchedule:
    """Maps a histogramming round to its Bernoulli inclusion probability.

    Parameters
    ----------
    kind:
        ``"geometric"`` — the §3.3 theory schedule: round ``j`` (1-based)
        uses ratio ``s_j = (2 ln p / eps)^{j/k}``, i.e. inclusion
        probability ``p·s_j/N`` applied to keys inside splitter intervals.
        Guarantees finalization after exactly ``k`` rounds w.h.p.
        (Lemma 3.3.1).

        ``"constant"`` — the §6.1.2 practical schedule: every round aims at
        an expected ``oversample·p`` total sample drawn from the candidate
        set, i.e. probability ``oversample·p / G_j``.  Runs until all
        splitters finalize; Lemma 3.3.2 bounds the rounds by
        ``O(log(log p / eps))``.
    rounds:
        ``k`` for the geometric schedule (ignored for constant).
    oversample:
        ``f`` for the constant schedule (ignored for geometric).
    """

    kind: str = "constant"
    rounds: int = 2
    oversample: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in ("geometric", "constant"):
            raise ConfigError(
                f"schedule kind must be 'geometric' or 'constant', got {self.kind!r}"
            )
        check_positive_int(self.rounds, "rounds")
        if self.oversample <= 0:
            raise ConfigError(f"oversample must be > 0, got {self.oversample}")

    # ------------------------------------------------------------------ #
    def final_ratio(self, p: int, eps: float) -> float:
        """The terminal sampling ratio ``s_k = 2·ln p / eps`` (Thm 3.3.4)."""
        return 2.0 * math.log(max(2, p)) / eps

    def ratio(self, round_index: int, p: int, eps: float) -> float:
        """Geometric-schedule ratio ``s_j`` for 1-based ``round_index``."""
        s_k = self.final_ratio(p, eps)
        j = min(round_index, self.rounds)
        return s_k ** (j / self.rounds)

    def probability(
        self,
        round_index: int,
        *,
        p: int,
        eps: float,
        total_keys: int,
        candidate_mass: int,
    ) -> float:
        """Inclusion probability for ``round_index`` (1-based).

        ``candidate_mass`` is ``G_{j-1}`` — how many input keys currently lie
        in splitter intervals (``N`` before the first round).
        """
        if total_keys <= 0:
            return 0.0
        if self.kind == "geometric":
            return min(1.0, p * self.ratio(round_index, p, eps) / total_keys)
        # Constant oversampling: expected f·p keys out of the candidate set.
        if candidate_mass <= 0:
            return 0.0
        return min(1.0, self.oversample * p / candidate_mass)

    def max_rounds(self, p: int, eps: float) -> int:
        """Stopping bound on rounds.

        Geometric: exactly ``rounds``.  Constant: the §6.2 bound
        ``⌈ln(2 ln p / eps) / ln(f/2)⌉`` (plus slack; the driver stops as
        soon as all splitters finalize, which in practice is earlier).
        """
        if self.kind == "geometric":
            return self.rounds
        from repro.theory.rounds import round_bound_constant_oversampling

        return 2 * round_bound_constant_oversampling(p, eps, self.oversample) + 4


@dataclass(frozen=True)
class HSSConfig:
    """Full configuration of a Histogram-Sort-with-Sampling run."""

    #: Load-imbalance threshold: final per-processor load ≤ ``N(1+eps)/p``.
    eps: float = 0.05
    #: Sampling schedule (see :class:`SamplingSchedule`).
    schedule: SamplingSchedule = field(default_factory=SamplingSchedule)
    #: Use the §3.4 approximate-histogramming oracle instead of exact
    #: histograms over the local input.
    approximate_histograms: bool = False
    #: Tag keys with ``(PE, index)`` to tolerate heavy duplicates (§4.3).
    tag_duplicates: bool = False
    #: Two-level node partitioning (§6.1): determine splitters across nodes,
    #: combine messages per node, sort within nodes by regular sampling.
    node_level: bool = False
    #: Load-balance threshold used for the within-node regular-sampling step
    #: when ``node_level`` is on (the paper uses 5% within vs 2% across).
    within_node_eps: float = 0.05
    #: Random seed for all sampling.
    seed: int = 0
    #: Hard cap on histogramming rounds (safety net; the schedule's own
    #: bound is used when smaller).
    max_rounds_cap: int = 64
    #: If True (default), raise when splitter determination cannot finalize
    #: within its round budget (e.g. untagged heavy duplicates).  If False,
    #: proceed with the best splitters found — the output is still globally
    #: sorted, only the load-balance contract may be missed (useful for
    #: measuring *how badly* a configuration degrades).
    strict: bool = True
    #: Warm-start hints: ``((lo, hi), ...)`` key-space interval pairs from a
    #: previous run on similar data (a splitter cache stores the previous
    #: final splitters as degenerate ``(s, s)`` pairs).  The first
    #: histogramming round probes the pair endpoints instead of sampling,
    #: so a repeat workload finalizes in one cheap probe round; stale hints
    #: only cost that round — correctness never depends on them.  ``None``
    #: (the default) is a cold start, bit-identical to the historical path.
    initial_intervals: tuple | None = None

    def __post_init__(self) -> None:
        check_epsilon(self.eps, "eps")
        check_epsilon(self.within_node_eps, "within_node_eps")
        check_positive_int(self.max_rounds_cap, "max_rounds_cap")
        if self.initial_intervals is not None:
            pairs = tuple(
                (pair[0], pair[1]) for pair in self.initial_intervals
            )
            if not pairs:
                raise ConfigError(
                    "initial_intervals must contain at least one (lo, hi) "
                    "pair (pass None for a cold start)"
                )
            if any(hi < lo for lo, hi in pairs):
                raise ConfigError(
                    "initial_intervals pairs must satisfy lo <= hi"
                )
            object.__setattr__(self, "initial_intervals", pairs)

    def max_rounds(self, p: int) -> int:
        """Effective round cap for ``p`` processors."""
        return min(self.max_rounds_cap, self.schedule.max_rounds(p, self.eps))

    @staticmethod
    def one_round(eps: float = 0.05, **kwargs: object) -> "HSSConfig":
        """HSS with a single histogramming round (Lemma 3.2.1 setting)."""
        return HSSConfig(
            eps=eps, schedule=SamplingSchedule("geometric", rounds=1), **kwargs
        )

    @staticmethod
    def k_rounds(k: int, eps: float = 0.05, **kwargs: object) -> "HSSConfig":
        """HSS with the §3.3 geometric schedule and ``k`` rounds."""
        return HSSConfig(
            eps=eps, schedule=SamplingSchedule("geometric", rounds=k), **kwargs
        )

    @staticmethod
    def constant_oversampling(
        oversample: float = 5.0, eps: float = 0.05, **kwargs: object
    ) -> "HSSConfig":
        """HSS with the §6.1.2 constant-oversampling schedule."""
        return HSSConfig(
            eps=eps,
            schedule=SamplingSchedule("constant", oversample=oversample),
            **kwargs,
        )
