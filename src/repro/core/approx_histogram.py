"""Approximate histogramming via representative samples (§3.4).

Instead of answering each histogram probe with a binary search over the
*full* sorted local input (``O(log(N/p))`` per probe), every processor keeps
a resident block-random :class:`~repro.sampling.representative.
RepresentativeSample` of ``s = √(2p·ln p)/ε_oracle`` keys and answers probes
against it (``O(log s)`` per probe, and the sample can live in cache).

Theorem 3.4.1: the reduced estimate is within ``ε_oracle·N/p`` of the true
global rank w.h.p., valid for up to ``p⁴`` queries.  Error budgeting: HSS
finalizes a splitter when its *reported* rank is within
``ε_state·N/(2p)`` of target, so the *true* rank error is at most
``ε_state·N/(2p) + ε_oracle·N/p``.  Choosing ``ε_state = ε/2`` and
``ε_oracle = ε/4`` keeps the end-to-end bound at the configured
``ε·N/(2p)`` — :class:`ApproxHistogramKeySpace` applies exactly that split.

Usage: wrap the plain key space; the HSS program calls
:meth:`ApproxHistogramKeySpace.prepare` once per rank before the first
round.  (Tagged key spaces are not supported — the §3.4 estimator is
defined over plain keys, and the paper treats the two extensions as
independent.)
"""

from __future__ import annotations

import numpy as np

from repro.core.keyspace import PlainKeySpace
from repro.core.splitters import SplitterState
from repro.errors import ConfigError
from repro.sampling.representative import (
    RepresentativeSample,
    representative_sample_size,
)

__all__ = ["ApproxHistogramKeySpace"]


class ApproxHistogramKeySpace(PlainKeySpace):
    """Plain key space whose local histograms come from the §3.4 oracle."""

    def __init__(self, key_dtype: np.dtype | type, eps: float) -> None:
        super().__init__(key_dtype)
        if not 0.0 < eps <= 1.0:
            raise ConfigError(f"eps must be in (0, 1], got {eps}")
        self.eps = float(eps)
        #: Tolerance split (see module docstring).
        self.state_eps = self.eps / 2.0
        self.oracle_eps = self.eps / 4.0
        self._oracle: RepresentativeSample | None = None

    # -- per-rank preparation --------------------------------------------
    def prepare(
        self,
        local_sorted: np.ndarray,
        nparts: int,
        rng: np.random.Generator,
    ) -> None:
        """Build this rank's resident representative sample (once)."""
        if self._oracle is None:
            s = representative_sample_size(nparts, self.oracle_eps)
            self._oracle = RepresentativeSample(local_sorted, s, rng)

    @property
    def oracle(self) -> RepresentativeSample:
        if self._oracle is None:
            raise ConfigError(
                "ApproxHistogramKeySpace.prepare() must run before histograms"
            )
        return self._oracle

    @property
    def resident_sample_size(self) -> int:
        """Per-processor representative sample size actually kept."""
        return self.oracle.s

    # -- overridden primitives --------------------------------------------
    def make_state(
        self, total_keys: int, nparts: int, eps: float, **state_kwargs
    ) -> SplitterState:
        # Tighten the splitter acceptance window to eps/2 so the oracle's
        # eps/4 estimation error still lands inside the configured eps.
        return SplitterState(
            total_keys,
            nparts,
            self.state_eps,
            key_dtype=self.key_dtype,
            **state_kwargs,
        )

    def local_counts(
        self, local_sorted: np.ndarray, rank: int, probes: np.ndarray
    ) -> np.ndarray:
        """Estimated local ranks from the resident sample.

        Returned as float64 — the cross-processor reduction sums estimates
        and the central processor rounds once, avoiding p rounding biases.
        """
        return self.oracle.local_rank_estimate(probes)
