"""Two-level node partitioning with shared memory (§6.1).

The paper's implementation exploits multicore nodes three ways:

1. **message combining** — all per-core messages headed to the same node
   travel as one network message (``~cores²`` fewer messages);
2. **node-level splitter determination** — HSS determines ``n−1`` splitters
   for the *nodes* rather than ``p−1`` for the cores, shrinking the
   histogram and sample by ``cores×``;
3. **within-node sort** — once a node owns its bucket, the final
   redistribution across its cores runs entirely in shared memory, using
   sample sort with regular sampling ("since the number of splitters
   required for splitting data within node is significantly smaller").

The load-balance thresholds follow §6.1.2: ``eps`` (2% in the paper) across
nodes and ``within_node_eps`` (5%) across a node's cores, so per-core load
is bounded by ``N/p·(1+eps)(1+within_node_eps)``.

:func:`hss_node_sort_program` is the SPMD program;
:func:`combined_eps` gives the end-to-end bound for verification.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.algorithms.spec import AlgorithmSpec
from repro.bsp.engine import Context
from repro.core.config import HSSConfig
from repro.core.data_movement import Shard
from repro.core.hss import (
    HSS_PHASE_EXCHANGE,
    HSS_PHASE_HISTOGRAM,
    HSS_PHASE_LOCAL_SORT,
    hss_splitter_program,
)
from repro.core.keyspace import make_keyspace
from repro.errors import BSPError, ConfigError
from repro.sampling.regular import regular_sample
from repro.utils.rng import RngTree

__all__ = ["hss_node_sort_program", "combined_eps", "node_sample_sort"]

HSS_PHASE_WITHIN_NODE = "within-node sort"


def combined_eps(eps: float, within_node_eps: float) -> float:
    """End-to-end per-core load bound of the two-level scheme."""
    return (1.0 + eps) * (1.0 + within_node_eps) - 1.0


def node_sample_sort(node_ctx, keys: np.ndarray, eps: float) -> Generator:
    """Sample sort with regular sampling inside one node (§6.1.2, step 3).

    Runs over a node communicator; all collectives are shared-memory priced.
    ``keys`` must already be sorted (they arrive merged from the global
    exchange).  Returns this core's final slice.
    """
    c = node_ctx.nprocs
    if c == 1:
        return keys
    s = max(1, math.ceil(c / eps))
    sample = regular_sample(keys, s)
    gathered = yield from node_ctx.gather(sample, root=0)
    if node_ctx.rank == 0:
        combined = np.sort(np.concatenate([g for g in gathered if len(g)]))
        node_ctx.charge_sort(len(combined), key_bytes=keys.dtype.itemsize)
        m = len(combined)
        s_eff = max(1, m // c)
        idx = np.clip(
            np.arange(1, c, dtype=np.int64) * s_eff - c // 2 - 1, 0, m - 1
        )
        splitters = combined[idx]
    else:
        splitters = None
    splitters = yield from node_ctx.bcast(splitters, root=0)
    positions = np.searchsorted(keys, splitters, side="left")
    node_ctx.charge_binary_searches(c - 1, max(1, len(keys)))
    bounds = np.concatenate(([0], positions, [len(keys)]))
    parts = [keys[bounds[i]: bounds[i + 1]] for i in range(c)]
    received = yield from node_ctx.alltoall(parts)
    merged = (
        np.concatenate([r for r in received if len(r)])
        if any(len(r) for r in received)
        else keys[:0]
    )
    merged.sort(kind="stable")
    node_ctx.charge_merge(len(merged), c, key_bytes=keys.dtype.itemsize)
    return merged


def hss_node_sort_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    cfg: HSSConfig,
) -> Generator:
    """SPMD two-level HSS sort; returns ``(Shard, SplitterStats)``.

    Requires an engine configured with a :class:`~repro.bsp.node.NodeLayout`
    (``machine.cores_per_node > 1`` or an explicit layout).
    """
    layout = ctx.node_layout
    if layout is None:
        raise BSPError("node-level HSS requires a NodeLayout on the engine")
    nnodes = layout.nnodes
    if nnodes < 1:
        raise ConfigError("need at least one node")
    rng = RngTree(cfg.seed).generator("hss-node-sample", ctx.rank)
    keyspace = make_keyspace(keys.dtype, cfg.tag_duplicates)

    with ctx.phase(HSS_PHASE_LOCAL_SORT):
        keys = np.sort(keys, kind="stable")
        ctx.charge_sort(len(keys), key_bytes=keys.dtype.itemsize)

    # --- node-level splitter determination (n−1 splitters, all cores help)
    with ctx.phase(HSS_PHASE_HISTOGRAM):
        if nnodes > 1:
            # Weighted targets: node b must receive N·cores_b/p keys so that
            # per-core load stays bounded on ragged layouts (partially
            # filled last node).
            sizes = layout.node_sizes().astype(np.float64)
            fractions = np.cumsum(sizes)[:-1] / layout.nprocs
            tol_fraction = cfg.eps * float(sizes.min()) / (2.0 * layout.nprocs)
            splitters, stats = yield from hss_splitter_program(
                ctx,
                keys,
                nparts=nnodes,
                cfg=cfg,
                keyspace=keyspace,
                rng=rng,
                target_fractions=fractions,
                tolerance_fraction=tol_fraction,
            )
            node_positions = keyspace.bucket_positions(keys, ctx.rank, splitters)
        else:
            stats = None
            node_positions = np.empty(0, dtype=np.int64)

    # --- global exchange: node buckets, combined per node ----------------
    with ctx.phase(HSS_PHASE_EXCHANGE):
        bounds = np.concatenate(([0], node_positions, [len(keys)]))
        parts: list[np.ndarray] = [keys[:0]] * ctx.nprocs
        for b in range(nnodes):
            bucket = keys[bounds[b]: bounds[b + 1]]
            dest_ranks = list(layout.ranks_on_node(b))
            # Deal the bucket round-robin across the node's cores; the
            # within-node pass re-balances exactly, so only rough evenness
            # matters here.
            pieces = np.array_split(bucket, len(dest_ranks))
            for piece, dest in zip(pieces, dest_ranks):
                parts[dest] = piece
        ctx.charge_binary_searches(nnodes - 1, max(1, len(keys)))
        ctx.charge_bytes(len(keys) * keys.dtype.itemsize)
        received = yield from ctx.alltoall(parts, node_combining=True)
        mine = (
            np.concatenate([r for r in received if len(r)])
            if any(len(r) for r in received)
            else keys[:0]
        )
        mine.sort(kind="stable")
        ctx.charge_merge(len(mine), ctx.nprocs, key_bytes=keys.dtype.itemsize)

    # --- within-node redistribution (shared memory only) -----------------
    with ctx.phase(HSS_PHASE_WITHIN_NODE):
        node_ctx = ctx.node_comm()
        final = yield from node_sample_sort(node_ctx, mine, cfg.within_node_eps)

    return Shard(final), stats


register_algorithm(
    AlgorithmSpec(
        name="hss-node",
        program=hss_node_sort_program,
        config_cls=HSSConfig,
        make_config=lambda **kw: HSSConfig(node_level=True, **kw),
        config_style="cfg",
        balanced=True,
        needs_multicore=True,
        duplicate_tolerant=True,
        paper_section="6.1",
        description="two-level node-partitioned HSS (multicore machines)",
        excluded_config_keys=("schedule", "node_level", "initial_intervals"),
        pinned_config=(("node_level", True),),
        verify_eps_fn=lambda cfg: combined_eps(cfg.eps, cfg.within_node_eps),
    )
)
