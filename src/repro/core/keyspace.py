"""Key-space adapters: plain keys vs. duplicate-tagged keys behind one API.

The HSS program, the scanning algorithm and the data-movement phase only
need five primitives over a rank's *sorted local array*:

* Bernoulli-sample probes from the union of splitter intervals,
* count local keys strictly below each probe (local histogram),
* find bucket boundary positions for final splitters,
* sort-and-deduplicate gathered probes,
* provide the dtype + interval sentinels for :class:`SplitterState`.

:class:`PlainKeySpace` implements them with direct ``searchsorted`` calls —
valid when the input has no (or few) duplicates, the paper's §2.1 baseline
assumption.

:class:`TaggedKeySpace` implements §4.3's *implicit tagging*: every key is
conceptually the triple ``(key, PE, index)``, giving a strict total order
even for constant inputs.  The tag is never materialized on the input side —
the trick is that for a *sorted* local array, the number of local tagged keys
below a tagged probe ``(k, pe, i)`` on processor ``r`` collapses to::

    r < pe :  searchsorted(local, k, side='right')   # all local copies of k precede
    r == pe:  i                                      # the probe's own sorted position
    r > pe :  searchsorted(local, k, side='left')    # all local copies of k follow

so histogramming and bucketizing stay O(log n) per probe.  Only *probes*
(the sample) carry explicit tags, as a structured array — exactly the
paper's observation that tagging "increases the size of the histogram by a
constant factor" while the input data is untouched.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.splitters import SplitterState
from repro.sampling.bernoulli import bernoulli_sample_in_intervals
from repro.utils.arrays import sorted_unique

__all__ = ["PlainKeySpace", "TaggedKeySpace", "make_keyspace"]


class PlainKeySpace:
    """Adapter for duplicate-free inputs (the paper's default assumption)."""

    tagged = False

    def __init__(self, key_dtype: np.dtype | type) -> None:
        self.key_dtype = np.dtype(key_dtype)

    # -- SplitterState construction ------------------------------------
    def make_state(
        self, total_keys: int, nparts: int, eps: float, **state_kwargs
    ) -> SplitterState:
        return SplitterState(
            total_keys, nparts, eps, key_dtype=self.key_dtype, **state_kwargs
        )

    # -- probes ---------------------------------------------------------
    def sample(
        self,
        local_sorted: np.ndarray,
        rank: int,
        intervals: Sequence[tuple] | None,
        prob: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Bernoulli-sample probe keys (whole input when ``intervals`` is None)."""
        if intervals is None:
            intervals = (
                [(local_sorted[0], local_sorted[-1])] if len(local_sorted) else []
            )
        return bernoulli_sample_in_intervals(local_sorted, intervals, prob, rng)

    def sort_unique_probes(self, pieces: Sequence[np.ndarray]) -> np.ndarray:
        """Merge gathered per-rank samples into sorted, deduplicated probes."""
        nonempty = [x for x in pieces if len(x)]
        if not nonempty:
            return np.empty(0, dtype=self.key_dtype)
        return sorted_unique(np.concatenate(nonempty))

    # -- histograms & buckets -------------------------------------------
    def local_counts(
        self, local_sorted: np.ndarray, rank: int, probes: np.ndarray
    ) -> np.ndarray:
        """Local keys strictly below each probe."""
        return np.searchsorted(local_sorted, probes, side="left").astype(np.int64)

    def bucket_positions(
        self, local_sorted: np.ndarray, rank: int, splitters: np.ndarray
    ) -> np.ndarray:
        """Boundary positions: bucket ``i`` owns ``[S_i, S_{i+1})``."""
        return np.searchsorted(local_sorted, splitters, side="left").astype(np.int64)

    # -- output ----------------------------------------------------------
    def strip(self, keys: np.ndarray) -> np.ndarray:
        """Final output keys (identity for plain keys)."""
        return keys


class TaggedKeySpace:
    """Adapter implementing §4.3 implicit ``(key, PE, index)`` tagging."""

    tagged = True

    def __init__(self, key_dtype: np.dtype | type) -> None:
        self.base_dtype = np.dtype(key_dtype)
        #: Structured probe dtype; numpy sorts it lexicographically by field
        #: order, which is exactly the tag order we need.
        self.key_dtype = np.dtype(
            [("key", self.base_dtype), ("pe", np.int64), ("idx", np.int64)]
        )

    # -- SplitterState construction ------------------------------------
    def make_state(
        self, total_keys: int, nparts: int, eps: float, **state_kwargs
    ) -> SplitterState:
        if np.issubdtype(self.base_dtype, np.floating):
            kmin, kmax = -np.inf, np.inf
        else:
            info = np.iinfo(self.base_dtype)
            kmin, kmax = info.min, info.max
        lo = np.array([(kmin, -1, -1)], dtype=self.key_dtype)[0]
        hi = np.array(
            [(kmax, np.iinfo(np.int64).max, np.iinfo(np.int64).max)],
            dtype=self.key_dtype,
        )[0]
        return SplitterState(
            total_keys,
            nparts,
            eps,
            key_dtype=self.key_dtype,
            lo_sentinel=lo,
            hi_sentinel=hi,
            **state_kwargs,
        )

    # -- the §4.3 position rule -----------------------------------------
    def _positions(
        self, local_sorted: np.ndarray, rank: int, tagged: np.ndarray
    ) -> np.ndarray:
        """Number of local tagged keys strictly below each tagged probe."""
        keys = tagged["key"]
        left = np.searchsorted(local_sorted, keys, side="left").astype(np.int64)
        right = np.searchsorted(local_sorted, keys, side="right").astype(np.int64)
        own = np.clip(tagged["idx"], left, right)
        return np.where(
            rank < tagged["pe"], right, np.where(rank > tagged["pe"], left, own)
        ).astype(np.int64)

    # -- probes ---------------------------------------------------------
    def sample(
        self,
        local_sorted: np.ndarray,
        rank: int,
        intervals: Sequence[tuple] | None,
        prob: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = len(local_sorted)
        if n == 0:
            return np.empty(0, dtype=self.key_dtype)
        if intervals is None:
            ranges = [(0, n)]
        else:
            tagged_pairs = np.array(
                [lo for lo, _ in intervals] + [hi for _, hi in intervals],
                dtype=self.key_dtype,
            )
            pos = self._positions(local_sorted, rank, tagged_pairs)
            half = len(intervals)
            ranges = [
                (int(pos[t]), int(min(n, pos[half + t] + 1)))
                for t in range(half)
            ]
        prob = min(1.0, max(0.0, float(prob)))
        picks: list[np.ndarray] = []
        for start, stop in ranges:
            width = stop - start
            if width <= 0 or prob == 0.0:
                continue
            count = rng.binomial(width, prob) if prob < 1.0 else width
            if count == 0:
                continue
            idx = rng.choice(width, size=min(count, width), replace=False) + start
            idx.sort()
            picks.append(idx)
        if not picks:
            return np.empty(0, dtype=self.key_dtype)
        idx = np.concatenate(picks)
        out = np.empty(len(idx), dtype=self.key_dtype)
        out["key"] = local_sorted[idx]
        out["pe"] = rank
        out["idx"] = idx
        return out

    def sort_unique_probes(self, pieces: Sequence[np.ndarray]) -> np.ndarray:
        nonempty = [x for x in pieces if len(x)]
        if not nonempty:
            return np.empty(0, dtype=self.key_dtype)
        return sorted_unique(np.concatenate(nonempty))

    # -- histograms & buckets -------------------------------------------
    def local_counts(
        self, local_sorted: np.ndarray, rank: int, probes: np.ndarray
    ) -> np.ndarray:
        return self._positions(local_sorted, rank, probes)

    def bucket_positions(
        self, local_sorted: np.ndarray, rank: int, splitters: np.ndarray
    ) -> np.ndarray:
        return self._positions(local_sorted, rank, splitters)

    # -- output ----------------------------------------------------------
    def strip(self, keys: np.ndarray) -> np.ndarray:
        """Tagged mode moves plain keys; stripping is the identity too."""
        return keys


def make_keyspace(key_dtype: np.dtype | type, tag_duplicates: bool):
    """Factory choosing the adapter for a configuration."""
    if tag_duplicates:
        return TaggedKeySpace(key_dtype)
    return PlainKeySpace(key_dtype)
