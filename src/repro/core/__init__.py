"""The paper's primary contribution: Histogram Sort with Sampling.

Layout
------
- :mod:`repro.core.config` — :class:`HSSConfig` and sampling-ratio schedules.
- :mod:`repro.core.splitters` — splitter-interval state ``[L_j(i), U_j(i)]``.
- :mod:`repro.core.scanning` — the Axtmann scanning algorithm (§3.2).
- :mod:`repro.core.hss` — the SPMD HSS program over the BSP engine.
- :mod:`repro.core.rankspace` — exact large-``p`` splitter-phase simulator.
- :mod:`repro.core.data_movement` — bucketize / all-to-all / merge (phase 3).
- :mod:`repro.core.keyspace` — plain vs implicit-``(key, PE, index)``-tagged
  key spaces (§4.3) behind one adapter interface.
- :mod:`repro.core.approx_histogram` — §3.4 approximate rank oracle wiring.
- :mod:`repro.core.node_sort` — §6.1 two-level node partitioning.
- :mod:`repro.core.api` — user-facing ``hss_sort`` / ``parallel_sort``.
"""

from repro.core.config import HSSConfig, SamplingSchedule
from repro.core.splitters import SplitterState
from repro.core.scanning import scanning_splitters
from repro.core.api import hss_sort, parallel_sort, ALGORITHMS

__all__ = [
    "HSSConfig",
    "SamplingSchedule",
    "SplitterState",
    "scanning_splitters",
    "hss_sort",
    "parallel_sort",
    "ALGORITHMS",
]
