"""Histogram Sort with Sampling — the SPMD program (§3) over the BSP engine.

Structure per histogramming round (paper §3.3 steps 1–4):

1. the central processor (rank 0) broadcasts the open splitter intervals and
   the round's Bernoulli inclusion probability;
2. every rank samples keys falling inside the intervals;
3. samples are gathered at the central processor, sorted/deduplicated and
   broadcast back as *probes*;
4. every rank computes a local histogram (rank of each probe in its sorted
   local data, a binary search each) and a global reduction delivers exact
   global probe ranks to the central processor, which tightens every
   splitter's ``[L_j(i), U_j(i)]`` bounds.

The loop ends when every splitter is *finalized* — some seen key lies inside
its ``T_i`` window — or the schedule's round bound is hit.  Splitter keys are
then broadcast (step 5) and the data-movement phase runs.

Two splitter-selection methods are provided:

* ``method="hss"`` — the full multi-round algorithm above;
* ``method="scanning"`` — one sampling + histogramming round followed by the
  Axtmann scanning algorithm (§3.2), the better one-round choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.algorithms.spec import AlgorithmSpec
from repro.bsp.engine import Context
from repro.core.config import HSSConfig
from repro.core.data_movement import exchange_and_merge, locally_sorted_shard
from repro.core.keyspace import make_keyspace
from repro.core.scanning import scanning_sample_probability, scanning_splitters
from repro.errors import ConfigError, VerificationError
from repro.utils.rng import RngTree

__all__ = [
    "RoundStats",
    "SplitterStats",
    "hss_splitter_program",
    "hss_sort_program",
    "HSS_PHASE_LOCAL_SORT",
    "HSS_PHASE_HISTOGRAM",
    "HSS_PHASE_EXCHANGE",
]

HSS_PHASE_LOCAL_SORT = "local sort"
HSS_PHASE_HISTOGRAM = "histogramming"
HSS_PHASE_EXCHANGE = "data exchange"


@dataclass(frozen=True)
class RoundStats:
    """Observability record for one histogramming round (drives Fig 3.1)."""

    round_index: int
    probability: float
    sample_size: int
    candidate_mass_before: int
    finalized_after: int
    open_intervals_after: int
    max_interval_width_after: float
    mean_interval_width_after: float


@dataclass
class SplitterStats:
    """Summary of the splitter-determination phase (central processor view)."""

    nparts: int
    total_keys: int
    eps: float
    method: str
    rounds: list[RoundStats] = field(default_factory=list)
    all_finalized: bool = False
    max_rank_error: int = 0

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_sample(self) -> int:
        """Overall sample size across all rounds (the paper's headline cost)."""
        return sum(r.sample_size for r in self.rounds)

    def satisfies_tolerance(self) -> bool:
        """Whether every chosen splitter landed inside its ``T_i`` window."""
        return self.max_rank_error <= self.eps * self.total_keys / (2 * self.nparts)


def hss_splitter_program(
    ctx: Context,
    local_sorted: np.ndarray,
    *,
    nparts: int,
    cfg: HSSConfig,
    keyspace,
    rng: np.random.Generator,
    method: str = "hss",
    target_fractions: np.ndarray | None = None,
    tolerance_fraction: float | None = None,
    initial_intervals=None,
) -> Generator:
    """Determine ``nparts − 1`` splitters collectively (``yield from`` this).

    Returns ``(splitters, stats)`` on every rank; ``stats`` is the
    root's :class:`SplitterStats` (broadcast at the end, it is tiny).

    ``nparts`` may exceed ``ctx.nprocs`` — ChaNGa-style virtual-processor
    bucket counts (§6.3) — in which case only splitter determination makes
    sense and the caller handles bucket placement.

    ``target_fractions`` (length ``nparts − 1``, increasing, in (0, 1))
    overrides the uniform ``N·i/p`` target ranks for *weighted*
    partitioning — e.g. ragged node layouts where node ``b`` must receive
    ``N·cores_b/p`` keys.  ``tolerance_fraction`` likewise overrides the
    acceptance half-window as a fraction of ``N`` (default ``eps/(2·nparts)``).

    ``initial_intervals`` (``((lo, hi), ...)`` key pairs, see
    :class:`~repro.core.splitters.SplitterState`) warm-starts round 1:
    instead of Bernoulli-sampling the whole input, the round broadcasts the
    pair endpoints as probes and histogram them exactly.  When the hints
    come from a previous run on similar data (a splitter cache) most
    splitters finalize immediately; when they are stale the bounds simply
    tighten less and the normal sampling rounds continue — warm starts can
    never produce an output a cold run would reject.
    """
    if method not in ("hss", "scanning"):
        raise ConfigError(f"unknown splitter method {method!r}")
    if initial_intervals is not None and method != "hss":
        raise ConfigError(
            "initial_intervals warm starts apply to the multi-round 'hss' "
            "method only (scanning is single-round by construction)"
        )
    root = 0
    rank = ctx.rank
    n_local = len(local_sorted)
    total_keys = yield from ctx.allreduce(np.int64(n_local))
    total_keys = int(total_keys)
    if total_keys < nparts:
        raise ConfigError(
            f"cannot cut {total_keys} keys into {nparts} non-trivial parts"
        )

    if hasattr(keyspace, "prepare"):
        # §3.4 approximate histogramming: build the resident representative
        # sample once (block random sampling over the sorted local input).
        keyspace.prepare(local_sorted, nparts, rng)
        ctx.charge_bytes(getattr(keyspace, "resident_sample_size", 0) * 8)

    if rank == root:
        state_kwargs = {}
        if target_fractions is not None:
            state_kwargs["targets"] = (
                np.asarray(target_fractions, dtype=np.float64) * total_keys
            ).astype(np.int64)
        if tolerance_fraction is not None:
            state_kwargs["tolerances"] = float(tolerance_fraction) * total_keys
        if initial_intervals is not None:
            state_kwargs["initial_intervals"] = initial_intervals
        state = keyspace.make_state(total_keys, nparts, cfg.eps, **state_kwargs)
    else:
        state = None
    stats = (
        SplitterStats(nparts=nparts, total_keys=total_keys, eps=cfg.eps, method=method)
        if rank == root
        else None
    )
    schedule = cfg.schedule
    max_rounds = 1 if method == "scanning" else cfg.max_rounds(nparts)

    splitters = None
    round_index = 0
    while True:
        round_index += 1
        # -- step 1: root announces intervals + probability (or completion)
        if rank == root:
            if state.all_finalized() or round_index > max_rounds:
                command = {"done": True, "splitters": state.final_splitters()}
            elif round_index == 1 and state.initial_intervals is not None:
                # Warm start: probe the cached interval endpoints directly —
                # no sampling, no gather; one broadcast + one reduction.
                command = {
                    "done": False,
                    "warm": True,
                    "probes": state.hint_probes(),
                    "mass": total_keys,
                }
            else:
                if round_index == 1:
                    intervals = None  # whole input
                    mass = total_keys
                else:
                    merged = state.merged_intervals()
                    intervals = merged.pairs()
                    mass = merged.mass
                if method == "scanning":
                    prob = scanning_sample_probability(total_keys, nparts, cfg.eps)
                else:
                    prob = schedule.probability(
                        round_index,
                        p=nparts,
                        eps=cfg.eps,
                        total_keys=total_keys,
                        candidate_mass=mass,
                    )
                command = {
                    "done": False,
                    "intervals": intervals,
                    "prob": prob,
                    "mass": mass,
                }
        else:
            command = None
        command = yield from ctx.bcast(command, root=root)
        if command["done"]:
            splitters = command["splitters"]
            break

        if command.get("warm"):
            # Warm round: the probes arrived with the command; steps 2–3
            # (sampling + gather) are skipped entirely.
            probes = command["probes"]
        else:
            # -- step 2: sample inside intervals
            sample = keyspace.sample(
                local_sorted, rank, command["intervals"], command["prob"], rng
            )
            ctx.charge_binary_searches(
                2 * (len(command["intervals"]) if command["intervals"] else 1),
                max(1, n_local),
            )

            # -- step 3: gather at root, sort, broadcast probes
            gathered = yield from ctx.gather(sample, root=root)
            if rank == root:
                probes = keyspace.sort_unique_probes(gathered)
                m = len(probes)
                if m > 1:
                    ctx.charge_sort(m, key_bytes=probes.dtype.itemsize)
            else:
                probes = None
            probes = yield from ctx.bcast(probes, root=root)

        # -- step 4: local histogram + reduction
        counts = keyspace.local_counts(local_sorted, rank, probes)
        ctx.charge_binary_searches(
            len(probes),
            getattr(keyspace, "resident_sample_size", None) or max(1, n_local),
        )
        ranks = yield from ctx.reduce(counts, op="sum", root=root)
        if rank == root and ranks.dtype.kind == "f":
            # Approximate-histogram estimates arrive as floats; round once
            # at the central processor.
            ranks = np.rint(np.maximum(ranks, 0.0)).astype(np.int64)

        if rank == root:
            if method == "scanning":
                scan = scanning_splitters(
                    probes, ranks, total_keys, nparts, cfg.eps
                )
                state.update(probes, ranks)
                stats.rounds.append(
                    RoundStats(
                        round_index=round_index,
                        probability=command["prob"],
                        sample_size=len(probes),
                        candidate_mass_before=command["mass"],
                        finalized_after=nparts - 1,
                        open_intervals_after=0,
                        max_interval_width_after=0.0,
                        mean_interval_width_after=0.0,
                    )
                )
                stats.all_finalized = True
                stats.max_rank_error = int(
                    np.abs(scan.splitter_ranks - state.targets).max()
                ) if nparts > 1 else 0
                command = {"done": True, "splitters": scan.splitters,
                           "scan_loads": scan.loads}
                command = yield from ctx.bcast(command, root=root)
                splitters = command["splitters"]
                break
            state.update(probes, ranks)
            width_stats = state.interval_width_stats()
            stats.rounds.append(
                RoundStats(
                    round_index=round_index,
                    # A warm probe round draws no sample (probability 0).
                    probability=command.get("prob", 0.0),
                    sample_size=len(probes),
                    candidate_mass_before=command["mass"],
                    finalized_after=state.num_finalized(),
                    open_intervals_after=int(width_stats["open_splitters"]),
                    max_interval_width_after=width_stats["max_width"],
                    mean_interval_width_after=width_stats["mean_width"],
                )
            )
        else:
            if method == "scanning":
                command = yield from ctx.bcast(None, root=root)
                splitters = command["splitters"]
                break

    if rank == root and method == "hss":
        stats.all_finalized = state.all_finalized()
        stats.max_rank_error = state.max_rank_error()
    stats = yield from ctx.bcast(stats, root=root)
    return splitters, stats


def hss_sort_program(
    ctx: Context,
    keys: np.ndarray,
    payload: np.ndarray | None = None,
    *,
    cfg: HSSConfig,
) -> Generator:
    """Full three-phase HSS sort for one rank (``yield from`` this).

    Returns ``(shard, stats)``: the rank's globally-sorted output shard and
    the splitter-phase statistics.
    """
    p = ctx.nprocs
    rng = RngTree(cfg.seed).generator("hss-sample", ctx.rank)
    if cfg.initial_intervals is not None and cfg.tag_duplicates:
        raise ConfigError(
            "initial_intervals warm starts and duplicate tagging (§4.3) "
            "cannot be combined: tagged probes carry (PE, index) tags that "
            "cached plain-key intervals do not have"
        )
    if cfg.approximate_histograms:
        if cfg.tag_duplicates:
            raise ConfigError(
                "approximate histogramming (§3.4) and duplicate tagging "
                "(§4.3) cannot be combined: the rank oracle is defined over "
                "plain keys"
            )
        from repro.core.approx_histogram import ApproxHistogramKeySpace

        keyspace = ApproxHistogramKeySpace(keys.dtype, cfg.eps)
    else:
        keyspace = make_keyspace(keys.dtype, cfg.tag_duplicates)

    with ctx.phase(HSS_PHASE_LOCAL_SORT):
        shard = locally_sorted_shard(ctx, keys, payload)
        keys = shard.keys

    with ctx.phase(HSS_PHASE_HISTOGRAM):
        splitters, stats = yield from hss_splitter_program(
            ctx,
            keys,
            nparts=p,
            cfg=cfg,
            keyspace=keyspace,
            rng=rng,
            initial_intervals=cfg.initial_intervals,
        )
        positions = keyspace.bucket_positions(keys, ctx.rank, splitters)

    with ctx.phase(HSS_PHASE_EXCHANGE):
        merged = yield from exchange_and_merge(
            ctx,
            shard,
            positions,
            node_combining=cfg.node_level,
        )

    if cfg.strict and not stats.all_finalized and not stats.satisfies_tolerance():
        raise VerificationError(
            f"splitter determination ended after {stats.num_rounds} rounds "
            f"with max rank error {stats.max_rank_error} > tolerance "
            f"(set HSSConfig(strict=False) for best-effort output, or "
            f"tag_duplicates=True if the input has heavy duplicates)"
        )
    return merged, stats


# --------------------------------------------------------------------- #
# Registry entries — one program, three named sampling schedules.  The
# spec lives next to the program it describes (self-registration); see
# repro.algorithms.registry for the plugin model.
# --------------------------------------------------------------------- #
def _register_hss_variants() -> None:
    common: dict = dict(
        program=hss_sort_program,
        config_cls=HSSConfig,
        config_style="cfg",
        supports_payloads=True,
        balanced=True,
        duplicate_tolerant=True,  # via HSSConfig(tag_duplicates=True), §4.3
        supports_warm_start=True,
        excluded_config_keys=("schedule", "node_level", "initial_intervals"),
    )
    register_algorithm(
        AlgorithmSpec(
            name="hss",
            make_config=HSSConfig.constant_oversampling,
            extra_config_keys=("oversample",),
            paper_section="6.1.2",
            description="HSS, constant oversampling until finalization",
            **common,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="hss-1round",
            make_config=HSSConfig.one_round,
            paper_section="3.2",
            description="HSS, one geometric round (Lemma 3.2.1)",
            **common,
        )
    )
    register_algorithm(
        AlgorithmSpec(
            name="hss-2round",
            make_config=lambda **kw: HSSConfig.k_rounds(2, **kw),
            paper_section="3.3",
            description="HSS, two geometric rounds",
            **common,
        )
    )


_register_hss_variants()
