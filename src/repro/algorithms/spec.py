"""Typed, declarative description of one sorting algorithm.

An :class:`AlgorithmSpec` bundles everything the uniform API layer needs to
run an algorithm without special-casing it: the SPMD program, its typed
config class, how the config is handed to the program, and a *capability
model* — declarative flags (``supports_payloads``, ``balanced``,
``needs_multicore``, ``duplicate_tolerant``) that drive upfront validation
in :class:`~repro.algorithms.Sorter` instead of silent kwarg forwarding.

Specs are plain data; the mutable registry lives in
:mod:`repro.algorithms.registry`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Callable

from repro.errors import ConfigError

__all__ = ["AlgorithmSpec"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative description of a registered sorting algorithm.

    Examples
    --------
    >>> from repro.algorithms import REGISTRY
    >>> REGISTRY["hss"].supports_payloads
    True
    >>> REGISTRY["bitonic"].supports_payloads
    False
    >>> sorted(REGISTRY["radix"].config_keys())
    ['key_bits']
    """

    #: Registry key (the name used by ``Sorter``/``parallel_sort``/the CLI).
    name: str
    #: SPMD generator program ``program(ctx, keys[, payload], **kwargs)``.
    program: Callable[..., Any]
    #: Typed config dataclass; its fields are the algorithm's valid knobs.
    config_cls: type
    #: Builds a config instance from keyword knobs.  Defaults to
    #: ``config_cls`` itself; HSS variants install their schedule factories.
    make_config: Callable[..., Any] | None = None
    #: ``"cfg"`` — program takes one ``cfg=<config>`` kwarg;
    #: ``"fields"`` — config fields are flattened into program kwargs.
    config_style: str = "fields"
    #: The algorithm can permute fixed-size payloads along with keys.
    supports_payloads: bool = False
    #: Output honours a ``(1+eps)`` load bound — drives the verification
    #: epsilon (``None`` is passed for unbalanced algorithms).
    balanced: bool = True
    #: Requires ``machine.cores_per_node > 1`` (two-level node algorithms).
    needs_multicore: bool = False
    #: Meets its balance contract on duplicate-heavy inputs (natively or
    #: via a tagging option).
    duplicate_tolerant: bool = False
    #: Accepts ``initial_intervals=`` warm-start hints (cached splitter
    #: intervals from a previous run) through ``Sorter.run()``.  Not part
    #: of :meth:`capabilities` — warm starts are an execution-time hint,
    #: not a correctness-relevant capability flag.
    supports_warm_start: bool = False
    #: Paper section implemented (e.g. ``"6.1.2"``).
    paper_section: str = ""
    #: One-line human description (shown by ``repro algorithms``).
    description: str = ""
    #: Extra keyword knobs accepted by ``make_config`` beyond the config
    #: class fields (e.g. ``oversample`` for the constant-schedule factory).
    extra_config_keys: tuple[str, ...] = ()
    #: Config-class fields that must *not* be passed as knobs (the spec
    #: pins them, e.g. ``node_level`` for ``hss-node``).
    excluded_config_keys: tuple[str, ...] = ()
    #: ``(field, value)`` pairs the spec pins: ``make_config`` sets them
    #: and :meth:`check_config` re-asserts them on pre-built configs, so
    #: a hand-built config cannot smuggle in a state the registry forbids.
    pinned_config: tuple[tuple[str, Any], ...] = ()
    #: Maps a config instance to the verification epsilon; defaults to
    #: ``config.eps`` when ``balanced`` else ``None``.
    verify_eps_fn: Callable[[Any], float | None] | None = None

    def __post_init__(self) -> None:
        if self.config_style not in ("cfg", "fields"):
            raise ConfigError(
                f"config_style must be 'cfg' or 'fields', "
                f"got {self.config_style!r}"
            )

    # ------------------------------------------------------------------ #
    def config_keys(self) -> frozenset[str]:
        """The valid configuration keys for this algorithm."""
        names = {f.name for f in fields(self.config_cls)}
        names.update(self.extra_config_keys)
        names.difference_update(self.excluded_config_keys)
        return frozenset(names)

    def build_config(self, **kwargs: Any):
        """Build the typed config, rejecting unknown keys up front."""
        valid = self.config_keys()
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ConfigError(
                f"unknown config key(s) {unknown} for algorithm "
                f"{self.name!r}; valid keys: {sorted(valid)}"
            )
        factory = self.make_config if self.make_config is not None else self.config_cls
        return factory(**kwargs)

    def legacy_config(self, *, eps: float = 0.05, seed: int = 0, **kwargs: Any):
        """Config for the ``parallel_sort`` shim and the generic CLI.

        ``eps``/``seed`` are accepted for *every* algorithm (the historical
        uniform signature) and silently dropped when the algorithm's config
        has no such knob; all other keys are validated strictly.
        """
        valid = self.config_keys()
        if "eps" in valid:
            kwargs.setdefault("eps", eps)
        if "seed" in valid:
            kwargs.setdefault("seed", seed)
        return self.build_config(**kwargs)

    def check_config(self, config: Any) -> Any:
        """Validate a pre-built config instance's type and pinned fields."""
        if not isinstance(config, self.config_cls):
            raise ConfigError(
                f"algorithm {self.name!r} expects a "
                f"{self.config_cls.__name__} config, "
                f"got {type(config).__name__}"
            )
        for field_name, value in self.pinned_config:
            if getattr(config, field_name) != value:
                raise ConfigError(
                    f"algorithm {self.name!r} requires "
                    f"{field_name}={value!r} (got "
                    f"{getattr(config, field_name)!r}); build the config "
                    f"through Sorter({self.name!r}, ...) keyword knobs"
                )
        return config

    def program_kwargs(self, config: Any) -> dict[str, Any]:
        """Keyword arguments to pass to ``program`` for ``config``."""
        if self.config_style == "cfg":
            return {"cfg": config}
        return {
            f.name: getattr(config, f.name)
            for f in dataclasses.fields(config)
        }

    def verify_eps(self, config: Any) -> float | None:
        """Load-balance budget to verify the output against."""
        if self.verify_eps_fn is not None:
            return self.verify_eps_fn(config)
        if self.balanced:
            return getattr(config, "eps", None)
        return None

    def capabilities(self) -> dict[str, bool]:
        """The capability flags as a plain dict (CLI / docs rendering)."""
        return {
            "supports_payloads": self.supports_payloads,
            "balanced": self.balanced,
            "needs_multicore": self.needs_multicore,
            "duplicate_tolerant": self.duplicate_tolerant,
        }
