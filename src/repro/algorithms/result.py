"""The uniform result type returned by every sorter entry point."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.bsp.engine import RunResult
    from repro.core.hss import SplitterStats
    from repro.records import RecordBatch, RecordSchema
    from repro.runtime import Measured

__all__ = ["SortRun"]


@dataclass
class SortRun:
    """Sorted output plus everything observable about the simulated run."""

    #: Per-rank sorted output key arrays (globally ascending across ranks).
    shards: list[np.ndarray]
    #: Per-rank payload arrays when the input carried payloads, else None.
    payloads: list[np.ndarray] | None
    #: Algorithm statistics (central-processor view): the per-algorithm
    #: stats object every program returns alongside its shard —
    #: :class:`~repro.core.hss.SplitterStats` for the HSS family,
    #: ``HistogramSortStats`` for classic histogram sort, ``RadixStats``
    #: for radix, ... — or None for algorithms that report nothing.
    stats: Any
    #: Raw BSP engine result (trace, comm stats, modeled makespan).
    engine_result: "RunResult"
    #: Algorithm name.
    algorithm: str
    #: Per-rank stats objects, extracted uniformly from every rank's
    #: return (not just rank 0).  Entries are None for ranks that
    #: returned no stats.
    rank_stats: list[Any] = field(default_factory=list)
    #: Resolved machine the run executed on —
    #: ``{name, topology, cores_per_node}`` (see
    #: :func:`repro.machines.machine_summary`).
    machine: dict[str, Any] = field(default_factory=dict)
    #: Execution backend the run used (``"simulated"``, ``"process"``, ...;
    #: see :mod:`repro.runtime`).  Modeled fields are bit-identical across
    #: backends; only :attr:`measured` depends on it.
    backend: str = "simulated"
    #: Record schema of the payload columns (see :mod:`repro.records`),
    #: or None for key-only runs and schema-less payloads.
    schema: "RecordSchema | None" = None

    @property
    def splitter_stats(self) -> "SplitterStats | None":
        """Splitter-phase statistics, for runs that histogram.

        Populated (with :class:`~repro.core.hss.SplitterStats`) by the HSS
        variants and scanning sort; None for every other algorithm — whose
        own stats objects remain available as :attr:`stats`.
        """
        from repro.core.hss import SplitterStats

        return self.stats if isinstance(self.stats, SplitterStats) else None

    @property
    def makespan(self) -> float:
        """Modeled execution time on the simulated machine (seconds)."""
        return self.engine_result.makespan

    @property
    def measured(self) -> "Measured | None":
        """Real wall-clock measurements from the execution backend.

        The measured counterpart of the *modeled* :attr:`makespan` /
        :meth:`breakdown`: end-to-end wall time for every backend, plus
        per-rank/per-phase compute and collective-wait times when the
        backend instruments ranks (the process backend does; the
        simulator reports only the total).
        """
        return self.engine_result.measured

    @property
    def imbalance(self) -> float:
        loads = np.array([len(s) for s in self.shards], dtype=np.float64)
        return float(loads.max() / loads.mean()) if loads.sum() else 1.0

    def record_batches(self) -> "list[RecordBatch]":
        """Sorted output as per-rank :class:`~repro.records.RecordBatch`.

        Key-only runs yield zero-column batches; payload-carrying runs
        split the structured payload back into the schema's typed columns.
        """
        from repro.records import RecordBatch

        if self.payloads is None:
            return [RecordBatch.from_columns(k, {}) for k in self.shards]
        return [
            RecordBatch.from_payload_array(k, v)
            for k, v in zip(self.shards, self.payloads)
        ]

    def breakdown(self):
        return self.engine_result.breakdown()
