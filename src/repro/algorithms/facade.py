"""``repro.sort`` — the one-call sorting façade.

Everything the layered API does in three objects (``Dataset`` →
``Sorter`` → ``SortRun``) behind a single function for the common case:
*sort these keys with that algorithm on this machine*.  The registries
stay the extension surface for power users; the façade is what the README
quickstart, ``examples/`` and the ``repro serve`` job runner call.

>>> import numpy as np
>>> from repro.algorithms.facade import sort
>>> run = sort(np.array([5, 3, 1, 4], dtype=np.int64), p=2)
>>> np.concatenate(run.shards).tolist()
[1, 3, 4, 5]
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.algorithms.dataset import Dataset
from repro.algorithms.result import SortRun
from repro.algorithms.sorter import Sorter
from repro.errors import ConfigError

__all__ = ["sort"]


def _split_flat(arr: np.ndarray, p: int) -> list[np.ndarray]:
    """Split one flat array into ``p`` contiguous near-even rank shards."""
    if p < 1:
        raise ConfigError(f"p must be >= 1, got {p}")
    if len(arr) < p:
        raise ConfigError(
            f"cannot spread {len(arr)} keys over p={p} ranks "
            f"(every rank needs at least one key)"
        )
    return [chunk.copy() for chunk in np.array_split(arr, p)]


def _columns_to_structured(columns: Mapping[str, Any]) -> np.ndarray:
    """Pack a ``{name: column}`` mapping into one structured payload array."""
    if not columns:
        raise ConfigError("payloads mapping is empty; pass None instead")
    arrays = {name: np.asarray(col) for name, col in columns.items()}
    lengths = {name: len(col) for name, col in arrays.items()}
    if len(set(lengths.values())) > 1:
        raise ConfigError(
            f"payload columns disagree on length: {lengths}"
        )
    out = np.empty(
        next(iter(lengths.values())),
        dtype=[(name, col.dtype) for name, col in arrays.items()],
    )
    for name, col in arrays.items():
        out[name] = col
    return out


def _as_dataset(
    keys: Any,
    payloads: Any,
    p: int | None,
) -> Dataset:
    """Normalize the façade's ``keys``/``payloads`` forms to a Dataset."""
    if isinstance(keys, Dataset):
        if p is not None and p != keys.nprocs:
            raise ConfigError(
                f"p={p} conflicts with the Dataset's {keys.nprocs} ranks"
            )
        if payloads is not None:
            return keys._with_payload_arrays(payloads)
        return keys
    if not isinstance(keys, np.ndarray):
        items = list(keys)
        if items and np.ndim(items[0]) == 0:
            # A plain sequence of scalars is flat keys, not p length-1
            # ranks.
            keys = np.asarray(items)
        else:
            keys = items
    if isinstance(keys, np.ndarray) and keys.ndim == 1:
        # Flat mode: one global key array, split contiguously over ranks.
        if p is None:
            raise ConfigError(
                "pass p= (rank count) to sort a flat key array, or "
                "pass per-rank arrays / a Dataset"
            )
        shards = _split_flat(keys, p)
        split_payloads = None
        if payloads is not None:
            if isinstance(payloads, Mapping):
                payloads = _columns_to_structured(payloads)
            else:
                payloads = np.asarray(payloads)
            if len(payloads) != len(keys):
                raise ConfigError(
                    f"flat payloads length {len(payloads)} != keys "
                    f"length {len(keys)}"
                )
            split_payloads = _split_flat(payloads, p)
        return Dataset.from_arrays(shards, split_payloads)
    # Per-rank mode: a sequence of one key array per rank.
    shards = [np.asarray(k) for k in keys]
    if p is not None and p != len(shards):
        raise ConfigError(
            f"p={p} conflicts with the {len(shards)} per-rank arrays"
        )
    if isinstance(payloads, Mapping):
        raise ConfigError(
            "a {name: column} payloads mapping pairs with flat keys; "
            "for per-rank keys pass one payload array per rank"
        )
    return Dataset.from_arrays(shards, payloads)


def sort(
    keys: Any,
    *,
    algorithm: str = "hss",
    machine: Any = None,
    backend: Any = None,
    payloads: Any = None,
    p: int | None = None,
    config: Any = None,
    verify: bool = True,
    initial_intervals: Sequence[tuple] | None = None,
    **config_kwargs: Any,
) -> SortRun:
    """Sort ``keys`` with one registered algorithm; returns a :class:`SortRun`.

    Parameters
    ----------
    keys:
        What to sort, in any of three forms: a flat NumPy array (give
        ``p=`` to split it contiguously over simulated ranks), a sequence
        of per-rank arrays, or a pre-built :class:`Dataset`.
    algorithm:
        Registered algorithm name (``repro algorithms`` lists them).
        Defaults to ``"hss"`` — the paper's Histogram Sort with Sampling.
    machine:
        Simulated machine: registry name (``repro machines``),
        :class:`~repro.machines.MachineSpec`, or pre-built model.
    backend:
        Execution backend name (``"simulated"``/``"process"``) or
        instance.
    payloads:
        Optional values to permute along with the keys, mirroring the
        shape of ``keys`` (flat array for flat keys, per-rank arrays
        otherwise).  Structured arrays — or, with flat keys, a
        ``{name: column}`` mapping — carry typed record columns.
    p:
        Rank count — required for flat ``keys``, otherwise validated
        against the per-rank form.
    config:
        Pre-built typed config instance (mutually exclusive with keyword
        knobs).
    verify:
        Check sortedness/permutation/load-balance of the output.
    initial_intervals:
        Warm-start splitter-interval hints from a previous run on similar
        data (see :meth:`Sorter.run <repro.algorithms.Sorter.run>`).
    **config_kwargs:
        Typed config knobs for the algorithm (e.g. ``eps=0.02``).

    Examples
    --------
    >>> import numpy as np
    >>> import repro
    >>> rng = np.random.default_rng(0)
    >>> run = repro.sort(rng.integers(0, 10**9, 4000), p=8, eps=0.1)
    >>> run.algorithm, run.imbalance <= 1.1
    ('hss', True)
    >>> flat = np.concatenate(run.shards)
    >>> bool(np.all(flat[:-1] <= flat[1:]))
    True
    """
    dataset = _as_dataset(keys, payloads, p)
    sorter = Sorter(
        algorithm,
        machine=machine,
        backend=backend,
        config=config,
        verify=verify,
        **config_kwargs,
    )
    return sorter.run(dataset, initial_intervals=initial_intervals)
