"""First-class Algorithm/Dataset API: typed specs, capabilities, registry.

This package is the uniform extension surface over every sorting algorithm
in the reproduction:

- :class:`AlgorithmSpec` — declarative description of one algorithm: its
  SPMD program, typed config class, and capability flags
  (``supports_payloads`` / ``balanced`` / ``needs_multicore`` /
  ``duplicate_tolerant``) plus the paper section it implements.
- :data:`REGISTRY` / :func:`register_algorithm` — the plugin registry.
  Each module in :mod:`repro.baselines` and :mod:`repro.core` registers its
  own spec(s); third-party programs register the same way.
- :class:`Dataset` — validated per-rank shards + optional payloads,
  constructible from raw arrays or by workload name.
- :class:`Sorter` — capability-checked execution:
  ``Sorter("hss", eps=0.02).run(dataset) -> SortRun``.

Quick tour
----------
>>> from repro.algorithms import Dataset, Sorter, available_algorithms
>>> "hss" in list(available_algorithms())
True
>>> ds = Dataset.from_workload("uniform", p=4, n_per=300, seed=1)
>>> run = Sorter("sample-regular", eps=0.2).run(ds)
>>> run.algorithm
'sample-regular'
>>> int(sum(len(s) for s in run.shards))
1200
"""

# Import order matters: the public names must all be bound *before* the
# program modules load, because those modules (and repro.core.api, which
# they can pull in via the repro.core package) import back into this
# namespace while it is still initializing.
from repro.algorithms.spec import AlgorithmSpec
from repro.algorithms.registry import (
    REGISTRY,
    available_algorithms,
    get_spec,
    register_algorithm,
)
from repro.algorithms.result import SortRun
from repro.algorithms.dataset import Dataset
from repro.algorithms.sorter import Sorter

# Built-in algorithm modules self-register on import; loading them here
# means REGISTRY is fully populated after ``import repro``.
import repro.core.hss  # noqa: E402,F401  (hss, hss-1round, hss-2round)
import repro.core.node_sort  # noqa: E402,F401  (hss-node)
import repro.baselines.scanning_sort  # noqa: E402,F401
import repro.baselines.sample_sort  # noqa: E402,F401
import repro.baselines.sample_sort_parallel  # noqa: E402,F401
import repro.baselines.histogram_sort  # noqa: E402,F401
import repro.baselines.over_partition  # noqa: E402,F401
import repro.baselines.exact_split  # noqa: E402,F401
import repro.baselines.bitonic  # noqa: E402,F401
import repro.baselines.radix  # noqa: E402,F401

# The one-call façade builds on Sorter/Dataset and needs the registry
# populated, so it loads after the program modules.
from repro.algorithms.facade import sort  # noqa: E402

__all__ = [
    "sort",
    "AlgorithmSpec",
    "REGISTRY",
    "register_algorithm",
    "get_spec",
    "available_algorithms",
    "Dataset",
    "Sorter",
    "SortRun",
]
