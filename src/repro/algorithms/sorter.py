"""The uniform, capability-checked execution front end for every algorithm.

``Sorter`` resolves an algorithm name through the plugin registry, builds
(or accepts) its typed config, validates the request against the
algorithm's declared capabilities *before* any simulation runs, executes
the SPMD program on a :class:`~repro.bsp.engine.BSPEngine`, and extracts
shards / payloads / stats uniformly from every rank's return.

    >>> from repro.algorithms import Dataset, Sorter
    >>> ds = Dataset.from_workload("uniform", p=4, n_per=400, seed=7)
    >>> run = Sorter("hss", eps=0.1).run(ds)
    >>> run.algorithm, run.imbalance <= 1.1
    ('hss', True)
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.algorithms.dataset import Dataset
from repro.algorithms.registry import get_spec
from repro.algorithms.result import SortRun
from repro.bsp.machine import MachineModel
from repro.errors import CapabilityError, ConfigError
from repro.machines import MachineSpec, machine_summary, resolve_machine
from repro.runtime import Backend, resolve_backend

__all__ = ["Sorter", "payload_capability_message"]


def payload_capability_message(name: str) -> str:
    """The canonical error text for a payload run on a key-only algorithm.

    Shared by :class:`Sorter` and the CLI pre-check so both fail with the
    same message, naming the algorithms that *do* carry payloads.
    """
    from repro.algorithms.registry import REGISTRY

    capable = sorted(n for n, s in REGISTRY.items() if s.supports_payloads)
    return (
        f"algorithm {name!r} does not support payloads "
        f"(AlgorithmSpec.supports_payloads is False); use a "
        f"payload-capable algorithm ({', '.join(capable)}) or drop "
        f"the payloads"
    )


class Sorter:
    """Run one registered algorithm on :class:`Dataset` inputs.

    Parameters
    ----------
    algorithm:
        Registered algorithm name (see ``repro algorithms`` or
        :data:`repro.algorithms.REGISTRY`).
    machine:
        Simulated machine: a registered name (``"mira-like-bgq"``, see
        ``repro machines``), a :class:`~repro.machines.MachineSpec`, or a
        pre-built :class:`~repro.bsp.machine.MachineModel`.  Defaults to
        the ``"laptop"`` preset.
    config:
        A pre-built instance of the algorithm's typed config class.
        Mutually exclusive with keyword knobs.
    backend:
        Execution backend: a registered name (``"simulated"`` — the
        default — or ``"process"``; see ``repro backends``) or a
        pre-built :class:`~repro.runtime.Backend` instance.  Sorted
        output, comm stats and modeled times are bit-identical across
        backends; ``SortRun.measured`` records the backend's real
        wall-clock observations.
    verify:
        Check sortedness, permutation and (for balanced algorithms) the
        load bound on every run's output.
    **config_kwargs:
        Typed config knobs (e.g. ``eps=0.02`` for HSS,
        ``probes_per_splitter=5`` for classic histogram sort).  Unknown
        keys raise :class:`~repro.errors.ConfigError` naming the valid
        ones — nothing is forwarded blind.
    """

    def __init__(
        self,
        algorithm: str,
        *,
        machine: str | MachineSpec | MachineModel | None = None,
        config: Any | None = None,
        backend: str | Backend | None = None,
        verify: bool = True,
        **config_kwargs: Any,
    ) -> None:
        self.spec = get_spec(algorithm)
        if config is not None and config_kwargs:
            raise ConfigError(
                "pass either a pre-built config or keyword knobs, not both"
            )
        if config is not None:
            self.config = self.spec.check_config(config)
        else:
            self.config = self.spec.build_config(**config_kwargs)
        self.machine = resolve_machine(machine)
        self.backend = resolve_backend(backend)
        self.verify = verify

    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> str:
        return self.spec.name

    def _check_capabilities(self, dataset: Dataset) -> None:
        spec = self.spec
        if dataset.has_payloads and not spec.supports_payloads:
            raise CapabilityError(payload_capability_message(spec.name))
        if spec.needs_multicore and self.machine.cores_per_node < 2:
            raise CapabilityError(
                f"{spec.name} needs a multicore machine "
                f"(machine.cores_per_node > 1)"
            )

    # ------------------------------------------------------------------ #
    def run(
        self,
        data: Dataset | Sequence[np.ndarray],
        *,
        payloads: Sequence[np.ndarray] | None = None,
        initial_intervals: Sequence[tuple] | None = None,
        trace_sink: Any = None,
    ) -> SortRun:
        """Sort a dataset; returns a :class:`SortRun`.

        ``data`` may be a :class:`Dataset` or a plain sequence of per-rank
        key arrays (wrapped via :meth:`Dataset.from_arrays`, optionally
        with ``payloads``).

        ``initial_intervals`` warm-starts the histogram phase with cached
        ``(lo, hi)`` splitter-interval hints from a previous run on similar
        data (see :attr:`~repro.core.config.HSSConfig.initial_intervals`);
        only histogram-refining algorithms accept it
        (``AlgorithmSpec.supports_warm_start``).

        ``trace_sink`` (a :class:`~repro.telemetry.TraceSink`) collects
        span telemetry from the run: modeled superstep/phase spans on
        every backend, plus measured per-rank compute/wait spans on the
        instrumenting backends.  ``None`` — the default — records
        nothing and adds no overhead.
        """
        if isinstance(data, Dataset):
            if payloads is not None:
                data = data._with_payload_arrays(payloads)
            dataset = data
        else:
            dataset = Dataset.from_arrays(data, payloads=payloads)
        self._check_capabilities(dataset)

        config = self.config
        if initial_intervals is not None:
            if not self.spec.supports_warm_start:
                from repro.algorithms.registry import REGISTRY

                capable = sorted(
                    n for n, s in REGISTRY.items() if s.supports_warm_start
                )
                raise CapabilityError(
                    f"algorithm {self.spec.name!r} does not support "
                    f"initial_intervals warm starts "
                    f"(AlgorithmSpec.supports_warm_start is False); "
                    f"warm-capable algorithms: {', '.join(capable)}"
                )
            import dataclasses

            config = dataclasses.replace(
                config,
                initial_intervals=tuple(
                    (pair[0], pair[1]) for pair in initial_intervals
                ),
            )

        result = self.backend.run(
            self.spec.program,
            dataset.rank_args(),
            machine=self.machine,
            trace_sink=trace_sink,
            **self.spec.program_kwargs(config),
        )

        shards, out_payloads, rank_stats = self._extract(result.returns)
        if not dataset.has_payloads:
            out_payloads = None
        if self.verify:
            from repro.metrics.verify import verify_sorted_output

            verify_sorted_output(
                dataset.shards, shards, self.spec.verify_eps(self.config)
            )
        return SortRun(
            shards=shards,
            payloads=out_payloads,
            stats=rank_stats[0] if rank_stats else None,
            engine_result=result,
            algorithm=self.spec.name,
            rank_stats=rank_stats,
            machine=machine_summary(self.machine),
            backend=self.backend.name,
            schema=dataset.record_schema if dataset.has_payloads else None,
        )

    @staticmethod
    def _extract(returns: Sequence[Any]):
        """Normalize every rank's return to ``(keys, payload, stats)``.

        Programs return ``Shard | ndarray`` or ``(Shard | ndarray, stats)``
        per rank; extraction is uniform across all ranks rather than
        isinstance-sniffing rank 0.
        """
        from repro.core.data_movement import Shard

        shards: list[np.ndarray] = []
        payloads: list[np.ndarray | None] = []
        rank_stats: list[Any] = []
        for ret in returns:
            stats = None
            out = ret
            if isinstance(ret, tuple):
                out, stats = ret
            if isinstance(out, Shard):
                shards.append(out.keys)
                payloads.append(out.payload)
            else:
                shards.append(out)
                payloads.append(None)
            rank_stats.append(stats)
        return shards, payloads, rank_stats
