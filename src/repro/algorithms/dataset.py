"""Distributed input data as a first-class object.

A :class:`Dataset` is the one place input plumbing happens: per-rank key
shards (one array per simulated rank) plus optional aligned payload arrays,
with all dtype/shape validation done at construction instead of being
re-rolled by every bench, test, example and CLI command.

Construct one from raw arrays::

    ds = Dataset.from_arrays([rng.integers(0, 2**40, 1000) for _ in range(8)])

or by name from the workload catalog::

    ds = Dataset.from_workload("changa-dwarf", p=64, n_per=15_625, seed=0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigError

__all__ = ["Dataset"]


def _validated_shards(keys: Sequence[np.ndarray]) -> list[np.ndarray]:
    shards = [np.asarray(k) for k in keys]
    if not shards:
        raise ConfigError("need at least one rank's keys")
    dtypes = {s.dtype for s in shards}
    if len(dtypes) != 1:
        raise ConfigError(f"all shards must share a dtype, got {dtypes}")
    for r, s in enumerate(shards):
        if s.ndim != 1:
            raise ConfigError(
                f"rank {r} keys must be one-dimensional, got shape {s.shape}"
            )
    return shards


@dataclass(frozen=True)
class Dataset:
    """Per-rank key shards plus optional aligned payloads, validated once.

    Use the classmethod constructors (:meth:`from_arrays`,
    :meth:`from_workload`) rather than the raw dataclass constructor — they
    perform the dtype/shape validation.

    Examples
    --------
    >>> import numpy as np
    >>> ds = Dataset.from_workload("uniform", p=4, n_per=100, seed=0)
    >>> ds.nprocs, ds.total_keys, ds.has_payloads
    (4, 400, False)
    >>> tagged = ds.with_index_payloads()
    >>> tagged.has_payloads and len(tagged.payloads[0]) == 100
    True
    """

    #: One key array per simulated rank (``p = len(shards)``).
    shards: list[np.ndarray]
    #: Optional per-rank payload arrays aligned element-for-element with
    #: :attr:`shards`, or None.
    payloads: list[np.ndarray] | None = None
    #: Workload name when built by :meth:`from_workload` (provenance only).
    workload: str | None = None

    # ------------------------------------------------------------- build #
    @classmethod
    def from_arrays(
        cls,
        keys: Sequence[np.ndarray],
        payloads: Sequence[np.ndarray] | None = None,
        *,
        workload: str | None = None,
    ) -> "Dataset":
        """Validate and wrap raw per-rank arrays."""
        shards = _validated_shards(keys)
        checked_payloads = None
        if payloads is not None:
            if len(payloads) != len(shards):
                raise ConfigError("payloads must match keys rank-for-rank")
            checked_payloads = [np.asarray(v) for v in payloads]
            for r, (k, v) in enumerate(zip(shards, checked_payloads)):
                if len(v) != len(k):
                    raise ConfigError(
                        f"rank {r} payload length {len(v)} != keys "
                        f"length {len(k)}"
                    )
            pay_dtypes = {v.dtype for v in checked_payloads}
            if len(pay_dtypes) != 1:
                raise ConfigError(
                    f"all payloads must share a dtype, got {pay_dtypes}"
                )
        return cls(shards=shards, payloads=checked_payloads, workload=workload)

    @classmethod
    def from_workload(
        cls,
        name: str,
        *,
        p: int,
        n_per: int | None = None,
        n_total: int | None = None,
        seed: int = 0,
        **kwargs: Any,
    ) -> "Dataset":
        """Generate a named workload from the catalog.

        Exactly one of ``n_per`` (keys per rank) or ``n_total`` (total
        keys, split evenly) must be given.  ``name`` is resolved against
        :data:`repro.workloads.WORKLOADS`; extra ``kwargs`` are forwarded
        to the generator (e.g. ``hot_fraction`` for ``"hotspot"``).
        """
        from repro.workloads import make_workload

        if (n_per is None) == (n_total is None):
            raise ConfigError("give exactly one of n_per or n_total")
        if n_per is None:
            n_per, rem = divmod(int(n_total), p)
            if rem:
                raise ConfigError(
                    f"n_total={n_total} is not divisible by p={p} "
                    f"(keys would be silently dropped); pass n_per instead"
                )
            if n_per < 1:
                raise ConfigError(
                    f"n_total={n_total} spread over p={p} ranks leaves "
                    f"no keys per rank"
                )
        shards = make_workload(name, p, int(n_per), seed, **kwargs)
        return cls.from_arrays(shards, workload=name)

    def with_payloads(self, payloads: Sequence[np.ndarray]) -> "Dataset":
        """A copy of this dataset carrying the given per-rank payloads."""
        return Dataset.from_arrays(
            self.shards, payloads, workload=self.workload
        )

    def with_index_payloads(self) -> "Dataset":
        """Attach tracer payloads: the global ``(rank, position)`` index.

        Payload ``rank * n_per + i`` identifies where each key started, so
        a sorted run can be checked for exact key/payload alignment —
        the standard payload round-trip probe.
        """
        offsets = np.cumsum([0] + [len(s) for s in self.shards[:-1]])
        payloads = [
            off + np.arange(len(s), dtype=np.int64)
            for off, s in zip(offsets, self.shards)
        ]
        return self.with_payloads(payloads)

    # -------------------------------------------------------------- view #
    @property
    def nprocs(self) -> int:
        """Number of simulated ranks."""
        return len(self.shards)

    @property
    def total_keys(self) -> int:
        return int(sum(len(s) for s in self.shards))

    @property
    def key_dtype(self) -> np.dtype:
        return self.shards[0].dtype

    @property
    def has_payloads(self) -> bool:
        return self.payloads is not None

    def rank_args(self) -> list[tuple]:
        """Per-rank positional args for a BSP program: ``(keys[, payload])``."""
        if self.payloads is None:
            return [(k,) for k in self.shards]
        return list(zip(self.shards, self.payloads))

    def __len__(self) -> int:
        return len(self.shards)
