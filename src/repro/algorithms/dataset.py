"""Distributed input data as a first-class object.

A :class:`Dataset` is the one place input plumbing happens: per-rank key
shards (one array per simulated rank) plus optional aligned payloads, with
all dtype/shape validation done at construction instead of being re-rolled
by every bench, test, example and CLI command.

Payloads are *records*: typed columns aligned row-for-row with the keys
(see :mod:`repro.records`).  On the wire — through the sort programs, the
collectives' byte accounting and the shared-memory transport — each rank's
payload is one structured NumPy array whose fields are the record columns,
so record bytes are priced and shipped exactly.  The pre-record API (a
plain array per rank) still works as the single-column degenerate case.

Construct one from raw arrays::

    ds = Dataset.from_arrays([rng.integers(0, 2**40, 1000) for _ in range(8)])

by name from the workload catalog, optionally with typed payload columns
generated deterministically from the workload RNG stream::

    ds = Dataset.from_workload("changa-dwarf", p=64, n_per=15_625, seed=0,
                               payloads={"mass": "f8", "id": "u4"})

or from pre-built record batches via :meth:`from_records`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.records import RecordBatch, RecordSchema

__all__ = ["Dataset"]


def _validated_shards(keys: Sequence[np.ndarray]) -> list[np.ndarray]:
    shards = [np.asarray(k) for k in keys]
    if not shards:
        raise ConfigError("need at least one rank's keys")
    dtypes = {s.dtype for s in shards}
    if len(dtypes) != 1:
        raise ConfigError(f"all shards must share a dtype, got {dtypes}")
    for r, s in enumerate(shards):
        if s.ndim != 1:
            raise ConfigError(
                f"rank {r} keys must be one-dimensional, got shape {s.shape}"
            )
    return shards


def _resolve_payload_schema(
    payloads: Mapping[str, str] | RecordSchema | bool,
    workload: str,
    key_dtype,
) -> RecordSchema:
    """Resolve ``from_workload(payloads=...)`` into a concrete schema."""
    if payloads is True:
        from repro.workloads import get_workload

        schema = get_workload(workload).record_schema
        if schema is None:
            raise ConfigError(
                f"workload {workload!r} declares no record schema; pass "
                f"explicit columns, e.g. payloads={{'mass': 'f8'}}"
            )
    elif isinstance(payloads, RecordSchema):
        schema = payloads
    else:
        schema = RecordSchema.from_mapping(payloads)
    schema.payload_dtype()  # fixed-width check, before any generation
    return RecordSchema(columns=schema.columns, key_dtype=np.dtype(key_dtype))


def _generate_column(dtype: np.dtype, n: int, rng: np.random.Generator):
    """Deterministic synthetic values covering the column's dtype range."""
    if dtype.kind == "b":
        return rng.integers(0, 2, size=n).astype(bool)
    if dtype.kind in "iu":
        info = np.iinfo(dtype)
        return rng.integers(
            int(info.min), int(info.max) + 1, size=n, dtype=dtype
        )
    if dtype.kind == "f":
        return rng.random(n).astype(dtype)
    raise ConfigError(
        f"cannot generate payload column of dtype {dtype}; supported "
        f"kinds: bool, int, uint, float"
    )


def _workload_payloads(
    schema: RecordSchema, shards: Sequence[np.ndarray], seed: int
) -> list[np.ndarray]:
    """Per-rank structured payload arrays from the workload RNG stream.

    Each column draws from its own deterministic stream keyed on
    ``(seed, crc32(column name))``, so adding or reordering columns never
    perturbs the others' values.
    """
    counts = [len(s) for s in shards]
    total = int(sum(counts))
    flat = np.empty(total, dtype=schema.payload_dtype())
    for spec in schema.columns:
        rng = np.random.default_rng(
            [int(seed), zlib.crc32(spec.name.encode())]
        )
        flat[spec.name] = _generate_column(spec.dtype, total, rng)
    out: list[np.ndarray] = []
    start = 0
    for c in counts:
        out.append(flat[start:start + c].copy())
        start += c
    return out


@dataclass(frozen=True)
class Dataset:
    """Per-rank key shards plus optional aligned payloads, validated once.

    Use the classmethod constructors (:meth:`from_arrays`,
    :meth:`from_workload`, :meth:`from_records`) rather than the raw
    dataclass constructor — they perform the dtype/shape validation.

    Examples
    --------
    >>> import numpy as np
    >>> ds = Dataset.from_workload("uniform", p=4, n_per=100, seed=0)
    >>> ds.nprocs, ds.total_keys, ds.has_payloads
    (4, 400, False)
    >>> rec = Dataset.from_workload("uniform", p=4, n_per=100, seed=0,
    ...                             payloads={"mass": "f8", "id": "u4"})
    >>> rec.record_schema.column_names
    ('mass', 'id')
    >>> tagged = ds.with_index_payloads()
    >>> tagged.has_payloads and len(tagged.payloads[0]) == 100
    True
    """

    #: One key array per simulated rank (``p = len(shards)``).
    shards: list[np.ndarray]
    #: Optional per-rank payload arrays aligned element-for-element with
    #: :attr:`shards`, or None.  Record-carrying datasets use one
    #: structured array per rank (fields = record columns).
    payloads: list[np.ndarray] | None = None
    #: Workload name when built by :meth:`from_workload` (provenance only).
    workload: str | None = None
    #: Record schema of the payload columns, or None.  Derivable from a
    #: structured payload dtype; stored so provenance survives round trips.
    schema: RecordSchema | None = None

    # ------------------------------------------------------------- build #
    @classmethod
    def from_arrays(
        cls,
        keys: Sequence[np.ndarray],
        payloads: Sequence[np.ndarray] | None = None,
        *,
        workload: str | None = None,
        schema: RecordSchema | None = None,
    ) -> "Dataset":
        """Validate and wrap raw per-rank arrays."""
        shards = _validated_shards(keys)
        checked_payloads = None
        if payloads is not None:
            if len(payloads) != len(shards):
                raise ConfigError("payloads must match keys rank-for-rank")
            checked_payloads = [np.asarray(v) for v in payloads]
            for r, (k, v) in enumerate(zip(shards, checked_payloads)):
                if len(v) != len(k):
                    raise ConfigError(
                        f"rank {r} payload length {len(v)} != keys "
                        f"length {len(k)}"
                    )
            pay_dtypes = {v.dtype for v in checked_payloads}
            if len(pay_dtypes) != 1:
                raise ConfigError(
                    f"all payloads must share a dtype, got {pay_dtypes}"
                )
            if checked_payloads[0].dtype.hasobject:
                raise ConfigError(
                    "object-dtype payloads are not supported: they have "
                    "no record schema or wire format; use typed record "
                    "columns, e.g. Dataset.from_workload(..., "
                    "payloads={'col': 'f8'})"
                )
            if schema is not None:
                expected = schema.payload_dtype()
                got = checked_payloads[0].dtype
                if got != expected:
                    raise ConfigError(
                        f"payload dtype {got} does not match schema "
                        f"{schema.compact()!r} (expects {expected})"
                    )
        elif schema is not None:
            raise ConfigError("a record schema without payloads is invalid")
        return cls(
            shards=shards,
            payloads=checked_payloads,
            workload=workload,
            schema=schema,
        )

    @classmethod
    def from_records(
        cls,
        batches: Sequence[RecordBatch],
        *,
        workload: str | None = None,
    ) -> "Dataset":
        """Wrap per-rank :class:`~repro.records.RecordBatch` shards.

        All batches must share one fixed-width schema (variable-width
        columns are supported by batch *operations* but cannot ship on the
        sort path yet — :class:`~repro.errors.ConfigError`).
        """
        if not batches:
            raise ConfigError("need at least one rank's records")
        schema = batches[0].schema
        for r, b in enumerate(batches):
            if b.schema != schema:
                raise ConfigError(
                    f"rank {r} batch schema {b.schema.compact()!r} != "
                    f"rank 0 schema {schema.compact()!r}"
                )
        if not schema.columns:
            return cls.from_arrays(
                [b.keys for b in batches], workload=workload
            )
        return cls.from_arrays(
            [b.keys for b in batches],
            [b.payload_array() for b in batches],
            workload=workload,
            schema=schema,
        )

    @classmethod
    def from_workload(
        cls,
        name: str,
        *,
        p: int,
        n_per: int | None = None,
        n_total: int | None = None,
        seed: int = 0,
        payloads: Mapping[str, str] | RecordSchema | bool | None = None,
        **kwargs: Any,
    ) -> "Dataset":
        """Generate a named workload from the catalog.

        Exactly one of ``n_per`` (keys per rank) or ``n_total`` (total
        keys, split evenly) must be given.  ``name`` is resolved against
        the workload registry (see ``repro workloads``); extra ``kwargs``
        are forwarded to the generator (e.g. ``hot_fraction`` for
        ``"hotspot"``).

        ``payloads`` attaches typed record columns: a column mapping such
        as ``{"mass": "f8", "id": "u4"}``, a pre-built
        :class:`~repro.records.RecordSchema`, or ``True`` to use the
        workload's own declared record schema.  Column values are
        generated deterministically from the workload RNG stream, so a
        payload-carrying dataset is as reproducible as its keys.
        """
        from repro.workloads import make_workload

        if (n_per is None) == (n_total is None):
            raise ConfigError("give exactly one of n_per or n_total")
        if n_per is None:
            n_per, rem = divmod(int(n_total), p)
            if rem:
                raise ConfigError(
                    f"n_total={n_total} is not divisible by p={p} "
                    f"(keys would be silently dropped); pass n_per instead"
                )
            if n_per < 1:
                raise ConfigError(
                    f"n_total={n_total} spread over p={p} ranks leaves "
                    f"no keys per rank"
                )
        shards = make_workload(name, p, int(n_per), seed, **kwargs)
        if payloads is None or payloads is False:
            return cls.from_arrays(shards, workload=name)
        schema = _resolve_payload_schema(payloads, name, shards[0].dtype)
        return cls.from_arrays(
            shards,
            _workload_payloads(schema, shards, seed),
            workload=name,
            schema=schema,
        )

    def with_payloads(self, payloads: Sequence[np.ndarray]) -> "Dataset":
        """Removed — the list-of-arrays payload API is gone.

        Attach typed record columns instead:
        ``Dataset.from_workload(..., payloads={"mass": "f8"})``,
        :meth:`from_records`, or ``Sorter.run(ds, payloads=...)`` for raw
        aligned arrays.  Always raises :class:`~repro.errors.ConfigError`.
        """
        del payloads
        raise ConfigError(
            "Dataset.with_payloads(list-of-arrays) was removed; attach "
            "typed record columns with Dataset.from_workload(..., "
            "payloads={'col': 'f8'}) or Dataset.from_records(batches), "
            "or pass raw aligned arrays via Sorter.run(ds, payloads=...)"
        )

    def _with_payload_arrays(
        self, payloads: Sequence[np.ndarray]
    ) -> "Dataset":
        return Dataset.from_arrays(
            self.shards, payloads, workload=self.workload
        )

    def with_index_payloads(self) -> "Dataset":
        """Attach tracer payloads: the global ``(rank, position)`` index.

        Payload ``rank * n_per + i`` identifies where each key started, so
        a sorted run can be checked for exact key/payload alignment —
        the standard payload round-trip probe.
        """
        offsets = np.cumsum([0] + [len(s) for s in self.shards[:-1]])
        payloads = [
            off + np.arange(len(s), dtype=np.int64)
            for off, s in zip(offsets, self.shards)
        ]
        return self._with_payload_arrays(payloads)

    # -------------------------------------------------------------- view #
    @property
    def nprocs(self) -> int:
        """Number of simulated ranks."""
        return len(self.shards)

    @property
    def total_keys(self) -> int:
        return int(sum(len(s) for s in self.shards))

    @property
    def key_dtype(self) -> np.dtype:
        return self.shards[0].dtype

    @property
    def has_payloads(self) -> bool:
        return self.payloads is not None

    @property
    def record_schema(self) -> RecordSchema | None:
        """Schema of the payload columns, derived if not stored.

        A structured payload dtype yields one column per field; a plain
        fixed-width payload dtype yields the single legacy ``"payload"``
        column; key-only datasets have no schema (object-dtype payloads
        are rejected at construction).
        """
        if self.schema is not None:
            return self.schema
        if self.payloads is None:
            return None
        return RecordBatch.from_payload_array(
            self.shards[0][: len(self.payloads[0])], self.payloads[0]
        ).schema

    def record_nbytes(self) -> int | None:
        """Exact bytes per row (key + payload columns), or None if unschematized."""
        schema = self.record_schema
        return None if schema is None else schema.record_nbytes()

    def batches(self) -> list[RecordBatch]:
        """Per-rank :class:`~repro.records.RecordBatch` views.

        Key-only datasets yield zero-column batches.
        """
        if self.payloads is None:
            return [RecordBatch.from_columns(k, {}) for k in self.shards]
        return [
            RecordBatch.from_payload_array(k, v)
            for k, v in zip(self.shards, self.payloads)
        ]

    def rank_args(self) -> list[tuple]:
        """Per-rank positional args for a BSP program: ``(keys[, payload])``."""
        if self.payloads is None:
            return [(k,) for k in self.shards]
        return list(zip(self.shards, self.payloads))

    def __len__(self) -> int:
        return len(self.shards)
