"""The algorithm plugin registry.

Program modules *self-register*: each module in :mod:`repro.baselines` and
:mod:`repro.core` declares its :class:`~repro.algorithms.spec.AlgorithmSpec`
next to the program it describes, either with the :func:`register_algorithm`
decorator::

    @register_algorithm(
        name="bitonic",
        config_cls=BitonicConfig,
        balanced=False,
        paper_section="4.2",
        description="Batcher bitonic sort on a hypercube",
    )
    def bitonic_sort_program(ctx, keys, *, eps=0.05, seed=0): ...

or, when one program backs several named variants (the HSS schedules), by
calling :func:`register_algorithm` with complete specs.  Importing
:mod:`repro.algorithms` imports every built-in program module, so
``REGISTRY`` is fully populated after ``import repro``.

Third-party code extends the system the same way — build an
``AlgorithmSpec`` for your program and call ``register_algorithm(spec)``;
``Sorter``, ``parallel_sort``, the benchmarks and the CLI all resolve
algorithms through this one mapping.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.algorithms.spec import AlgorithmSpec
from repro.errors import ConfigError

__all__ = [
    "REGISTRY",
    "register_algorithm",
    "get_spec",
    "available_algorithms",
]

#: name -> :class:`AlgorithmSpec`, populated at import time by the program
#: modules themselves (plus any third-party plugins).
REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec | None = None, /, **spec_kwargs: Any):
    """Register an algorithm spec; usable directly or as a decorator.

    Direct form (``program`` supplied in the spec)::

        register_algorithm(AlgorithmSpec(name="hss", program=..., ...))

    Decorator form (``program`` is the decorated function)::

        @register_algorithm(name="radix", config_cls=RadixConfig, ...)
        def radix_sort_program(ctx, keys, *, key_bits=None): ...
    """
    if spec is not None:
        if spec_kwargs:
            raise ConfigError(
                "pass either a complete AlgorithmSpec or keyword fields, "
                "not both"
            )
        _add(spec)
        return spec

    def decorator(program: Callable[..., Any]) -> Callable[..., Any]:
        _add(AlgorithmSpec(program=program, **spec_kwargs))
        return program

    return decorator


def _add(spec: AlgorithmSpec) -> None:
    existing = REGISTRY.get(spec.name)
    if existing is not None and existing.program is not spec.program:
        raise ConfigError(
            f"algorithm {spec.name!r} is already registered "
            f"(by {existing.program.__module__})"
        )
    REGISTRY[spec.name] = spec


def get_spec(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm, with the canonical error message."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown algorithm {name!r}; choose from {sorted(REGISTRY)}"
        ) from None


def available_algorithms() -> Iterable[str]:
    """Registered algorithm names, sorted."""
    return sorted(REGISTRY)
