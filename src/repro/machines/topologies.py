"""The interconnect-topology plugin registry.

:class:`~repro.bsp.network.Topology` subclasses are frozen dataclasses;
this module makes them *named plugins* so a machine spec can reference its
interconnect by name + parameters instead of holding an instance — the
step that makes machines fully serializable.  The four built-ins register
here; third-party topologies register the same way::

    @register_topology
    @dataclass(frozen=True)
    class HyperX(Topology):
        name: str = "hyperx"
        ...

Examples
--------
>>> from repro.machines import make_topology, topology_to_dict
>>> torus = make_topology("torus", dims=3, base_endpoints=16)
>>> torus.alltoall_contention(128)
2.0
>>> topology_to_dict(torus)
{'name': 'torus', 'params': {'base_endpoints': 16, 'dims': 3}}
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping

from repro.bsp.network import Dragonfly, FatTree, FullyConnected, Topology, Torus
from repro.errors import ConfigError

__all__ = [
    "TOPOLOGIES",
    "register_topology",
    "get_topology_cls",
    "make_topology",
    "available_topologies",
    "topology_to_dict",
    "topology_from_dict",
]

#: name -> :class:`Topology` subclass.  The registry key is the class's
#: default ``name`` field, which instances carry — so any topology object
#: can be mapped back to its plugin without extra bookkeeping.
TOPOLOGIES: dict[str, type[Topology]] = {}


def register_topology(cls: type[Topology]) -> type[Topology]:
    """Register a :class:`Topology` dataclass under its default ``name``.

    Usable as a decorator.  The class must be a dataclass with a ``name``
    field whose default is the registry key.
    """
    if not hasattr(cls, "__dataclass_fields__"):
        raise ConfigError(
            f"topology {cls.__name__} must be a dataclass to be registrable"
        )
    name_fields = [f for f in fields(cls) if f.name == "name"]
    if not name_fields or not isinstance(name_fields[0].default, str):
        raise ConfigError(
            f"topology {cls.__name__} needs a 'name' field with a string "
            f"default (the registry key)"
        )
    key = name_fields[0].default
    existing = TOPOLOGIES.get(key)
    if existing is not None and existing is not cls:
        raise ConfigError(
            f"topology {key!r} is already registered (by "
            f"{existing.__module__}.{existing.__qualname__})"
        )
    TOPOLOGIES[key] = cls
    return cls


def get_topology_cls(name: str) -> type[Topology]:
    """Look up a registered topology class, with the canonical error."""
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None


def available_topologies() -> list[str]:
    """Registered topology names, sorted."""
    return sorted(TOPOLOGIES)


def make_topology(name: str, /, **params: Any) -> Topology:
    """Instantiate a registered topology from keyword parameters.

    Unknown parameters raise :class:`~repro.errors.ConfigError` naming the
    valid ones (the dataclass fields, minus ``name``).
    """
    cls = get_topology_cls(name)
    valid = _param_names(cls)
    unknown = sorted(set(params) - valid)
    if unknown:
        raise ConfigError(
            f"unknown parameter(s) {unknown} for topology {name!r}; "
            f"valid parameters: {sorted(valid)}"
        )
    try:
        return cls(**params)
    except ValueError as exc:
        raise ConfigError(f"invalid topology {name!r}: {exc}") from exc


def topology_to_dict(topology: Topology) -> dict[str, Any]:
    """Serialize a topology instance to its ``{name, params}`` JSON form.

    Only non-default parameters are needed for fidelity, but *all*
    parameters are emitted so serialized machines are self-describing.
    """
    cls = type(topology)
    if TOPOLOGIES.get(topology.name) is not cls:
        raise ConfigError(
            f"topology {topology.name!r} ({cls.__name__}) is not registered; "
            f"register it with @register_topology before serializing"
        )
    return {
        "name": topology.name,
        "params": {
            key: getattr(topology, key) for key in sorted(_param_names(cls))
        },
    }


def topology_from_dict(data: Mapping[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    if "name" not in data:
        raise ConfigError("topology dict missing required key 'name'")
    return make_topology(data["name"], **dict(data.get("params", {})))


def _param_names(cls: type[Topology]) -> set[str]:
    return {f.name for f in fields(cls) if f.name != "name"}


# The built-in interconnects are plugins like any other.
for _cls in (FullyConnected, Torus, FatTree, Dragonfly):
    register_topology(_cls)
del _cls
