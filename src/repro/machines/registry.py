"""The machine plugin registry.

Mirrors :mod:`repro.algorithms.registry` on the hardware axis: the preset
catalog (:mod:`repro.machines.catalog`) self-registers at import, and
third-party code extends the system the same way — build a
:class:`~repro.machines.MachineSpec` and hand it to
:func:`register_machine`, either directly or by decorating a zero-argument
factory::

    @register_machine
    def my_testbed() -> MachineSpec:
        return MachineSpec(name="my-testbed", alpha=5e-6, ...)

``Sorter``, ``repro sort --machine``, ``perf.model``, the benchmark suites
and the experiment sweeps all resolve machines through this one mapping.

Examples
--------
>>> from repro.machines import available_machines, get_machine
>>> len(available_machines()) >= 6
True
>>> get_machine("mira-like-bgq").topology.dims
5
>>> get_machine("mira-like-bgq", overrides={"cores_per_node": 1}).cores_per_node
1
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.bsp.machine import MachineModel
from repro.errors import ConfigError
from repro.machines.spec import MachineSpec

__all__ = [
    "MACHINES",
    "MACHINE_ALIASES",
    "register_machine",
    "get_machine_spec",
    "get_machine",
    "resolve_machine",
    "machine_summary",
    "available_machines",
]

#: name -> :class:`MachineSpec`, populated at import time by the preset
#: catalog (plus any third-party plugins).
MACHINES: dict[str, MachineSpec] = {}

#: Historical short names (the pre-registry CLI choices) -> registry keys.
MACHINE_ALIASES: dict[str, str] = {
    "mira": "mira-like-bgq",
    "cluster": "generic-cluster",
}


def register_machine(
    spec: MachineSpec | Callable[[], MachineSpec],
    *,
    replace: bool = False,
) -> MachineSpec | Callable[[], MachineSpec]:
    """Register a machine spec; usable directly or as a factory decorator.

    Direct form::

        register_machine(MachineSpec(name="my-testbed", ...))

    Decorator form (the factory is called once, at registration)::

        @register_machine
        def my_testbed() -> MachineSpec: ...

    Re-registering an *identical* spec is a no-op; a conflicting duplicate
    is an error unless ``replace=True`` (the calibration emitter uses it —
    re-calibrating the same host legitimately updates ``local-calibrated``).
    """
    built = spec() if callable(spec) else spec
    if not isinstance(built, MachineSpec):
        raise ConfigError(
            f"register_machine needs a MachineSpec (or a factory returning "
            f"one), got {type(built).__name__}"
        )
    existing = MACHINES.get(built.name)
    if existing is not None and existing != built and not replace:
        raise ConfigError(f"machine {built.name!r} is already registered")
    if built.name in MACHINE_ALIASES:
        raise ConfigError(
            f"machine name {built.name!r} collides with the alias for "
            f"{MACHINE_ALIASES[built.name]!r}"
        )
    MACHINES[built.name] = built
    return spec


def get_machine_spec(
    name: str, overrides: Mapping[str, Any] | None = None
) -> MachineSpec:
    """Look up a registered machine (aliases allowed), applying overrides."""
    key = MACHINE_ALIASES.get(name, name)
    if key not in MACHINES:
        _load_machine_path()
    try:
        spec = MACHINES[key]
    except KeyError:
        raise ConfigError(
            f"unknown machine {name!r}; choose from {available_machines()}"
        ) from None
    if overrides:
        spec = spec.override(**overrides)
    return spec


def _load_machine_path() -> list[str]:
    """Load spec JSON files named by ``REPRO_MACHINE_PATH`` (lazy, on miss).

    The env var holds ``os.pathsep``-separated paths to ``MachineSpec``
    JSON files (``repro calibrate --out spec.json`` output).  It is how a
    generated spec crosses process boundaries — ``repro sweep --machines
    local-calibrated`` in a fresh process resolves the name without any
    code registering it.  Files are (re)loaded with replace semantics, so
    a re-calibration on disk wins over a stale in-process copy.
    """
    import os

    raw = os.environ.get("REPRO_MACHINE_PATH", "")
    loaded: list[str] = []
    for path in filter(None, raw.split(os.pathsep)):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                spec = MachineSpec.from_json(fh.read())
        except OSError as exc:
            raise ConfigError(
                f"REPRO_MACHINE_PATH entry {path!r} is unreadable: {exc}"
            ) from exc
        register_machine(spec, replace=True)
        loaded.append(spec.name)
    return loaded


def get_machine(
    name: str, overrides: Mapping[str, Any] | None = None
) -> MachineModel:
    """Build the executable model of a registered machine by name."""
    return get_machine_spec(name, overrides).model()


def resolve_machine(
    machine: str | MachineSpec | MachineModel | None,
    overrides: Mapping[str, Any] | None = None,
    *,
    default: str = "laptop",
) -> MachineModel:
    """Coerce any machine reference to an executable :class:`MachineModel`.

    The uniform front door used by ``Sorter``, the CLI, ``perf.model`` and
    the benchmark suites: a registered name (or alias), a
    :class:`MachineSpec`, an already-built model, or ``None`` for the
    default machine.  ``overrides`` apply to names and specs; passing them
    with a pre-built model is an error (a model has no validated override
    surface).
    """
    if machine is None:
        machine = default
    if isinstance(machine, str):
        return get_machine(machine, overrides)
    if isinstance(machine, MachineSpec):
        if overrides:
            machine = machine.override(**overrides)
        return machine.model()
    if isinstance(machine, MachineModel):
        if overrides:
            raise ConfigError(
                "overrides apply to machine names/specs; call .with_() on a "
                "pre-built MachineModel instead"
            )
        return machine
    raise ConfigError(
        f"cannot resolve a machine from {type(machine).__name__}; pass a "
        f"registered name, a MachineSpec, or a MachineModel"
    )


def machine_summary(
    machine: str | MachineSpec | MachineModel | None,
    overrides: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Compact ``{name, topology, cores_per_node}`` provenance block.

    Accepts the same references as :func:`resolve_machine`; documents
    (bench / experiment JSON) embed this next to their measured payload so
    baselines are self-describing.
    """
    if isinstance(machine, MachineSpec) and not overrides:
        return machine.describe()
    model = resolve_machine(machine, overrides)
    return {
        "name": model.name,
        "topology": model.topology.name,
        "cores_per_node": model.cores_per_node,
    }


def available_machines() -> list[str]:
    """Registered machine names, sorted."""
    return sorted(MACHINES)
