"""Typed, declarative description of one simulated machine.

A :class:`MachineSpec` is to the hardware axis what
:class:`~repro.algorithms.AlgorithmSpec` is to the algorithm axis: a plain
validated record that the registry hands out by name.  It carries the same
scalar parameters as the executable
:class:`~repro.bsp.machine.MachineModel`, but references its interconnect
*by registered topology name + parameters* rather than by instance, so a
spec round-trips through JSON bit-identically — provenance note and
paper-section tag included.

Examples
--------
>>> from repro.machines import MachineSpec
>>> spec = MachineSpec(
...     name="toy", alpha=1e-6, beta=1e-9,
...     topology="torus", topology_params={"dims": 3},
... )
>>> MachineSpec.from_json(spec.to_json()) == spec
True
>>> spec.model().topology.dims
3
>>> spec.override(cores_per_node=4).cores_per_node
4
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.bsp.machine import MachineModel
from repro.errors import ConfigError
from repro.machines.topologies import make_topology

__all__ = ["MachineSpec"]

#: MachineModel scalar fields a spec carries verbatim (everything except
#: the topology, which a spec holds by name).
_MODEL_FIELDS = (
    "alpha",
    "beta",
    "node_alpha",
    "round_sync_per_level",
    "gamma_compare",
    "gamma_key_compare",
    "gamma_byte",
    "cores_per_node",
)


@dataclass(frozen=True)
class MachineSpec:
    """Declarative, serializable description of a registered machine.

    Time parameters mirror :class:`~repro.bsp.machine.MachineModel` (same
    units, same "0 means inherit" fallbacks, applied at pricing time via
    ``MachineModel.resolved``); :meth:`model` resolves the named topology
    into an executable model.
    """

    #: Registry key (the name used by ``Sorter``/``repro sort``/sweeps).
    name: str
    #: Per-message network latency (seconds).
    alpha: float = 2.0e-6
    #: Per-byte transfer time (seconds; inverse link bandwidth).
    beta: float = 1.0 / 2.0e9
    #: Intra-node collective latency; 0 inherits ``alpha``.
    node_alpha: float = 2.0e-7
    #: Per-round, per-tree-level runtime synchronization overhead.
    round_sync_per_level: float = 0.0
    #: Seconds per record comparison (local sort / merge phases).
    gamma_compare: float = 1.5e-9
    #: Seconds per bare-key comparison; 0 inherits ``gamma_compare``.
    gamma_key_compare: float = 0.0
    #: Seconds per byte of local memory traffic.
    gamma_byte: float = 1.0 / 6.0e9
    #: Registered interconnect plugin name (see ``available_topologies``).
    topology: str = "fully-connected"
    #: Keyword parameters for the topology plugin.
    topology_params: Mapping[str, Any] = field(default_factory=dict)
    #: Physical cores per node (1 = no shared-memory structure).
    cores_per_node: int = 1
    #: Provenance: what real system (or regime) the constants model and
    #: how they were calibrated.
    note: str = ""
    #: Paper section whose experiments this machine backs (e.g. ``"6.1"``).
    paper_section: str = ""
    #: Structured provenance for generated specs (``repro calibrate``):
    #: DoE seed, backend, sample counts, fit residuals.  Plain JSON data;
    #: never consulted by the cost model.  Empty for hand-written presets.
    provenance: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("machine spec needs a non-empty name")
        # Validate scalars and the topology reference eagerly: a spec that
        # constructs is a spec that models.  Building the model checks
        # both (MachineModel rejects bad scalars, make_topology rejects
        # unknown names/params) and pins topology_params to a plain dict
        # so equality and JSON round-trips are representation-independent.
        object.__setattr__(self, "topology_params", dict(self.topology_params))
        object.__setattr__(self, "provenance", dict(self.provenance))
        try:
            self._build_model()
        except ValueError as exc:
            raise ConfigError(f"invalid machine spec {self.name!r}: {exc}") from exc

    # ------------------------------------------------------------------ #
    def _build_model(self) -> MachineModel:
        return MachineModel(
            name=self.name,
            topology=make_topology(self.topology, **self.topology_params),
            **{f: getattr(self, f) for f in _MODEL_FIELDS},
        )

    def model(self) -> MachineModel:
        """Resolve to the executable :class:`MachineModel`."""
        return self._build_model()

    def override(self, **changes: Any) -> "MachineSpec":
        """A copy with some fields replaced (validated like any spec).

        Unknown fields raise :class:`~repro.errors.ConfigError` naming the
        valid ones — the ``overrides={}`` surface of the machine registry.
        """
        valid = {f.name for f in fields(self)} - {"name"}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ConfigError(
                f"unknown override(s) {unknown} for machine {self.name!r}; "
                f"valid fields: {sorted(valid)}"
            )
        return replace(self, **changes)

    def describe(self) -> dict[str, Any]:
        """Compact provenance block (bench/experiment documents)."""
        return {
            "name": self.name,
            "topology": self.topology,
            "cores_per_node": self.cores_per_node,
        }

    # ------------------------------------------------------------------ #
    # (De)serialization.
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            **{f: getattr(self, f) for f in _MODEL_FIELDS},
            "topology": {
                "name": self.topology,
                "params": dict(self.topology_params),
            },
            "note": self.note,
            "paper_section": self.paper_section,
            # Presets carry no structured provenance; omit the key so
            # their serialized form is unchanged by the calibration layer.
            **({"provenance": dict(self.provenance)} if self.provenance else {}),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineSpec":
        missing = [k for k in ("name", "topology") if k not in data]
        if missing:
            raise ConfigError(f"machine dict missing required keys {missing}")
        topology = data["topology"]
        if isinstance(topology, str):
            topo_name, topo_params = topology, {}
        elif isinstance(topology, Mapping) and "name" in topology:
            topo_name = topology["name"]
            topo_params = dict(topology.get("params", {}))
        else:
            raise ConfigError(
                "machine 'topology' must be a name or a {name, params} object"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known - {"topology"})
        if unknown:
            raise ConfigError(
                f"unknown machine field(s) {unknown} for "
                f"{data.get('name')!r}"
            )
        kwargs = {
            key: data[key]
            for key in known - {"name", "topology", "topology_params"}
            if key in data
        }
        return cls(
            name=data["name"],
            topology=topo_name,
            topology_params=topo_params,
            **kwargs,
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MachineSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"machine spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
