"""First-class Machine API: typed specs, topology plugins, machine registry.

This package mirrors :mod:`repro.algorithms` on the hardware axis:

- :class:`MachineSpec` — declarative, JSON-round-trippable description of
  one simulated machine: validated scalar parameters, the interconnect
  referenced *by registered topology name*, a provenance note and the
  paper section it backs.
- :data:`MACHINES` / :func:`register_machine` — the plugin registry with a
  catalog of seven built-in presets (``laptop``, ``mira-like-bgq``,
  ``generic-cluster``, ``fat-tree-hpc``, ``dragonfly-hpc``,
  ``cloud-ethernet``, plus the chaos subsystem's ``jittery-cloud``);
  third-party machines register the same way.
- :data:`TOPOLOGIES` / :func:`register_topology` — named interconnect
  plugins (``fully-connected``, ``torus``, ``fat-tree``, ``dragonfly``,
  and the seeded ``jittered-fat-tree`` / ``jittered-dragonfly`` from
  :mod:`repro.chaos.jitter`).
- :func:`resolve_machine` — the uniform coercion (name | spec | model |
  None) every execution surface goes through.

Quick tour
----------
>>> from repro.machines import get_machine, get_machine_spec, MachineSpec
>>> mira = get_machine("mira-like-bgq")
>>> mira.cores_per_node, mira.topology.name
(16, 'torus')
>>> spec = get_machine_spec("cloud-ethernet")
>>> MachineSpec.from_json(spec.to_json()) == spec
True
"""

from repro.machines.spec import MachineSpec
from repro.machines.topologies import (
    TOPOLOGIES,
    available_topologies,
    get_topology_cls,
    make_topology,
    register_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.machines.registry import (
    MACHINES,
    MACHINE_ALIASES,
    available_machines,
    get_machine,
    get_machine_spec,
    machine_summary,
    register_machine,
    resolve_machine,
)

# The built-in presets self-register on import; loading the catalog here
# means MACHINES is fully populated after ``import repro.machines``.
import repro.machines.catalog  # noqa: E402,F401

# The chaos subsystem contributes the jittered topologies and the
# ``jittery-cloud`` preset (module import only — same benign-cycle rule
# as repro.runtime's chaos import).
import repro.chaos.jitter  # noqa: E402,F401

__all__ = [
    "MachineSpec",
    "MACHINES",
    "MACHINE_ALIASES",
    "TOPOLOGIES",
    "register_machine",
    "register_topology",
    "get_machine",
    "get_machine_spec",
    "get_topology_cls",
    "make_topology",
    "machine_summary",
    "resolve_machine",
    "available_machines",
    "available_topologies",
    "topology_to_dict",
    "topology_from_dict",
]
