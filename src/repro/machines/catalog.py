"""The built-in machine catalog.

Six deterministic presets spanning the regimes the paper's Chapter 6
analysis cares about (the chaos subsystem registers a seventh, jittered
``jittery-cloud``, in :mod:`repro.chaos.jitter`).  The absolute
constants matter less than their *ratios* — alpha/beta
sets the message-size crossover, beta/gamma the communication-vs-compute
crossover, and the topology's contention factor is what separates torus
from fat-tree behaviour at scale (Fig 6.1/6.2, Table 6.1).

``mira-like-bgq``, ``generic-cluster`` and ``laptop`` keep the exact
constants of the historical ``MIRA_LIKE``/``GENERIC_CLUSTER``/``LAPTOP``
module constants (modeled metrics are bit-identical); the fat-tree HPC,
dragonfly and cloud-ethernet profiles open the machine axis the ROADMAP's
scenario-diversity goal asks for.
"""

from __future__ import annotations

from repro.machines.registry import register_machine
from repro.machines.spec import MachineSpec

__all__: list[str] = []  # presets are reached through the registry

#: IBM Blue Gene/Q "Mira"-like machine of the paper's Figure 6.1
#: experiments.  16 cores/node, 5-D torus, slow in-order A2 cores.
#: ``gamma_compare`` is calibrated so sorting 10⁶ 12-byte records takes
#: ~1 s/core (the paper's local-sort bar) and ``beta`` is the *effective*
#: per-core injection bandwidth including runtime software overheads, not
#: the raw link rate — raw α–β with 1.8 GB/s links underestimates BG/Q
#: all-to-all by ~10×.
register_machine(
    MachineSpec(
        name="mira-like-bgq",
        alpha=2.5e-6,
        beta=1.0 / 2.0e8,
        gamma_compare=4.0e-8,
        gamma_key_compare=8.0e-9,
        gamma_byte=1.0 / 2.0e9,
        topology="torus",
        topology_params={"dims": 5, "base_endpoints": 32},
        cores_per_node=16,
        round_sync_per_level=1.0e-3,
        note=(
            "IBM BG/Q (Mira): 1.6 GHz A2 cores, 5-D torus; beta is "
            "effective per-core injection incl. runtime overhead"
        ),
        paper_section="6.1",
    )
)

#: A contemporary commodity cluster: fat tree with 2:1 taper, fast cores.
register_machine(
    MachineSpec(
        name="generic-cluster",
        alpha=1.5e-6,
        beta=1.0 / 1.0e10,
        gamma_compare=1.0e-9,
        gamma_byte=1.0 / 1.0e10,
        topology="fat-tree",
        topology_params={"bisection": 0.5},
        cores_per_node=64,
        note="commodity InfiniBand cluster, 2:1 tapered fat tree",
        paper_section="6.3",
    )
)

#: Single multicore machine (everything in shared memory) — used by tests
#: so cost accounting stays meaningful even for tiny runs.
register_machine(
    MachineSpec(
        name="laptop",
        alpha=2.0e-7,
        beta=1.0 / 2.0e10,
        gamma_compare=1.0e-9,
        gamma_byte=1.0 / 2.0e10,
        topology="fully-connected",
        cores_per_node=8,
        note="single shared-memory multicore; the default test machine",
        paper_section="",
    )
)

#: Leadership-class fat-tree HPC system: full-bisection NDR-class fabric,
#: dense many-core nodes.  The full bisection makes all-to-all contention
#: flat in p — the control against which torus contention is measured.
register_machine(
    MachineSpec(
        name="fat-tree-hpc",
        alpha=1.0e-6,
        beta=1.0 / 2.5e10,
        gamma_compare=8.0e-10,
        gamma_key_compare=4.0e-10,
        gamma_byte=1.0 / 2.0e10,
        topology="fat-tree",
        topology_params={"bisection": 1.0},
        cores_per_node=128,
        round_sync_per_level=1.0e-4,
        note=(
            "non-blocking fat-tree HPC system (Summit/Eagle class): "
            "full bisection, 128-core nodes"
        ),
        paper_section="6.2",
    )
)

#: Dragonfly system (Cray Aries/Slingshot style): all-to-all groups with
#: tapered global links — constant-factor contention past one group, the
#: middle ground between torus growth and fat-tree flatness.
register_machine(
    MachineSpec(
        name="dragonfly-hpc",
        alpha=1.3e-6,
        beta=1.0 / 1.6e10,
        gamma_compare=9.0e-10,
        gamma_key_compare=4.5e-10,
        gamma_byte=1.0 / 1.8e10,
        topology="dragonfly",
        topology_params={"group_size": 1024, "global_taper": 0.5},
        cores_per_node=64,
        round_sync_per_level=2.0e-4,
        note=(
            "dragonfly interconnect (Aries/Slingshot class): 1024-endpoint "
            "groups, 2:1 tapered global links"
        ),
        paper_section="6.3",
    )
)

#: Cloud/ethernet profile: TCP stacks push per-message latency ~20x above
#: HPC interconnects while per-byte bandwidth stays respectable, so the
#: alpha term dominates and round-count differences (Fig 6.2) are
#: amplified; the oversubscribed spine gives a 4:1 effective taper.
register_machine(
    MachineSpec(
        name="cloud-ethernet",
        alpha=4.0e-5,
        beta=1.0 / 3.0e9,
        node_alpha=5.0e-7,
        gamma_compare=1.2e-9,
        gamma_byte=1.0 / 1.5e10,
        topology="fat-tree",
        topology_params={"bisection": 0.25},
        cores_per_node=16,
        round_sync_per_level=2.0e-3,
        note=(
            "cloud VM cluster over 25GbE/TCP: high per-message latency, "
            "4:1 oversubscribed spine"
        ),
        paper_section="1",
    )
)
