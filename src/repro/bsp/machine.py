"""Machine descriptions for the BSP cost model.

A :class:`MachineModel` bundles the handful of scalars that the paper's
Chapter 5 analysis needs:

* ``alpha`` — per-message latency (the BSP ``L`` / LogP ``o+L`` lump),
* ``beta``  — per-byte transfer time on one link (inverse bandwidth),
* ``gamma_compare`` — time per key comparison (the ``T_I`` computation unit),
* ``gamma_byte`` — time per byte of local memory movement (copy/partition),
* ``topology`` — interconnect model supplying contention factors,
* ``cores_per_node`` — for the §6.1.1 shared-memory node-combining layout.

Three presets are provided.  ``MIRA_LIKE`` is calibrated to the IBM Blue
Gene/Q system of the paper's Figure 6.1 experiments (1.6 GHz A2 cores, 5-D
torus, 16 cores/node, ~1.8 GB/s per link); the absolute constants matter less
than their *ratios*, which set where the phase crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.bsp.network import FatTree, FullyConnected, Topology, Torus

__all__ = ["MachineModel", "MIRA_LIKE", "GENERIC_CLUSTER", "LAPTOP"]


@dataclass(frozen=True)
class MachineModel:
    """Scalar performance parameters of a simulated machine.

    All times are in seconds; rates in bytes or operations per second are
    expressed as their reciprocal per-unit times.
    """

    name: str = "generic"
    #: Per-message latency in seconds (software + network injection).
    alpha: float = 2.0e-6
    #: Per-byte transfer time in seconds (inverse of link bandwidth).
    beta: float = 1.0 / 2.0e9
    #: Per-message latency for *intra-node* (shared-memory) collectives —
    #: essentially a synchronization + cache-line handoff.
    node_alpha: float = 2.0e-7
    #: Runtime synchronization overhead per histogramming *round*, per tree
    #: level (seconds).  Iterative splitter refinement needs a full
    #: quiesce-broadcast-reduce-quiesce cycle per round; on Charm++ systems
    #: quiescence detection alone costs milliseconds at scale — far above
    #: the α·log p of the raw collectives.  This term charges
    #: ``round_sync_per_level · log₂(endpoints)`` per round to *every*
    #: round-based splitter algorithm (HSS and classic histogram sort
    #: alike), so it rewards algorithms that need fewer rounds — the
    #: mechanism behind Fig 6.2.
    round_sync_per_level: float = 0.0
    #: Seconds per *record* comparison for local sorting/merging — includes
    #: the cache-miss cost of moving key+payload records, so it is the right
    #: constant for the local-sort and merge phases.
    gamma_compare: float = 1.5e-9
    #: Seconds per *bare-key* comparison (contiguous key arrays: sample
    #: sorting, histogram binary searches, probe generation).  0 means
    #: "same as gamma_compare".
    gamma_key_compare: float = 0.0
    #: Seconds per byte of local memory traffic (bucketizing, copying).
    gamma_byte: float = 1.0 / 6.0e9
    #: Interconnect model.
    topology: Topology = field(default_factory=FullyConnected)
    #: Physical cores per node (1 = no shared-memory structure).
    cores_per_node: int = 1

    def __post_init__(self) -> None:
        for attr in (
            "alpha",
            "beta",
            "gamma_compare",
            "gamma_key_compare",
            "gamma_byte",
            "node_alpha",
            "round_sync_per_level",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")

    def with_(self, **changes: object) -> "MachineModel":
        """Return a copy with some fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)

    def nodes_for(self, nprocs: int) -> int:
        """Number of physical nodes hosting ``nprocs`` simulated cores."""
        return -(-nprocs // self.cores_per_node)

    # -- convenience conversions ------------------------------------------
    def compare_seconds(self, comparisons: float) -> float:
        """Time to execute ``comparisons`` record comparisons."""
        return comparisons * self.gamma_compare

    def key_compare_seconds(self, comparisons: float) -> float:
        """Time for ``comparisons`` bare-key comparisons (no payload)."""
        gamma = self.gamma_key_compare or self.gamma_compare
        return comparisons * gamma

    def copy_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` through local memory."""
        return nbytes * self.gamma_byte

    def transfer_seconds(self, nbytes: float, contention: float = 1.0) -> float:
        """Time to push ``nbytes`` through one link at the given contention."""
        return nbytes * self.beta * contention


#: IBM Blue Gene/Q "Mira"-like machine of the paper's Figure 6.1 experiments.
#: 16 cores/node, 5-D torus, slow in-order A2 cores.  ``gamma_compare`` is
#: calibrated so sorting 10⁶ 12-byte records takes ~1 s/core (the paper's
#: local-sort bar) and ``beta`` is the *effective* per-core injection
#: bandwidth including runtime software overheads, not the raw link rate —
#: raw α–β with 1.8 GB/s links underestimates BG/Q all-to-all by ~10×.
MIRA_LIKE = MachineModel(
    name="mira-like-bgq",
    alpha=2.5e-6,
    beta=1.0 / 2.0e8,
    gamma_compare=4.0e-8,
    gamma_key_compare=8.0e-9,
    gamma_byte=1.0 / 2.0e9,
    topology=Torus(dims=5, base_endpoints=32),
    cores_per_node=16,
    round_sync_per_level=1.0e-3,
)

#: A contemporary commodity cluster: fat tree with 2:1 taper, fast cores.
GENERIC_CLUSTER = MachineModel(
    name="generic-cluster",
    alpha=1.5e-6,
    beta=1.0 / 1.0e10,
    gamma_compare=1.0e-9,
    gamma_byte=1.0 / 1.0e10,
    topology=FatTree(bisection=0.5),
    cores_per_node=64,
)

#: Single multicore machine (everything in shared memory) — used by tests so
#: cost accounting stays meaningful even for tiny runs.
LAPTOP = MachineModel(
    name="laptop",
    alpha=2.0e-7,
    beta=1.0 / 2.0e10,
    gamma_compare=1.0e-9,
    gamma_byte=1.0 / 2.0e10,
    topology=FullyConnected(),
    cores_per_node=8,
)
