"""Machine descriptions for the BSP cost model.

A :class:`MachineModel` bundles the handful of scalars that the paper's
Chapter 5 analysis needs:

* ``alpha`` — per-message latency (the BSP ``L`` / LogP ``o+L`` lump),
* ``beta``  — per-byte transfer time on one link (inverse bandwidth),
* ``gamma_compare`` — time per key comparison (the ``T_I`` computation unit),
* ``gamma_byte`` — time per byte of local memory movement (copy/partition),
* ``topology`` — interconnect model supplying contention factors,
* ``cores_per_node`` — for the §6.1.1 shared-memory node-combining layout.

``MachineModel`` is the *resolved, executable* form consumed by the cost
model and engine.  The serializable catalog of named machines — presets,
the ``@register_machine`` plugin registry, topology-by-name references —
lives in :mod:`repro.machines`; build models from it with
``repro.machines.get_machine("mira-like-bgq")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.bsp.network import FullyConnected, Topology

__all__ = ["MachineModel"]

#: Fields where 0 means "inherit the value of another field" — the single
#: source of truth for every derived-field fallback rule.  Use sites must
#: price through :meth:`MachineModel.resolved` (or the convenience
#: conversion methods, which do) rather than re-implementing ``x or y``.
DERIVED_FIELD_FALLBACKS: dict[str, str] = {
    # Bare-key comparisons default to the record-comparison constant.
    "gamma_key_compare": "gamma_compare",
    # Intra-node latency defaults to the network message latency (a
    # machine spec that never thought about shared memory stays safe).
    "node_alpha": "alpha",
}


@dataclass(frozen=True)
class MachineModel:
    """Scalar performance parameters of a simulated machine.

    All times are in seconds; rates in bytes or operations per second are
    expressed as their reciprocal per-unit times.
    """

    name: str = "generic"
    #: Per-message latency in seconds (software + network injection).
    alpha: float = 2.0e-6
    #: Per-byte transfer time in seconds (inverse of link bandwidth).
    beta: float = 1.0 / 2.0e9
    #: Per-message latency for *intra-node* (shared-memory) collectives —
    #: essentially a synchronization + cache-line handoff.  0 means
    #: "inherit ``alpha``" (see :meth:`resolved`).
    node_alpha: float = 2.0e-7
    #: Runtime synchronization overhead per histogramming *round*, per tree
    #: level (seconds).  Iterative splitter refinement needs a full
    #: quiesce-broadcast-reduce-quiesce cycle per round; on Charm++ systems
    #: quiescence detection alone costs milliseconds at scale — far above
    #: the α·log p of the raw collectives.  This term charges
    #: ``round_sync_per_level · log₂(endpoints)`` per round to *every*
    #: round-based splitter algorithm (HSS and classic histogram sort
    #: alike), so it rewards algorithms that need fewer rounds — the
    #: mechanism behind Fig 6.2.
    round_sync_per_level: float = 0.0
    #: Seconds per *record* comparison for local sorting/merging — includes
    #: the cache-miss cost of moving key+payload records, so it is the right
    #: constant for the local-sort and merge phases.
    gamma_compare: float = 1.5e-9
    #: Seconds per *bare-key* comparison (contiguous key arrays: sample
    #: sorting, histogram binary searches, probe generation).  0 means
    #: "inherit ``gamma_compare``" (see :meth:`resolved`).
    gamma_key_compare: float = 0.0
    #: Seconds per byte of local memory traffic (bucketizing, copying).
    gamma_byte: float = 1.0 / 6.0e9
    #: Interconnect model.
    topology: Topology = field(default_factory=FullyConnected)
    #: Physical cores per node (1 = no shared-memory structure).
    cores_per_node: int = 1

    def __post_init__(self) -> None:
        for attr in (
            "alpha",
            "beta",
            "gamma_compare",
            "gamma_key_compare",
            "gamma_byte",
            "node_alpha",
            "round_sync_per_level",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")

    def with_(self, **changes: object) -> "MachineModel":
        """Return a copy with some fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)

    @cached_property
    def _resolved(self) -> "MachineModel":
        changes = {
            derived: getattr(self, source)
            for derived, source in DERIVED_FIELD_FALLBACKS.items()
            if getattr(self, derived) == 0.0 and getattr(self, source) != 0.0
        }
        return replace(self, **changes) if changes else self

    def resolved(self) -> "MachineModel":
        """This machine with every "0 means inherit" field made explicit.

        The returned view prices identically whether a spec spelled a
        derived field out or left it 0 — the one place the fallback rules
        in :data:`DERIVED_FIELD_FALLBACKS` are applied.  Idempotent and
        cached; a model with no zeroed derived fields returns itself.
        """
        return self._resolved

    def nodes_for(self, nprocs: int) -> int:
        """Number of physical nodes hosting ``nprocs`` simulated cores."""
        return -(-nprocs // self.cores_per_node)

    # -- convenience conversions ------------------------------------------
    def compare_seconds(self, comparisons: float) -> float:
        """Time to execute ``comparisons`` record comparisons."""
        return comparisons * self.gamma_compare

    def key_compare_seconds(self, comparisons: float) -> float:
        """Time for ``comparisons`` bare-key comparisons (no payload)."""
        return comparisons * self.resolved().gamma_key_compare

    def copy_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` through local memory."""
        return nbytes * self.gamma_byte

    def transfer_seconds(self, nbytes: float, contention: float = 1.0) -> float:
        """Time to push ``nbytes`` through one link at the given contention."""
        return nbytes * self.beta * contention


# Backwards compatibility: the historical preset constants now live in the
# repro.machines catalog (resolved lazily so this module keeps zero
# knowledge of the registry layer).  In-tree code uses
# ``repro.machines.get_machine``; this keeps third-party imports working.
_LEGACY_PRESETS = {
    "MIRA_LIKE": "mira-like-bgq",
    "GENERIC_CLUSTER": "generic-cluster",
    "LAPTOP": "laptop",
}


def __getattr__(name: str) -> MachineModel:
    if name in _LEGACY_PRESETS:
        from repro.machines import get_machine

        return get_machine(_LEGACY_PRESETS[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
