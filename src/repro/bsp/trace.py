"""Superstep traces and phase breakdowns.

Each BSP superstep (all computation since the previous rendezvous plus one
collective) is recorded as a :class:`SuperstepRecord`.  Aggregating records by
their *phase label* reproduces the stacked-bar structure of the paper's
Figure 6.1 (local sort / histogramming / data exchange).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["SuperstepRecord", "Trace", "PhaseBreakdown"]


@dataclass(frozen=True)
class SuperstepRecord:
    """One rendezvous of the simulated machine.

    ``compute_by_phase`` is the *critical-path* computation accumulated since
    the previous rendezvous (taken from the slowest rank — BSP supersteps wait
    for the slowest processor), split by the phase labels under which it was
    charged.  ``comm_seconds`` is the modeled cost of the collective that
    ended the superstep, attributed to ``phase`` — the label active at the
    collective call site.
    """

    index: int
    op: str
    phase: str
    compute_by_phase: dict[str, float]
    comm_seconds: float
    nbytes: int
    messages: int
    endpoints: int

    @property
    def compute_seconds(self) -> float:
        return sum(self.compute_by_phase.values())

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds


@dataclass
class PhaseBreakdown:
    """Seconds spent per phase, split into compute and communication."""

    compute: dict[str, float] = field(default_factory=dict)
    comm: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, compute: float, comm: float) -> None:
        self.compute[phase] = self.compute.get(phase, 0.0) + compute
        self.comm[phase] = self.comm.get(phase, 0.0) + comm

    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for key in list(self.compute) + list(self.comm):
            seen.setdefault(key)
        return list(seen)

    def total(self, phase: str | None = None) -> float:
        """Total seconds, overall or for one phase."""
        if phase is not None:
            return self.compute.get(phase, 0.0) + self.comm.get(phase, 0.0)
        return sum(self.compute.values()) + sum(self.comm.values())

    def merged(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        out = PhaseBreakdown(dict(self.compute), dict(self.comm))
        for phase in other.phases():
            out.add(phase, other.compute.get(phase, 0.0), other.comm.get(phase, 0.0))
        return out

    def table(self) -> str:
        """Render as an aligned text table (used by benchmark harnesses)."""
        rows = [("phase", "compute (s)", "comm (s)", "total (s)")]
        for phase in self.phases():
            rows.append(
                (
                    phase,
                    f"{self.compute.get(phase, 0.0):.6f}",
                    f"{self.comm.get(phase, 0.0):.6f}",
                    f"{self.total(phase):.6f}",
                )
            )
        rows.append(("TOTAL", "", "", f"{self.total():.6f}"))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        return "\n".join(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        )


class Trace:
    """Ordered collection of superstep records for one engine run."""

    def __init__(self) -> None:
        self.records: list[SuperstepRecord] = []

    def append(self, record: SuperstepRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[SuperstepRecord]:
        return iter(self.records)

    @property
    def makespan(self) -> float:
        """Modeled end-to-end execution time in seconds."""
        return sum(r.total_seconds for r in self.records)

    def breakdown(self) -> PhaseBreakdown:
        """Aggregate compute/comm seconds by phase label."""
        out = PhaseBreakdown()
        for r in self.records:
            out.add(r.phase, 0.0, r.comm_seconds)
            for phase, seconds in r.compute_by_phase.items():
                out.add(phase, seconds, 0.0)
        return out

    def to_spans(self, sink):
        """Replay this trace into a telemetry sink; returns the sink.

        Produces exactly the spans live resolver emission would have —
        both paths share :func:`repro.telemetry.adapters.trace_to_spans`
        — so a breakdown computed from spans always matches
        :meth:`breakdown`.
        """
        from repro.telemetry.adapters import trace_to_spans

        return trace_to_spans(self, sink)

    def count_collectives(self, op: str | None = None) -> int:
        """Number of collectives executed (optionally of one kind)."""
        if op is None:
            return sum(1 for r in self.records if r.op != "__final__")
        return sum(1 for r in self.records if r.op == op)

    def total_bytes(self) -> int:
        """Total bytes moved over the simulated network."""
        return sum(r.nbytes for r in self.records)

    def total_messages(self) -> int:
        """Total network messages injected."""
        return sum(r.messages for r in self.records)
