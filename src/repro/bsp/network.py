"""Interconnect topology models.

The only place topology enters the BSP cost analysis is through *contention*:
a personalized all-to-all moves ``N`` bytes total and roughly half of it must
cross the network bisection, so the achievable per-endpoint bandwidth degrades
on networks whose bisection grows slower than the endpoint count.

The paper observes exactly this on Mira (§6.3): *"All-to-all communication
does not scale very well on torus networks, because communication load per
link increases with number of processors"*.  A ``d``-dimensional torus with
``n`` endpoints has bisection width :math:`\\Theta(n^{(d-1)/d})`, so the
per-endpoint all-to-all slowdown is :math:`\\Theta(n^{1/d})`.  Fat trees with
full bisection have constant factor 1.

These classes give a *relative contention factor* ``alltoall_contention(n)``
(≥ 1, equal to 1 for small n) that multiplies the per-byte cost of all-to-all
traffic, plus ``diameter(n)`` for latency scaling of unstructured traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Topology", "FullyConnected", "Torus", "FatTree", "Dragonfly"]


class Topology:
    """Interface for interconnect models used by :class:`CostModel`."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    def alltoall_contention(self, n: int) -> float:
        """Bandwidth-degradation factor for an ``n``-endpoint all-to-all.

        1.0 means full-bisection behaviour; larger values linearly inflate
        per-byte all-to-all cost.
        """
        raise NotImplementedError

    def diameter(self, n: int) -> int:
        """Hop-count diameter for ``n`` endpoints (latency multiplier)."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class FullyConnected(Topology):
    """Idealized crossbar: no contention, single hop.

    Useful as a control in ablations — differences between this and
    :class:`Torus` isolate the network-contention component of the data
    exchange phase.
    """

    name: str = "fully-connected"

    def alltoall_contention(self, n: int) -> float:
        return 1.0

    def diameter(self, n: int) -> int:
        return 1


@dataclass(frozen=True)
class Torus(Topology):
    """``dims``-dimensional torus (Mira's interconnect is a 5-D torus).

    For ``n`` endpoints arranged in a balanced ``dims``-dimensional torus the
    bisection width is ``2 * n / side`` links where ``side = n**(1/dims)``,
    so all-to-all effective bandwidth per endpoint shrinks like
    ``side / (4 * links_per_node)``; we normalize so that contention is 1.0
    at ``n <= base_endpoints`` and grows as ``(n / base)**(1/dims)`` beyond.

    Parameters
    ----------
    dims:
        Torus dimensionality (5 for BG/Q, 3 for BG/L or Cray Gemini).
    base_endpoints:
        Endpoint count below which the network is effectively
        contention-free for the message sizes of interest.
    """

    dims: int = 5
    base_endpoints: int = 64
    name: str = "torus"

    def __post_init__(self) -> None:
        if self.dims < 1:
            raise ValueError(f"torus dims must be >= 1, got {self.dims}")
        if self.base_endpoints < 1:
            raise ValueError(
                f"base_endpoints must be >= 1, got {self.base_endpoints}"
            )

    def alltoall_contention(self, n: int) -> float:
        if n <= self.base_endpoints:
            return 1.0
        return float((n / self.base_endpoints) ** (1.0 / self.dims))

    def diameter(self, n: int) -> int:
        side = max(1, round(n ** (1.0 / self.dims)))
        return max(1, self.dims * (side // 2))

    def describe(self) -> str:
        return f"{self.dims}-D torus"


@dataclass(frozen=True)
class FatTree(Topology):
    """Folded-Clos / fat-tree with a configurable bisection ratio.

    ``bisection`` = 1.0 models a non-blocking fabric; 0.5 a typical 2:1
    tapered tree.  Contention is the inverse of the bisection ratio,
    independent of n (the defining property of fat trees).
    """

    bisection: float = 1.0
    name: str = "fat-tree"

    def __post_init__(self) -> None:
        if not 0.0 < self.bisection <= 1.0:
            raise ValueError(
                f"bisection ratio must be in (0, 1], got {self.bisection}"
            )

    def alltoall_contention(self, n: int) -> float:
        return 1.0 / self.bisection

    def diameter(self, n: int) -> int:
        return max(1, 2 * math.ceil(math.log2(max(2, n))) // 2)


@dataclass(frozen=True)
class Dragonfly(Topology):
    """Two-level dragonfly (Aries / Slingshot style).

    Endpoints are grouped into all-to-all connected *groups* of
    ``group_size`` endpoints; groups are joined by a global all-to-all
    whose aggregate bandwidth is ``global_taper`` of the injection
    bandwidth.  Uniform all-to-all traffic inside one group sees no
    contention; once traffic crosses groups the tapered global links are
    the bottleneck, independent of scale (the dragonfly design point) —
    modeled as a constant ``1 / global_taper`` factor.  Diameter is the
    canonical min-routing hop count: 1 within a group, 3 across
    (local, global, local).
    """

    group_size: int = 1024
    global_taper: float = 0.5
    name: str = "dragonfly"

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(
                f"group_size must be >= 1, got {self.group_size}"
            )
        if not 0.0 < self.global_taper <= 1.0:
            raise ValueError(
                f"global_taper must be in (0, 1], got {self.global_taper}"
            )

    def alltoall_contention(self, n: int) -> float:
        if n <= self.group_size:
            return 1.0
        return 1.0 / self.global_taper

    def diameter(self, n: int) -> int:
        return 1 if n <= self.group_size else 3

    def describe(self) -> str:
        return f"dragonfly ({self.group_size}/group)"
