"""BSP simulation substrate.

The paper analyzes Histogram Sort with Sampling in Valiant's Bulk Synchronous
Parallel model and implements it on Charm++ over IBM Blue Gene/Q.  Neither an
MPI runtime nor a 32K-core machine is available here, so this subpackage
provides the substitute substrate: a deterministic, single-process **BSP
simulator**.

* :mod:`repro.bsp.engine` runs SPMD *programs* (one Python generator per
  simulated rank) and rendezvouses them at collectives.
* :mod:`repro.bsp.collectives` implements the data semantics of each
  collective (gather, bcast, reduce, all-to-all-v, scan, ...).
* :mod:`repro.bsp.cost_model` prices every superstep with the same
  :math:`\\alpha\\textrm{–}\\beta` / pipelined-collective formulas the paper's
  Chapter 5 uses, so simulated phase breakdowns are directly comparable with
  the paper's analysis.
* :mod:`repro.bsp.network` supplies topology-dependent contention factors
  (5-D torus for the Mira experiments).
* :mod:`repro.bsp.node` models multicore nodes for the shared-memory
  message-combining optimization of §6.1.1.

Algorithms written against :class:`~repro.bsp.engine.Context` look like
mpi4py code with ``yield from`` at communication points::

    def program(ctx, local_keys):
        local_keys = np.sort(local_keys)
        ctx.charge_sort(len(local_keys))
        sample = local_keys[::step]
        gathered = yield from ctx.gather(sample, root=0)
        ...
"""

from repro.bsp.engine import BSPEngine, Context, NodeContext, RunResult
from repro.bsp.machine import MachineModel
from repro.bsp.network import (
    Topology,
    FullyConnected,
    Torus,
    FatTree,
    Dragonfly,
)
from repro.bsp.node import NodeLayout
from repro.bsp.cost_model import CostModel, CommStats
from repro.bsp.trace import Trace, PhaseBreakdown

__all__ = [
    "BSPEngine",
    "Context",
    "NodeContext",
    "RunResult",
    "MachineModel",
    "Topology",
    "FullyConnected",
    "Torus",
    "FatTree",
    "Dragonfly",
    "NodeLayout",
    "CostModel",
    "CommStats",
    "Trace",
    "PhaseBreakdown",
]


def __getattr__(name: str):
    # Backwards compatibility for the package-level preset imports
    # (``from repro.bsp import MIRA_LIKE``); the constants now live in the
    # repro.machines catalog — same lazy shim as repro.bsp.machine.
    from repro.bsp import machine as _machine_module

    if name in _machine_module._LEGACY_PRESETS:
        return getattr(_machine_module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
