"""BSP cost model: prices every collective with the paper's Chapter-5 formulas.

The paper evaluates both *binomial-tree* and *pipelined* collective
algorithms (citing Pjesivac-Grbovic et al. and Thakur & Gropp):

====================  =============================  ==========================
collective            binomial                       pipelined
====================  =============================  ==========================
broadcast(S)          ``(α + Sβ)·log₂p``             ``α·log₂p + 2Sβ``
reduce(S)             ``(α + Sβ + Sγ)·log₂p``        ``α·log₂p + 2Sβ + Sγ``
gather/scatter(T)     —                              ``α·log₂p + Tβ``
all-to-all-v(V)       pairwise: ``α(e−1) + Vβc``     Bruck: ``α⌈log₂e⌉ + (V/2)β·log₂e·c``
====================  =============================  ==========================

``S`` = message bytes, ``T`` = total gathered bytes, ``V`` = max per-endpoint
send+receive volume, ``e`` = number of network endpoints (nodes when the
§6.1.1 message-combining optimization is on, cores otherwise), ``c`` = the
topology's all-to-all contention factor.  Where two algorithms exist the model
takes the cheaper one, which is what a tuned MPI/Charm++ runtime does.

The model also counts messages and bytes so experiments can report, e.g., the
``~cores²`` message-reduction factor of node combining.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bsp.machine import MachineModel
from repro.bsp.node import NodeLayout

__all__ = ["CollectiveCost", "CommStats", "CostModel"]


@dataclass(frozen=True)
class CollectiveCost:
    """Priced outcome of one collective superstep."""

    comm_seconds: float
    compute_seconds: float
    nbytes: int
    messages: int
    endpoints: int
    algorithm: str


@dataclass
class CommStats:
    """Running totals of simulated network activity."""

    collectives: int = 0
    messages: int = 0
    bytes: int = 0
    comm_seconds: float = 0.0
    by_op: dict[str, int] = field(default_factory=dict)

    def record(self, op: str, cost: CollectiveCost) -> None:
        self.collectives += 1
        self.messages += cost.messages
        self.bytes += cost.nbytes
        self.comm_seconds += cost.comm_seconds
        self.by_op[op] = self.by_op.get(op, 0) + 1


def _log2p(p: int) -> float:
    return math.log2(max(2, p))


class CostModel:
    """Prices collectives for a given machine and (optional) node layout."""

    def __init__(
        self,
        machine: MachineModel,
        nprocs: int,
        node_layout: NodeLayout | None = None,
    ) -> None:
        self.machine = machine
        #: Pricing view with every "0 means inherit" fallback applied
        #: (:meth:`MachineModel.resolved` — the one place those rules live).
        self._m = machine.resolved()
        self.nprocs = nprocs
        self.node_layout = node_layout

    # ------------------------------------------------------------------ #
    def endpoints(self, node_combining: bool) -> int:
        """Network endpoints participating in a collective."""
        if node_combining and self.node_layout is not None:
            return self.node_layout.nnodes
        return self.nprocs

    # ------------------------------------------------------------------ #
    def price(
        self,
        op: str,
        *,
        max_bytes: int,
        total_bytes: int,
        node_combining: bool = False,
        scope: str = "global",
        group_size: int | None = None,
    ) -> CollectiveCost:
        """Price one collective.

        Parameters
        ----------
        op:
            Collective name (``'bcast'``, ``'gather'``, ``'alltoallv'``, ...).
        max_bytes:
            Largest per-rank payload (``S`` or ``V`` in the table above).
        total_bytes:
            Sum of all payload bytes (``T``); drives rooted collectives and
            byte accounting.
        node_combining:
            Price the op as if per-node message combining were applied.
        scope:
            ``'global'`` — over the interconnect; ``'node'`` — intra-node
            shared memory (§6.1.1): memcpy-rate bandwidth, negligible
            latency, no topology contention, and zero *network* messages.
        group_size:
            Participant count for node-scoped collectives.
        """
        m = self._m
        if scope == "node":
            if group_size is None:
                raise ValueError("node-scoped pricing needs group_size")
            e = max(1, group_size)
            a, b = m.node_alpha, m.gamma_byte
        elif scope == "global":
            e = self.endpoints(node_combining)
            a, b = m.alpha, m.beta
        else:
            raise ValueError(f"unknown scope {scope!r}")
        lg = _log2p(e)
        S, T = float(max_bytes), float(total_bytes)

        cost = self._price_formulas(op, a, b, e, lg, S, T, scope)
        if scope == "node":
            # Intra-node traffic never reaches the network: report zero
            # network messages/bytes while keeping the modeled time.
            cost = CollectiveCost(
                cost.comm_seconds,
                cost.compute_seconds,
                0,
                0,
                e,
                "shared-memory",
            )
        return cost

    def _price_formulas(
        self,
        op: str,
        a: float,
        b: float,
        e: int,
        lg: float,
        S: float,
        T: float,
        scope: str,
    ) -> CollectiveCost:
        m = self._m

        if op == "barrier":
            return CollectiveCost(a * lg, 0.0, 0, 2 * (e - 1), e, "tree")

        if op in ("bcast", "probe_bcast"):
            binomial = (a + S * b) * lg
            pipelined = a * lg + 2 * S * b
            comm, algo = min((binomial, "binomial"), (pipelined, "pipelined"))
            return CollectiveCost(comm, 0.0, int(S) * (e - 1), e - 1, e, algo)

        if op in ("reduce", "histogram_reduce"):
            binomial = (a + S * b) * lg
            pipelined = a * lg + 2 * S * b
            comm, algo = min((binomial, "binomial"), (pipelined, "pipelined"))
            compute = S * m.gamma_byte * (lg if algo == "binomial" else 1.0)
            return CollectiveCost(comm, compute, int(S) * (e - 1), e - 1, e, algo)

        if op == "allreduce":
            comm = 2.0 * (a * lg + 2 * S * b)
            compute = S * m.gamma_byte
            return CollectiveCost(
                comm, compute, 2 * int(S) * (e - 1), 2 * (e - 1), e, "pipelined"
            )

        if op in ("gather", "gatherv", "scatter", "scatterv", "sample_gather"):
            comm = a * lg + T * b
            return CollectiveCost(comm, 0.0, int(T), e - 1, e, "pipelined-tree")

        if op in ("allgather", "allgatherv"):
            # Ring allgather: e-1 steps, each forwarding one block.
            ring = a * (e - 1) + T * b
            tree = a * lg + T * b * 2
            comm, algo = min((ring, "ring"), (tree, "bcast-tree"))
            return CollectiveCost(comm, 0.0, int(T) * 2, 2 * (e - 1), e, algo)

        if op == "scan":
            comm = a * lg + S * b * lg
            compute = S * m.gamma_byte * lg
            return CollectiveCost(comm, compute, int(S) * (e - 1), e - 1, e, "tree")

        if op in ("alltoall", "alltoallv"):
            c = 1.0 if scope == "node" else m.topology.alltoall_contention(e)
            pairwise = a * max(1, e - 1) + S * b * c
            bruck = a * math.ceil(_log2p(e)) + (S / 2.0) * b * _log2p(e) * c
            comm, algo = min((pairwise, "pairwise"), (bruck, "bruck"))
            messages = (
                e * (e - 1)
                if algo == "pairwise"
                else e * math.ceil(_log2p(e))
            )
            # Local bucket copy in/out of the network buffers.
            compute = 2.0 * S * m.gamma_byte
            return CollectiveCost(comm, compute, int(T), messages, e, algo)

        if op == "exchange":
            # Symmetric pairwise exchange between partner ranks.
            comm = a + S * b
            return CollectiveCost(comm, 0.0, int(T), e, e, "pairwise")

        raise ValueError(f"unknown collective op: {op!r}")
