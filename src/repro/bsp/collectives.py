"""Data semantics of BSP collectives.

The engine (:mod:`repro.bsp.engine`) rendezvouses all ranks at a collective
and hands their payloads to :func:`resolve`, which computes what every rank
receives, plus the byte counts the cost model needs.  Semantics mirror MPI:

=============  ======================================================
op             result at rank ``i``
=============  ======================================================
barrier        ``None``
bcast          root's payload
gather         list of all payloads at root, ``None`` elsewhere
allgather      list of all payloads everywhere
scatter        ``payloads[root][i]``
reduce         combined value at root, ``None`` elsewhere
allreduce      combined value everywhere
scan           inclusive prefix combination of payloads ``0..i``
alltoall       ``[payloads[j][i] for j in range(p)]``
exchange       partner's payload (pairwise, partners must be symmetric)
=============  ======================================================

Reductions support ``'sum'``, ``'min'``, ``'max'`` and operate elementwise on
NumPy arrays or directly on scalars.  Payload sizes are measured with
:func:`sizeof`, which understands NumPy arrays, scalars, strings, bytes and
(recursively) containers.  ``sizeof`` is on the engine's superstep hot path
(every collective sizes every rank's payload), so it dispatches through a
per-type cache with vectorized fast paths for the payload shapes the sort
programs actually send — ndarrays, scalars, and flat homogeneous sequences
of either; :func:`sizeof_reference` keeps the plain recursive walk as the
semantic ground truth the fast path is tested against.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import BSPError, CollectiveMismatchError

__all__ = [
    "sizeof",
    "sizeof_reference",
    "resolve",
    "ResolvedCollective",
    "REDUCERS",
]


def sizeof_reference(obj: Any) -> int:
    """Approximate wire size of a payload in bytes (recursive reference).

    NumPy arrays report their exact buffer size; Python scalars count as 8
    bytes (their natural wire encoding); containers sum their elements.  The
    goal is faithful *relative* accounting for the cost model, not Python
    object-graph memory measurement.

    This is the original, obviously-correct recursive walk.  :func:`sizeof`
    is the production entry point and must agree with it on every payload;
    ``tests/bsp/test_sizeof.py`` enforces the equivalence.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.void):
        # Structured scalar (one record row): exact record bytes, not the
        # generic 8-byte scalar word.
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, dict):
        return sum(sizeof_reference(k) + sizeof_reference(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(sizeof_reference(x) for x in obj)
    # Dataclass-ish objects: count their public attributes.
    if hasattr(obj, "__dict__"):
        return sum(sizeof_reference(v) for v in vars(obj).values())
    return 8


# ------------------------------------------------------------------ #
# Fast-path sizeof: per-type dispatch cache + flat-sequence batching.
# ------------------------------------------------------------------ #
_SCALAR_TYPES = frozenset((bool, int, float, complex))


def _sizeof_none(obj: Any) -> int:
    return 0


def _sizeof_ndarray(obj: np.ndarray) -> int:
    return int(obj.nbytes)


def _sizeof_scalar(obj: Any) -> int:
    return 8


def _sizeof_void(obj: np.void) -> int:
    return int(obj.nbytes)


def _sizeof_buffer(obj: Any) -> int:
    return len(obj)


def _sizeof_str(obj: str) -> int:
    return len(obj.encode())


def _sizeof_dict(obj: dict) -> int:
    return sum(sizeof(k) + sizeof(v) for k, v in obj.items())


def _sizeof_flat_sequence(obj: Any) -> int:
    """Size a list/tuple/set, batching the homogeneous flat shapes.

    The sort programs overwhelmingly send flat sequences — per-destination
    ndarray rows for ``alltoall``, splitter/count vectors as Python lists.
    When every element is the same scalar type the answer is ``8 * len``;
    when every element is an ndarray the buffer sizes sum without any
    per-element dispatch.  Mixed/nested sequences fall back to the generic
    per-element walk.
    """
    if not obj:
        return 0
    kinds = {type(x) for x in obj}
    if len(kinds) == 1:
        kind = next(iter(kinds))
        if kind in _SCALAR_TYPES:
            return 8 * len(obj)
        if kind is np.ndarray:
            return int(sum(x.nbytes for x in obj))
        if issubclass(kind, np.void):
            return int(sum(x.nbytes for x in obj))
        if issubclass(kind, np.generic):
            return 8 * len(obj)
    return sum(sizeof(x) for x in obj)


#: Exact-type dispatch table.  Seeded with the builtin payload types; other
#: types are resolved once through the isinstance ladder of
#: :func:`sizeof_reference` and then memoized, so repeated payloads of the
#: same type (the common case inside a superstep sweep) never re-walk it.
_SIZEOF_DISPATCH: dict[type, Callable[[Any], int]] = {
    type(None): _sizeof_none,
    np.ndarray: _sizeof_ndarray,
    np.void: _sizeof_void,
    bool: _sizeof_scalar,
    int: _sizeof_scalar,
    float: _sizeof_scalar,
    complex: _sizeof_scalar,
    bytes: _sizeof_buffer,
    bytearray: _sizeof_buffer,
    memoryview: _sizeof_buffer,
    str: _sizeof_str,
    dict: _sizeof_dict,
    list: _sizeof_flat_sequence,
    tuple: _sizeof_flat_sequence,
    set: _sizeof_flat_sequence,
    frozenset: _sizeof_flat_sequence,
}


def _resolve_handler(kind: type) -> Callable[[Any], int]:
    """Mirror ``sizeof_reference``'s isinstance ladder, once per type."""
    if issubclass(kind, np.ndarray):
        return _sizeof_ndarray
    if issubclass(kind, np.void):
        return _sizeof_void
    if issubclass(kind, (bool, int, float, complex, np.generic)):
        return _sizeof_scalar
    if issubclass(kind, (bytes, bytearray, memoryview)):
        return _sizeof_buffer
    if issubclass(kind, str):
        return _sizeof_str
    if issubclass(kind, dict):
        return _sizeof_dict
    if issubclass(kind, (list, tuple, set, frozenset)):
        return _sizeof_flat_sequence
    return _sizeof_attrs_or_opaque


def _sizeof_attrs_or_opaque(obj: Any) -> int:
    # Dataclass-ish objects count their attributes; instances without a
    # __dict__ (pure-__slots__ classes, opaque extension types) count as one
    # 8-byte word, matching sizeof_reference's terminal case.
    try:
        attrs = vars(obj)
    except TypeError:
        return 8
    return sum(sizeof(v) for v in attrs.values())


def sizeof(obj: Any) -> int:
    """Approximate wire size of a payload in bytes (cached fast path).

    Semantics are exactly those of :func:`sizeof_reference`; the dispatch
    cache and the flat-sequence batching only change the constant factor.
    """
    handler = _SIZEOF_DISPATCH.get(type(obj))
    if handler is None:
        handler = _resolve_handler(type(obj))
        _SIZEOF_DISPATCH[type(obj)] = handler
    return handler(obj)


def _reduce_pair(a: Any, b: Any, op: str) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if op == "sum":
            return np.add(a, b)
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
    else:
        if op == "sum":
            return a + b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
    raise BSPError(f"unsupported reduction op: {op!r}")


REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: _reduce_pair(a, b, "sum"),
    "min": lambda a, b: _reduce_pair(a, b, "min"),
    "max": lambda a, b: _reduce_pair(a, b, "max"),
}


def _combine(payloads: Sequence[Any], op: str) -> Any:
    if op not in REDUCERS:
        raise BSPError(f"unsupported reduction op: {op!r}")
    reducer = REDUCERS[op]
    acc = payloads[0]
    if isinstance(acc, np.ndarray):
        acc = acc.copy()
    for value in payloads[1:]:
        acc = reducer(acc, value)
    return acc


class ResolvedCollective:
    """Per-rank results plus byte accounting for one collective."""

    __slots__ = ("results", "max_bytes", "total_bytes")

    def __init__(self, results: list[Any], max_bytes: int, total_bytes: int):
        self.results = results
        self.max_bytes = max_bytes
        self.total_bytes = total_bytes


def resolve(
    op: str,
    payloads: list[Any],
    root: int,
    reduce_op: str = "sum",
    partners: list[int] | None = None,
) -> ResolvedCollective:
    """Compute every rank's result for one collective rendezvous."""
    p = len(payloads)

    if op == "barrier":
        return ResolvedCollective([None] * p, 0, 0)

    if op == "bcast":
        value = payloads[root]
        size = sizeof(value)
        return ResolvedCollective([value] * p, size, size * max(0, p - 1))

    if op == "scatter":
        chunks = payloads[root]
        if chunks is None or len(chunks) != p:
            raise BSPError(
                f"scatter root payload must be a length-{p} sequence, "
                f"got {type(chunks).__name__}"
                + (f" of length {len(chunks)}" if hasattr(chunks, "__len__") else "")
            )
        chunk_total = sum(sizeof(c) for c in chunks)
        return ResolvedCollective(list(chunks), chunk_total, chunk_total)

    if op in ("alltoall", "alltoallv"):
        for r, row in enumerate(payloads):
            if row is None or len(row) != p:
                raise BSPError(
                    f"alltoall payload at rank {r} must be a length-{p} "
                    f"sequence of per-destination items"
                )
        results = [[payloads[src][dst] for src in range(p)] for dst in range(p)]
        # Size every (src, dst) element exactly once: row sums are the send
        # volumes, column sums the receive volumes.
        elem_bytes = np.array(
            [[sizeof(x) for x in row] for row in payloads], dtype=np.int64
        )
        send_bytes = elem_bytes.sum(axis=1)
        recv_bytes = elem_bytes.sum(axis=0)
        vmax = int((send_bytes + recv_bytes).max()) if p else 0
        return ResolvedCollective(results, vmax, int(send_bytes.sum()))

    # The remaining ops all charge by per-rank payload sizes.
    sizes = [sizeof(x) for x in payloads]
    total = sum(sizes)
    largest = max(sizes) if sizes else 0

    if op == "gather":
        results: list[Any] = [None] * p
        results[root] = list(payloads)
        return ResolvedCollective(results, total, total)

    if op == "allgather":
        everywhere = list(payloads)
        return ResolvedCollective([everywhere] * p, total, total)

    if op == "reduce":
        combined = _combine(payloads, reduce_op)
        results = [None] * p
        results[root] = combined
        return ResolvedCollective(results, largest, total)

    if op == "allreduce":
        combined = _combine(payloads, reduce_op)
        return ResolvedCollective([combined] * p, largest, total)

    if op == "scan":
        results = []
        acc: Any = None
        for i, value in enumerate(payloads):
            if i == 0:
                acc = value.copy() if isinstance(value, np.ndarray) else value
            else:
                acc = REDUCERS[reduce_op](acc, value)
            results.append(acc.copy() if isinstance(acc, np.ndarray) else acc)
        return ResolvedCollective(results, largest, total)

    if op == "exchange":
        if partners is None:
            raise BSPError("exchange requires a partners list")
        for rank, partner in enumerate(partners):
            if not 0 <= partner < p:
                raise CollectiveMismatchError(
                    f"rank {rank} named invalid exchange partner {partner}"
                )
            if partners[partner] != rank:
                raise CollectiveMismatchError(
                    f"asymmetric exchange: rank {rank} -> {partner} but "
                    f"rank {partner} -> {partners[partner]}"
                )
        results = [payloads[partners[rank]] for rank in range(p)]
        return ResolvedCollective(results, largest, total)

    raise BSPError(f"unknown collective op: {op!r}")
