"""Data semantics of BSP collectives.

The engine (:mod:`repro.bsp.engine`) rendezvouses all ranks at a collective
and hands their payloads to :func:`resolve`, which computes what every rank
receives, plus the byte counts the cost model needs.  Semantics mirror MPI:

=============  ======================================================
op             result at rank ``i``
=============  ======================================================
barrier        ``None``
bcast          root's payload
gather         list of all payloads at root, ``None`` elsewhere
allgather      list of all payloads everywhere
scatter        ``payloads[root][i]``
reduce         combined value at root, ``None`` elsewhere
allreduce      combined value everywhere
scan           inclusive prefix combination of payloads ``0..i``
alltoall       ``[payloads[j][i] for j in range(p)]``
exchange       partner's payload (pairwise, partners must be symmetric)
=============  ======================================================

Reductions support ``'sum'``, ``'min'``, ``'max'`` and operate elementwise on
NumPy arrays or directly on scalars.  Payload sizes are measured with
:func:`sizeof`, which understands NumPy arrays, scalars, strings, bytes and
(recursively) containers.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import BSPError, CollectiveMismatchError

__all__ = ["sizeof", "resolve", "ResolvedCollective", "REDUCERS"]


def sizeof(obj: Any) -> int:
    """Approximate wire size of a payload in bytes.

    NumPy arrays report their exact buffer size; Python scalars count as 8
    bytes (their natural wire encoding); containers sum their elements.  The
    goal is faithful *relative* accounting for the cost model, not Python
    object-graph memory measurement.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, dict):
        return sum(sizeof(k) + sizeof(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(sizeof(x) for x in obj)
    # Dataclass-ish objects: count their public attributes.
    if hasattr(obj, "__dict__"):
        return sum(sizeof(v) for v in vars(obj).values())
    return 8


def _reduce_pair(a: Any, b: Any, op: str) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if op == "sum":
            return np.add(a, b)
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
    else:
        if op == "sum":
            return a + b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
    raise BSPError(f"unsupported reduction op: {op!r}")


REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: _reduce_pair(a, b, "sum"),
    "min": lambda a, b: _reduce_pair(a, b, "min"),
    "max": lambda a, b: _reduce_pair(a, b, "max"),
}


def _combine(payloads: Sequence[Any], op: str) -> Any:
    if op not in REDUCERS:
        raise BSPError(f"unsupported reduction op: {op!r}")
    reducer = REDUCERS[op]
    acc = payloads[0]
    if isinstance(acc, np.ndarray):
        acc = acc.copy()
    for value in payloads[1:]:
        acc = reducer(acc, value)
    return acc


class ResolvedCollective:
    """Per-rank results plus byte accounting for one collective."""

    __slots__ = ("results", "max_bytes", "total_bytes")

    def __init__(self, results: list[Any], max_bytes: int, total_bytes: int):
        self.results = results
        self.max_bytes = max_bytes
        self.total_bytes = total_bytes


def resolve(
    op: str,
    payloads: list[Any],
    root: int,
    reduce_op: str = "sum",
    partners: list[int] | None = None,
) -> ResolvedCollective:
    """Compute every rank's result for one collective rendezvous."""
    p = len(payloads)
    sizes = [sizeof(x) for x in payloads]
    total = sum(sizes)
    largest = max(sizes) if sizes else 0

    if op == "barrier":
        return ResolvedCollective([None] * p, 0, 0)

    if op == "bcast":
        value = payloads[root]
        size = sizes[root]
        return ResolvedCollective([value] * p, size, size * max(0, p - 1))

    if op == "gather":
        results: list[Any] = [None] * p
        results[root] = list(payloads)
        return ResolvedCollective(results, total, total)

    if op == "allgather":
        everywhere = list(payloads)
        return ResolvedCollective([everywhere] * p, total, total)

    if op == "scatter":
        chunks = payloads[root]
        if chunks is None or len(chunks) != p:
            raise BSPError(
                f"scatter root payload must be a length-{p} sequence, "
                f"got {type(chunks).__name__}"
                + (f" of length {len(chunks)}" if hasattr(chunks, "__len__") else "")
            )
        chunk_sizes = [sizeof(c) for c in chunks]
        return ResolvedCollective(
            list(chunks), sum(chunk_sizes), sum(chunk_sizes)
        )

    if op == "reduce":
        combined = _combine(payloads, reduce_op)
        results = [None] * p
        results[root] = combined
        return ResolvedCollective(results, largest, total)

    if op == "allreduce":
        combined = _combine(payloads, reduce_op)
        return ResolvedCollective([combined] * p, largest, total)

    if op == "scan":
        results = []
        acc: Any = None
        for i, value in enumerate(payloads):
            if i == 0:
                acc = value.copy() if isinstance(value, np.ndarray) else value
            else:
                acc = REDUCERS[reduce_op](acc, value)
            results.append(acc.copy() if isinstance(acc, np.ndarray) else acc)
        return ResolvedCollective(results, largest, total)

    if op in ("alltoall", "alltoallv"):
        for r, row in enumerate(payloads):
            if row is None or len(row) != p:
                raise BSPError(
                    f"alltoall payload at rank {r} must be a length-{p} "
                    f"sequence of per-destination items"
                )
        results = [[payloads[src][dst] for src in range(p)] for dst in range(p)]
        send_bytes = [sum(sizeof(x) for x in row) for row in payloads]
        recv_bytes = [sum(sizeof(x) for x in col) for col in results]
        vmax = max(
            (s + r for s, r in zip(send_bytes, recv_bytes)), default=0
        )
        return ResolvedCollective(results, vmax, sum(send_bytes))

    if op == "exchange":
        if partners is None:
            raise BSPError("exchange requires a partners list")
        for rank, partner in enumerate(partners):
            if not 0 <= partner < p:
                raise CollectiveMismatchError(
                    f"rank {rank} named invalid exchange partner {partner}"
                )
            if partners[partner] != rank:
                raise CollectiveMismatchError(
                    f"asymmetric exchange: rank {rank} -> {partner} but "
                    f"rank {partner} -> {partners[partner]}"
                )
        results = [payloads[partners[rank]] for rank in range(p)]
        return ResolvedCollective(results, largest, total)

    raise BSPError(f"unknown collective op: {op!r}")
