"""The BSP SPMD engine.

An algorithm is expressed as a *program*: a generator function whose first
argument is a :class:`Context` and which uses ``yield from`` at every
communication point::

    def program(ctx, local_keys):
        with ctx.phase("local sort"):
            local_keys = np.sort(local_keys)
            ctx.charge_sort(len(local_keys))
        sample = local_keys[:: max(1, len(local_keys) // 4)]
        with ctx.phase("splitting"):
            gathered = yield from ctx.gather(sample, root=0)
        ...
        return my_final_bucket

:class:`BSPEngine` instantiates one generator per simulated rank and advances
them in lockstep.  When every live rank has yielded its next collective
request, the engine checks SPMD consistency (same op, same root — the
simulated analogue of MPI's matching rules), resolves the data movement with
:mod:`repro.bsp.collectives`, prices the superstep with
:mod:`repro.bsp.cost_model`, and resumes each rank with its result.

Computation between collectives is *charged* explicitly (``ctx.charge_sort``,
``ctx.charge_compare`` ...) against the machine model, following the paper's
convention of counting key comparisons (``T_I``) and bytes moved.  Charged
time accumulates per rank; at each rendezvous the superstep's compute cost is
the *maximum* over ranks, exactly as in Valiant's BSP accounting.

Determinism: rank programs run in rank order within each scheduling sweep and
all randomness comes from caller-provided seeded generators, so a run is a
pure function of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Mapping, Sequence

from repro.bsp import collectives as coll
from repro.bsp.cost_model import CommStats, CostModel
from repro.bsp.machine import MachineModel
from repro.bsp.node import NodeLayout
from repro.bsp.trace import SuperstepRecord, Trace
from repro.errors import BSPError, CollectiveMismatchError, DeadlockError

__all__ = [
    "Context",
    "NodeContext",
    "BSPEngine",
    "RunResult",
    "Program",
    "RankYield",
    "SuperstepResolver",
    "default_node_layout",
]

#: Type of an SPMD program: a generator function taking (ctx, *args).
Program = Callable[..., Generator[Any, Any, Any]]

_DEFAULT_PHASE = "unlabeled"


@dataclass
class _Call:
    """A collective request yielded by a rank program."""

    op: str
    payload: Any = None
    root: int = 0
    reduce_op: str = "sum"
    partner: int = -1
    node_combining: bool = False
    #: Rendezvous group: ``("global",)`` or ``("node", node_id)``.
    group: tuple = ("global",)


class _PhaseScope:
    """Context manager produced by :meth:`Context.phase`."""

    __slots__ = ("_ctx", "_name", "_prev")

    def __init__(self, ctx: "Context", name: str) -> None:
        self._ctx = ctx
        self._name = name
        self._prev = ""

    def __enter__(self) -> "_PhaseScope":
        self._prev = self._ctx._phase
        self._ctx._phase = self._name
        return self

    def __exit__(self, *exc: object) -> None:
        self._ctx._phase = self._prev


class Context:
    """Per-rank handle a program uses for communication and cost charging."""

    _group: tuple = ("global",)

    def __init__(self, engine: "BSPEngine", rank: int) -> None:
        self._engine = engine
        self.rank = rank
        self.nprocs = engine.nprocs
        self._phase = _DEFAULT_PHASE
        self._pending_compute = 0.0  # seconds since last rendezvous
        self._pending_by_phase: dict[str, float] = {}

    def node_comm(self) -> "NodeContext":
        """A sub-communicator over this rank's *node* (§6.1 nodegroups).

        Collectives on the returned context rendezvous only with the other
        ranks of the same physical node and are priced as shared-memory
        operations (no network messages).  Requires the engine to have a
        :class:`~repro.bsp.node.NodeLayout`.
        """
        return NodeContext(self)

    # ------------------------------------------------------------- misc
    @property
    def machine(self) -> MachineModel:
        """The simulated machine description."""
        return self._engine.machine

    @property
    def node_layout(self) -> NodeLayout | None:
        """Node layout, if the engine was configured with one."""
        return self._engine.node_layout

    @property
    def current_phase(self) -> str:
        return self._phase

    def phase(self, name: str) -> _PhaseScope:
        """Label subsequent charges/collectives with ``name`` (for Fig 6.1
        style breakdowns)."""
        return _PhaseScope(self, name)

    # -------------------------------------------------------- cost charging
    def charge_seconds(self, seconds: float) -> None:
        """Charge raw computation seconds to this rank's clock."""
        if seconds < 0:
            raise BSPError("cannot charge negative time")
        self._pending_compute += seconds
        self._pending_by_phase[self._phase] = (
            self._pending_by_phase.get(self._phase, 0.0) + seconds
        )

    def charge_compare(self, comparisons: float) -> None:
        """Charge ``comparisons`` key comparisons."""
        self.charge_seconds(self.machine.compare_seconds(comparisons))

    def charge_bytes(self, nbytes: float) -> None:
        """Charge local memory traffic of ``nbytes`` bytes."""
        self.charge_seconds(self.machine.copy_seconds(nbytes))

    def charge_sort(self, n: int, *, key_bytes: int = 8) -> None:
        """Charge an ``n log n`` comparison sort plus its memory traffic."""
        import math

        if n > 1:
            self.charge_compare(n * math.log2(n))
            self.charge_bytes(2.0 * n * key_bytes)

    def charge_merge(self, total: int, ways: int, *, key_bytes: int = 8) -> None:
        """Charge a ``ways``-way merge of ``total`` total elements."""
        import math

        if total > 0 and ways > 1:
            self.charge_compare(total * math.log2(ways))
            self.charge_bytes(2.0 * total * key_bytes)

    def charge_binary_searches(self, queries: int, haystack: int) -> None:
        """Charge ``queries`` binary searches over ``haystack`` sorted keys."""
        import math

        if queries > 0:
            self.charge_compare(queries * math.log2(max(2, haystack)))

    # --------------------------------------------------------- collectives
    # Each returns a generator; invoke with ``yield from``.
    def barrier(self) -> Generator[Any, Any, None]:
        yield _Call("barrier", group=self._group)

    def bcast(self, value: Any = None, root: int = 0) -> Generator[Any, Any, Any]:
        result = yield _Call("bcast", value, root, group=self._group)
        return result

    def gather(self, value: Any, root: int = 0) -> Generator[Any, Any, Any]:
        result = yield _Call("gather", value, root, group=self._group)
        return result

    def allgather(self, value: Any) -> Generator[Any, Any, list[Any]]:
        result = yield _Call("allgather", value, group=self._group)
        return result

    def scatter(
        self, values: Sequence[Any] | None, root: int = 0
    ) -> Generator[Any, Any, Any]:
        result = yield _Call("scatter", values, root, group=self._group)
        return result

    def reduce(
        self, value: Any, op: str = "sum", root: int = 0
    ) -> Generator[Any, Any, Any]:
        result = yield _Call("reduce", value, root, reduce_op=op, group=self._group)
        return result

    def allreduce(self, value: Any, op: str = "sum") -> Generator[Any, Any, Any]:
        result = yield _Call("allreduce", value, reduce_op=op, group=self._group)
        return result

    def scan(self, value: Any, op: str = "sum") -> Generator[Any, Any, Any]:
        result = yield _Call("scan", value, reduce_op=op, group=self._group)
        return result

    def alltoall(
        self, values: Sequence[Any], node_combining: bool = False
    ) -> Generator[Any, Any, list[Any]]:
        """Personalized all-to-all: ``values[j]`` goes to rank ``j``.

        With ``node_combining=True`` the superstep is *priced* as if per-node
        message combining (§6.1.1) were applied; data semantics are identical.
        """
        result = yield _Call(
            "alltoallv", values, node_combining=node_combining, group=self._group
        )
        return result

    def exchange(self, partner: int, value: Any) -> Generator[Any, Any, Any]:
        """Symmetric pairwise exchange with ``partner`` (for bitonic sort)."""
        result = yield _Call("exchange", value, partner=partner, group=self._group)
        return result

    # ------------------------------------------------------------ internal
    def _drain_compute(self) -> tuple[float, dict[str, float]]:
        pending = self._pending_compute
        by_phase = self._pending_by_phase
        self._pending_compute = 0.0
        self._pending_by_phase = {}
        return pending, by_phase


class NodeContext(Context):
    """Sub-communicator over one node's ranks (shared-memory collectives).

    Exposes the same collective API as :class:`Context` but with
    ``self.rank`` / ``self.nprocs`` relative to the node, rendezvousing only
    with the node's other ranks.  Computation charges and phase labels are
    forwarded to the parent (global) context, so cost accounting stays
    unified.
    """

    def __init__(self, parent: Context) -> None:
        layout = parent._engine.node_layout
        if layout is None:
            raise BSPError(
                "node_comm() requires the engine to be configured with a "
                "NodeLayout (machine.cores_per_node > 1 or explicit layout)"
            )
        self._engine = parent._engine
        self._parent = parent
        self.node = layout.node_of(parent.rank)
        ranks = layout.ranks_on_node(self.node)
        self.rank = parent.rank - ranks.start
        self.nprocs = len(ranks)
        self.global_rank = parent.rank
        self._group = ("node", self.node)

    # Charges and phases belong to the (single, global) per-rank context.
    def charge_seconds(self, seconds: float) -> None:
        self._parent.charge_seconds(seconds)

    def phase(self, name: str) -> _PhaseScope:
        return self._parent.phase(name)

    @property
    def current_phase(self) -> str:
        return self._parent._phase

    def node_comm(self) -> "NodeContext":
        return self


@dataclass
class RunResult:
    """Outcome of one :meth:`BSPEngine.run` (or any runtime backend)."""

    returns: list[Any]
    trace: Trace
    stats: CommStats
    makespan: float
    #: Real wall-clock measurements attached by the runtime layer
    #: (:class:`repro.runtime.Measured`), or None for a bare engine run.
    #: Modeled fields above are bit-identical across backends; this block
    #: is the only backend-dependent part of a result.
    measured: Any = None

    def breakdown(self):
        """Phase breakdown of the modeled execution time."""
        return self.trace.breakdown()


def default_node_layout(
    machine: MachineModel, nprocs: int, node_layout: NodeLayout | None = None
) -> NodeLayout | None:
    """The engine's node-layout rule, shared by every execution backend.

    An explicit layout wins; otherwise a multicore machine gets the
    block-wise :class:`NodeLayout` and a single-core machine gets none.
    """
    if node_layout is None and machine.cores_per_node > 1:
        return NodeLayout(nprocs, machine.cores_per_node)
    return node_layout


@dataclass
class RankYield:
    """One rank's contribution to a scheduling sweep.

    Captured at the moment the rank's generator yields: the collective
    request itself, the phase label active at the yield, and the compute
    charged since the previous rendezvous.  :class:`SuperstepResolver`
    consumes these — the in-process engine builds them from its
    :class:`Context` objects, the process backend's broker from worker
    messages, and the resolution is bit-identical either way.
    """

    call: _Call
    phase: str = _DEFAULT_PHASE
    compute: float = 0.0
    by_phase: dict[str, float] = field(default_factory=dict)


class SuperstepResolver:
    """The rendezvous core shared by every execution backend.

    Given one :class:`RankYield` per waiting rank, the resolver groups the
    requests, enforces the SPMD matching rules (raising
    :class:`CollectiveMismatchError` / :class:`DeadlockError` with the
    same messages regardless of backend), resolves the data movement,
    prices the superstep, and accumulates the trace and comm stats.
    :class:`BSPEngine` drives it in-process; the process backend's broker
    drives it from worker messages — modeled accounting cannot drift
    between the two because there is only one implementation.
    """

    def __init__(
        self,
        cost_model: CostModel,
        node_layout: NodeLayout | None,
        nprocs: int,
        trace_sink: Any = None,
    ) -> None:
        self.cost_model = cost_model
        self.node_layout = node_layout
        self.nprocs = nprocs
        self.trace = Trace()
        self.stats = CommStats()
        self.step = 0
        self.trace_sink = trace_sink
        self._span_clock = 0.0
        if trace_sink is not None:
            # Bound once: the per-record emission path must not pay an
            # import per superstep (and stays entirely off when no sink).
            from repro.telemetry.adapters import emit_superstep_spans

            self._emit_spans = emit_superstep_spans

    def _record(self, record: SuperstepRecord) -> None:
        """Append one superstep record, mirroring it to the span sink."""
        self.trace.append(record)
        if self.trace_sink is not None:
            self._span_clock = self._emit_spans(
                self.trace_sink, record, self._span_clock
            )

    # ------------------------------------------------------------------ #
    def resolve_sweep(
        self,
        yields: Mapping[int, RankYield],
        finished: Sequence[int],
    ) -> dict[int, Any]:
        """Resolve one scheduling sweep; returns each rank's resume value.

        ``yields`` maps every *waiting* rank to its request (iterated in
        ascending rank order); ``finished`` lists ranks whose programs
        have already returned (they participate only in the deadlock
        check).
        """
        active = sorted(yields)
        step = self.step

        # --- group the rendezvous ----------------------------------
        groups: dict[tuple, list[int]] = {}
        for r in active:
            groups.setdefault(yields[r].call.group, []).append(r)
        if ("global",) in groups:
            if len(groups) > 1:
                other = next(g for g in groups if g != ("global",))
                err = CollectiveMismatchError(
                    f"superstep {step}: ranks {groups[('global',)][:4]} "
                    f"issued a global collective while ranks "
                    f"{groups[other][:4]} issued a {other} collective"
                )
                err.superstep = step
                err.ranks = tuple(sorted(groups[("global",)] + groups[other]))
                raise err
            if finished:
                stalled = groups[("global",)]
                err = DeadlockError(
                    f"superstep {step}: ranks {sorted(finished)[:8]} "
                    f"finished while ranks {stalled[:8]} wait on "
                    f"'{yields[stalled[0]].call.op}' — program is not SPMD"
                )
                err.superstep = step
                err.finished_ranks = tuple(sorted(finished))
                err.stuck_ranks = tuple(stalled)
                raise err
        else:
            # All node-scoped: every node group must be complete.
            layout = self.node_layout
            for gkey, members in groups.items():
                expected = list(layout.ranks_on_node(gkey[1]))
                if members != expected:
                    err = DeadlockError(
                        f"superstep {step}: node {gkey[1]} collective has "
                        f"participants {members} but the node hosts ranks "
                        f"{expected}"
                    )
                    err.superstep = step
                    err.stuck_ranks = tuple(members)
                    raise err

        # --- resolve each group independently -----------------------
        # Node groups on different nodes run concurrently: a sweep of
        # node collectives contributes the MAX group cost to the
        # makespan (one aggregated record), while the (single) global
        # group is recorded as-is.
        sweep_comm = 0.0
        sweep_compute = 0.0
        sweep_phases: dict[str, float] = {}
        sweep_op = ""
        sweep_phase = _DEFAULT_PHASE
        sweep_endpoints = 0
        results: dict[int, Any] = {}
        for gkey in sorted(groups):
            members = groups[gkey]
            first = yields[members[0]].call
            for r in members:
                call = yields[r].call
                if call.op != first.op or call.root != first.root or (
                    call.reduce_op != first.reduce_op
                ):
                    disagreeing = sorted(
                        m for m in members
                        if yields[m].call.op != first.op
                        or yields[m].call.root != first.root
                        or yields[m].call.reduce_op != first.reduce_op
                    )
                    err = CollectiveMismatchError(
                        f"superstep {step} {gkey}: rank {members[0]} "
                        f"called '{first.op}' (root={first.root}) but "
                        f"rank {r} called '{call.op}' (root={call.root}); "
                        f"disagreeing ranks {disagreeing[:8]}"
                    )
                    err.superstep = step
                    err.ranks = tuple(disagreeing)
                    raise err
            if first.op == "exchange" and gkey != ("global",):
                raise CollectiveMismatchError(
                    "pairwise exchange is only supported on the global "
                    "communicator"
                )
            partners = (
                [yields[r].call.partner for r in members]
                if first.op == "exchange"
                else None
            )
            resolved = coll.resolve(
                first.op,
                [yields[r].call.payload for r in members],
                first.root,
                reduce_op=first.reduce_op,
                partners=partners,
            )
            scope = "global" if gkey == ("global",) else "node"
            cost = self.cost_model.price(
                first.op,
                max_bytes=resolved.max_bytes,
                total_bytes=resolved.total_bytes,
                node_combining=first.node_combining,
                scope=scope,
                group_size=len(members),
            )
            self.stats.record(first.op, cost)

            # Critical-path compute over this group's members.
            max_compute = 0.0
            max_phases: dict[str, float] = {}
            for r in members:
                if yields[r].compute > max_compute:
                    max_compute = yields[r].compute
                    max_phases = yields[r].by_phase

            group_comm = cost.comm_seconds + cost.compute_seconds
            if scope == "global":
                self._record(
                    SuperstepRecord(
                        index=step,
                        op=first.op,
                        phase=yields[members[0]].phase,
                        compute_by_phase=max_phases,
                        comm_seconds=group_comm,
                        nbytes=cost.nbytes,
                        messages=cost.messages,
                        endpoints=cost.endpoints,
                    )
                )
            elif group_comm + max_compute > sweep_comm + sweep_compute:
                sweep_comm = group_comm
                sweep_compute = max_compute
                sweep_phases = max_phases
                sweep_op = f"node:{first.op}"
                sweep_phase = yields[members[0]].phase
                sweep_endpoints = cost.endpoints

            for i, r in enumerate(members):
                results[r] = resolved.results[i]

        if sweep_op:
            self._record(
                SuperstepRecord(
                    index=step,
                    op=sweep_op,
                    phase=sweep_phase,
                    compute_by_phase=sweep_phases,
                    comm_seconds=sweep_comm,
                    nbytes=0,
                    messages=0,
                    endpoints=sweep_endpoints,
                )
            )
        self.step += 1
        return results

    # ------------------------------------------------------------------ #
    def record_final(
        self,
        drains: Sequence[tuple[float, dict[str, float]]],
        fallback_phase: str = _DEFAULT_PHASE,
    ) -> None:
        """Record trailing computation after the last collective.

        ``drains`` holds every rank's final ``(compute, by_phase)`` drain
        in rank order; ``fallback_phase`` labels the record when no
        compute was charged anywhere (rank 0's final phase).
        """
        max_compute = 0.0
        max_phases: dict[str, float] = {}
        for pending, by_phase in drains:
            if pending > max_compute:
                max_compute, max_phases = pending, by_phase
        if max_compute > 0.0:
            if max_phases:
                phase = max(max_phases.items(), key=lambda kv: kv[1])[0]
            else:
                phase = fallback_phase
            self._record(
                SuperstepRecord(
                    index=self.step,
                    op="__final__",
                    phase=phase,
                    compute_by_phase=max_phases,
                    comm_seconds=0.0,
                    nbytes=0,
                    messages=0,
                    endpoints=self.nprocs,
                )
            )

    def result(self, returns: list[Any]) -> RunResult:
        """Package the accumulated trace/stats into a :class:`RunResult`."""
        if self.trace_sink is not None:
            from repro.telemetry.adapters import emit_run_span

            emit_run_span(
                self.trace_sink, self.trace.makespan, len(self.trace)
            )
        return RunResult(
            returns=returns,
            trace=self.trace,
            stats=self.stats,
            makespan=self.trace.makespan,
        )


class BSPEngine:
    """Runs SPMD programs over ``nprocs`` simulated ranks."""

    def __init__(
        self,
        nprocs: int,
        machine: MachineModel | None = None,
        node_layout: NodeLayout | None = None,
    ) -> None:
        if nprocs < 1:
            raise BSPError(f"need at least one rank, got {nprocs}")
        self.nprocs = nprocs
        if machine is None:
            # Lazy import: the registry layer sits above the BSP substrate.
            from repro.machines import get_machine

            machine = get_machine("laptop")
        self.machine = machine
        self.node_layout = default_node_layout(self.machine, nprocs, node_layout)
        self.cost_model = CostModel(self.machine, nprocs, self.node_layout)

    # ------------------------------------------------------------------ #
    def run(
        self,
        program: Program,
        rank_args: Sequence[tuple] | None = None,
        trace_sink: Any = None,
        **shared_kwargs: Any,
    ) -> RunResult:
        """Execute ``program`` on every rank and return the joint result.

        Parameters
        ----------
        program:
            Generator function ``program(ctx, *args, **shared_kwargs)``.
        rank_args:
            Optional per-rank positional arguments (length ``nprocs``).
        trace_sink:
            Optional :class:`~repro.telemetry.TraceSink` receiving
            modeled superstep/phase spans as they resolve.  ``None``
            (the default) records nothing and allocates nothing.
        shared_kwargs:
            Keyword arguments passed identically to every rank.
        """
        p = self.nprocs
        if rank_args is None:
            rank_args = [()] * p
        if len(rank_args) != p:
            raise BSPError(
                f"rank_args has length {len(rank_args)}, expected {p}"
            )

        contexts = [Context(self, r) for r in range(p)]
        gens: list[Iterator[Any] | None] = []
        for r in range(p):
            gen = program(contexts[r], *rank_args[r], **shared_kwargs)
            if not hasattr(gen, "send"):
                raise BSPError(
                    "program must be a generator function (use 'yield from' "
                    "for collectives); got a plain function"
                )
            gens.append(gen)

        returns: list[Any] = [None] * p
        resume: list[Any] = [None] * p
        resolver = SuperstepResolver(
            self.cost_model, self.node_layout, p, trace_sink=trace_sink
        )

        # Ranks whose generators are still running.  The scheduling sweep
        # walks only this list, so ranks that returned early are never
        # re-scanned superstep after superstep (at large p the sweeps
        # dominate engine overhead).
        active: list[int] = list(range(p))
        finished: list[int] = []

        while active:
            yields: dict[int, RankYield] = {}
            waiting: list[int] = []
            for r in active:
                try:
                    request = gens[r].send(resume[r])
                except StopIteration as stop:
                    returns[r] = stop.value
                    gens[r] = None
                    finished.append(r)
                    continue
                if not isinstance(request, _Call):
                    raise BSPError(
                        f"rank {r} yielded {type(request).__name__}; programs "
                        "must only 'yield from' Context collectives"
                    )
                ctx = contexts[r]
                pending, by_phase = ctx._drain_compute()
                yields[r] = RankYield(request, ctx._phase, pending, by_phase)
                waiting.append(r)
                resume[r] = None
            active = waiting

            if not active:
                break

            for r, value in resolver.resolve_sweep(yields, finished).items():
                resume[r] = value

        # Trailing computation after the last collective.
        resolver.record_final(
            [ctx._drain_compute() for ctx in contexts],
            fallback_phase=contexts[0]._phase if contexts else _DEFAULT_PHASE,
        )
        return resolver.result(returns)
