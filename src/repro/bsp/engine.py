"""The BSP SPMD engine.

An algorithm is expressed as a *program*: a generator function whose first
argument is a :class:`Context` and which uses ``yield from`` at every
communication point::

    def program(ctx, local_keys):
        with ctx.phase("local sort"):
            local_keys = np.sort(local_keys)
            ctx.charge_sort(len(local_keys))
        sample = local_keys[:: max(1, len(local_keys) // 4)]
        with ctx.phase("splitting"):
            gathered = yield from ctx.gather(sample, root=0)
        ...
        return my_final_bucket

:class:`BSPEngine` instantiates one generator per simulated rank and advances
them in lockstep.  When every live rank has yielded its next collective
request, the engine checks SPMD consistency (same op, same root — the
simulated analogue of MPI's matching rules), resolves the data movement with
:mod:`repro.bsp.collectives`, prices the superstep with
:mod:`repro.bsp.cost_model`, and resumes each rank with its result.

Computation between collectives is *charged* explicitly (``ctx.charge_sort``,
``ctx.charge_compare`` ...) against the machine model, following the paper's
convention of counting key comparisons (``T_I``) and bytes moved.  Charged
time accumulates per rank; at each rendezvous the superstep's compute cost is
the *maximum* over ranks, exactly as in Valiant's BSP accounting.

Determinism: rank programs run in rank order within each scheduling sweep and
all randomness comes from caller-provided seeded generators, so a run is a
pure function of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator, Sequence

from repro.bsp import collectives as coll
from repro.bsp.cost_model import CommStats, CostModel
from repro.bsp.machine import MachineModel
from repro.bsp.node import NodeLayout
from repro.bsp.trace import SuperstepRecord, Trace
from repro.errors import BSPError, CollectiveMismatchError, DeadlockError

__all__ = ["Context", "NodeContext", "BSPEngine", "RunResult", "Program"]

#: Type of an SPMD program: a generator function taking (ctx, *args).
Program = Callable[..., Generator[Any, Any, Any]]

_DEFAULT_PHASE = "unlabeled"


@dataclass
class _Call:
    """A collective request yielded by a rank program."""

    op: str
    payload: Any = None
    root: int = 0
    reduce_op: str = "sum"
    partner: int = -1
    node_combining: bool = False
    #: Rendezvous group: ``("global",)`` or ``("node", node_id)``.
    group: tuple = ("global",)


class _PhaseScope:
    """Context manager produced by :meth:`Context.phase`."""

    __slots__ = ("_ctx", "_name", "_prev")

    def __init__(self, ctx: "Context", name: str) -> None:
        self._ctx = ctx
        self._name = name
        self._prev = ""

    def __enter__(self) -> "_PhaseScope":
        self._prev = self._ctx._phase
        self._ctx._phase = self._name
        return self

    def __exit__(self, *exc: object) -> None:
        self._ctx._phase = self._prev


class Context:
    """Per-rank handle a program uses for communication and cost charging."""

    _group: tuple = ("global",)

    def __init__(self, engine: "BSPEngine", rank: int) -> None:
        self._engine = engine
        self.rank = rank
        self.nprocs = engine.nprocs
        self._phase = _DEFAULT_PHASE
        self._pending_compute = 0.0  # seconds since last rendezvous
        self._pending_by_phase: dict[str, float] = {}

    def node_comm(self) -> "NodeContext":
        """A sub-communicator over this rank's *node* (§6.1 nodegroups).

        Collectives on the returned context rendezvous only with the other
        ranks of the same physical node and are priced as shared-memory
        operations (no network messages).  Requires the engine to have a
        :class:`~repro.bsp.node.NodeLayout`.
        """
        return NodeContext(self)

    # ------------------------------------------------------------- misc
    @property
    def machine(self) -> MachineModel:
        """The simulated machine description."""
        return self._engine.machine

    @property
    def node_layout(self) -> NodeLayout | None:
        """Node layout, if the engine was configured with one."""
        return self._engine.node_layout

    @property
    def current_phase(self) -> str:
        return self._phase

    def phase(self, name: str) -> _PhaseScope:
        """Label subsequent charges/collectives with ``name`` (for Fig 6.1
        style breakdowns)."""
        return _PhaseScope(self, name)

    # -------------------------------------------------------- cost charging
    def charge_seconds(self, seconds: float) -> None:
        """Charge raw computation seconds to this rank's clock."""
        if seconds < 0:
            raise BSPError("cannot charge negative time")
        self._pending_compute += seconds
        self._pending_by_phase[self._phase] = (
            self._pending_by_phase.get(self._phase, 0.0) + seconds
        )

    def charge_compare(self, comparisons: float) -> None:
        """Charge ``comparisons`` key comparisons."""
        self.charge_seconds(self.machine.compare_seconds(comparisons))

    def charge_bytes(self, nbytes: float) -> None:
        """Charge local memory traffic of ``nbytes`` bytes."""
        self.charge_seconds(self.machine.copy_seconds(nbytes))

    def charge_sort(self, n: int, *, key_bytes: int = 8) -> None:
        """Charge an ``n log n`` comparison sort plus its memory traffic."""
        import math

        if n > 1:
            self.charge_compare(n * math.log2(n))
            self.charge_bytes(2.0 * n * key_bytes)

    def charge_merge(self, total: int, ways: int, *, key_bytes: int = 8) -> None:
        """Charge a ``ways``-way merge of ``total`` total elements."""
        import math

        if total > 0 and ways > 1:
            self.charge_compare(total * math.log2(ways))
            self.charge_bytes(2.0 * total * key_bytes)

    def charge_binary_searches(self, queries: int, haystack: int) -> None:
        """Charge ``queries`` binary searches over ``haystack`` sorted keys."""
        import math

        if queries > 0:
            self.charge_compare(queries * math.log2(max(2, haystack)))

    # --------------------------------------------------------- collectives
    # Each returns a generator; invoke with ``yield from``.
    def barrier(self) -> Generator[Any, Any, None]:
        yield _Call("barrier", group=self._group)

    def bcast(self, value: Any = None, root: int = 0) -> Generator[Any, Any, Any]:
        result = yield _Call("bcast", value, root, group=self._group)
        return result

    def gather(self, value: Any, root: int = 0) -> Generator[Any, Any, Any]:
        result = yield _Call("gather", value, root, group=self._group)
        return result

    def allgather(self, value: Any) -> Generator[Any, Any, list[Any]]:
        result = yield _Call("allgather", value, group=self._group)
        return result

    def scatter(
        self, values: Sequence[Any] | None, root: int = 0
    ) -> Generator[Any, Any, Any]:
        result = yield _Call("scatter", values, root, group=self._group)
        return result

    def reduce(
        self, value: Any, op: str = "sum", root: int = 0
    ) -> Generator[Any, Any, Any]:
        result = yield _Call("reduce", value, root, reduce_op=op, group=self._group)
        return result

    def allreduce(self, value: Any, op: str = "sum") -> Generator[Any, Any, Any]:
        result = yield _Call("allreduce", value, reduce_op=op, group=self._group)
        return result

    def scan(self, value: Any, op: str = "sum") -> Generator[Any, Any, Any]:
        result = yield _Call("scan", value, reduce_op=op, group=self._group)
        return result

    def alltoall(
        self, values: Sequence[Any], node_combining: bool = False
    ) -> Generator[Any, Any, list[Any]]:
        """Personalized all-to-all: ``values[j]`` goes to rank ``j``.

        With ``node_combining=True`` the superstep is *priced* as if per-node
        message combining (§6.1.1) were applied; data semantics are identical.
        """
        result = yield _Call(
            "alltoallv", values, node_combining=node_combining, group=self._group
        )
        return result

    def exchange(self, partner: int, value: Any) -> Generator[Any, Any, Any]:
        """Symmetric pairwise exchange with ``partner`` (for bitonic sort)."""
        result = yield _Call("exchange", value, partner=partner, group=self._group)
        return result

    # ------------------------------------------------------------ internal
    def _drain_compute(self) -> tuple[float, dict[str, float]]:
        pending = self._pending_compute
        by_phase = self._pending_by_phase
        self._pending_compute = 0.0
        self._pending_by_phase = {}
        return pending, by_phase


class NodeContext(Context):
    """Sub-communicator over one node's ranks (shared-memory collectives).

    Exposes the same collective API as :class:`Context` but with
    ``self.rank`` / ``self.nprocs`` relative to the node, rendezvousing only
    with the node's other ranks.  Computation charges and phase labels are
    forwarded to the parent (global) context, so cost accounting stays
    unified.
    """

    def __init__(self, parent: Context) -> None:
        layout = parent._engine.node_layout
        if layout is None:
            raise BSPError(
                "node_comm() requires the engine to be configured with a "
                "NodeLayout (machine.cores_per_node > 1 or explicit layout)"
            )
        self._engine = parent._engine
        self._parent = parent
        self.node = layout.node_of(parent.rank)
        ranks = layout.ranks_on_node(self.node)
        self.rank = parent.rank - ranks.start
        self.nprocs = len(ranks)
        self.global_rank = parent.rank
        self._group = ("node", self.node)

    # Charges and phases belong to the (single, global) per-rank context.
    def charge_seconds(self, seconds: float) -> None:
        self._parent.charge_seconds(seconds)

    def phase(self, name: str) -> _PhaseScope:
        return self._parent.phase(name)

    @property
    def current_phase(self) -> str:
        return self._parent._phase

    def node_comm(self) -> "NodeContext":
        return self


@dataclass
class RunResult:
    """Outcome of one :meth:`BSPEngine.run`."""

    returns: list[Any]
    trace: Trace
    stats: CommStats
    makespan: float

    def breakdown(self):
        """Phase breakdown of the modeled execution time."""
        return self.trace.breakdown()


class BSPEngine:
    """Runs SPMD programs over ``nprocs`` simulated ranks."""

    def __init__(
        self,
        nprocs: int,
        machine: MachineModel | None = None,
        node_layout: NodeLayout | None = None,
    ) -> None:
        if nprocs < 1:
            raise BSPError(f"need at least one rank, got {nprocs}")
        self.nprocs = nprocs
        if machine is None:
            # Lazy import: the registry layer sits above the BSP substrate.
            from repro.machines import get_machine

            machine = get_machine("laptop")
        self.machine = machine
        if node_layout is None and self.machine.cores_per_node > 1:
            node_layout = NodeLayout(nprocs, self.machine.cores_per_node)
        self.node_layout = node_layout
        self.cost_model = CostModel(self.machine, nprocs, node_layout)

    # ------------------------------------------------------------------ #
    def run(
        self,
        program: Program,
        rank_args: Sequence[tuple] | None = None,
        **shared_kwargs: Any,
    ) -> RunResult:
        """Execute ``program`` on every rank and return the joint result.

        Parameters
        ----------
        program:
            Generator function ``program(ctx, *args, **shared_kwargs)``.
        rank_args:
            Optional per-rank positional arguments (length ``nprocs``).
        shared_kwargs:
            Keyword arguments passed identically to every rank.
        """
        p = self.nprocs
        if rank_args is None:
            rank_args = [()] * p
        if len(rank_args) != p:
            raise BSPError(
                f"rank_args has length {len(rank_args)}, expected {p}"
            )

        contexts = [Context(self, r) for r in range(p)]
        gens: list[Iterator[Any] | None] = []
        for r in range(p):
            gen = program(contexts[r], *rank_args[r], **shared_kwargs)
            if not hasattr(gen, "send"):
                raise BSPError(
                    "program must be a generator function (use 'yield from' "
                    "for collectives); got a plain function"
                )
            gens.append(gen)

        returns: list[Any] = [None] * p
        resume: list[Any] = [None] * p
        trace = Trace()
        stats = CommStats()
        step = 0

        # Ranks whose generators are still running.  The scheduling sweep
        # walks only this list, so ranks that returned early are never
        # re-scanned superstep after superstep (at large p the sweeps
        # dominate engine overhead).
        active: list[int] = list(range(p))
        finished: list[int] = []

        while active:
            calls: list[_Call | None] = [None] * p
            waiting: list[int] = []
            for r in active:
                try:
                    request = gens[r].send(resume[r])
                except StopIteration as stop:
                    returns[r] = stop.value
                    gens[r] = None
                    finished.append(r)
                    continue
                if not isinstance(request, _Call):
                    raise BSPError(
                        f"rank {r} yielded {type(request).__name__}; programs "
                        "must only 'yield from' Context collectives"
                    )
                calls[r] = request
                waiting.append(r)
                resume[r] = None
            active = waiting

            if not active:
                break

            # --- group the rendezvous ----------------------------------
            groups: dict[tuple, list[int]] = {}
            for r in active:
                groups.setdefault(calls[r].group, []).append(r)
            if ("global",) in groups:
                if len(groups) > 1:
                    other = next(g for g in groups if g != ("global",))
                    raise CollectiveMismatchError(
                        f"superstep {step}: ranks {groups[('global',)][:4]} "
                        f"issued a global collective while ranks "
                        f"{groups[other][:4]} issued a {other} collective"
                    )
                if finished:
                    stalled = groups[("global",)]
                    raise DeadlockError(
                        f"ranks {sorted(finished)[:8]} finished while ranks "
                        f"{stalled[:8]} wait on "
                        f"'{calls[stalled[0]].op}' — program is not SPMD"
                    )
            else:
                # All node-scoped: every node group must be complete.
                layout = self.node_layout
                for gkey, members in groups.items():
                    expected = list(layout.ranks_on_node(gkey[1]))
                    if members != expected:
                        raise DeadlockError(
                            f"superstep {step}: node {gkey[1]} collective has "
                            f"participants {members} but the node hosts ranks "
                            f"{expected}"
                        )

            # --- per-rank compute drained once per sweep ----------------
            drained = {r: contexts[r]._drain_compute() for r in active}

            # --- resolve each group independently -----------------------
            # Node groups on different nodes run concurrently: a sweep of
            # node collectives contributes the MAX group cost to the
            # makespan (one aggregated record), while the (single) global
            # group is recorded as-is.
            sweep_comm = 0.0
            sweep_compute = 0.0
            sweep_phases: dict[str, float] = {}
            sweep_op = ""
            sweep_phase = _DEFAULT_PHASE
            sweep_endpoints = 0
            for gkey in sorted(groups):
                members = groups[gkey]
                first = calls[members[0]]
                for r in members:
                    call = calls[r]
                    if call.op != first.op or call.root != first.root or (
                        call.reduce_op != first.reduce_op
                    ):
                        raise CollectiveMismatchError(
                            f"superstep {step} {gkey}: rank {members[0]} "
                            f"called '{first.op}' (root={first.root}) but "
                            f"rank {r} called '{call.op}' (root={call.root})"
                        )
                if first.op == "exchange" and gkey != ("global",):
                    raise CollectiveMismatchError(
                        "pairwise exchange is only supported on the global "
                        "communicator"
                    )
                partners = (
                    [calls[r].partner for r in members]
                    if first.op == "exchange"
                    else None
                )
                resolved = coll.resolve(
                    first.op,
                    [calls[r].payload for r in members],
                    first.root,
                    reduce_op=first.reduce_op,
                    partners=partners,
                )
                scope = "global" if gkey == ("global",) else "node"
                cost = self.cost_model.price(
                    first.op,
                    max_bytes=resolved.max_bytes,
                    total_bytes=resolved.total_bytes,
                    node_combining=first.node_combining,
                    scope=scope,
                    group_size=len(members),
                )
                stats.record(first.op, cost)

                # Critical-path compute over this group's members.
                max_compute = 0.0
                max_phases: dict[str, float] = {}
                for r in members:
                    pending, by_phase = drained[r]
                    if pending > max_compute:
                        max_compute, max_phases = pending, by_phase

                group_comm = cost.comm_seconds + cost.compute_seconds
                if scope == "global":
                    trace.append(
                        SuperstepRecord(
                            index=step,
                            op=first.op,
                            phase=contexts[members[0]]._phase,
                            compute_by_phase=max_phases,
                            comm_seconds=group_comm,
                            nbytes=cost.nbytes,
                            messages=cost.messages,
                            endpoints=cost.endpoints,
                        )
                    )
                elif group_comm + max_compute > sweep_comm + sweep_compute:
                    sweep_comm = group_comm
                    sweep_compute = max_compute
                    sweep_phases = max_phases
                    sweep_op = f"node:{first.op}"
                    sweep_phase = contexts[members[0]]._phase
                    sweep_endpoints = cost.endpoints

                for i, r in enumerate(members):
                    resume[r] = resolved.results[i]

            if sweep_op:
                trace.append(
                    SuperstepRecord(
                        index=step,
                        op=sweep_op,
                        phase=sweep_phase,
                        compute_by_phase=sweep_phases,
                        comm_seconds=sweep_comm,
                        nbytes=0,
                        messages=0,
                        endpoints=sweep_endpoints,
                    )
                )
            step += 1

        # Trailing computation after the last collective.
        max_compute = 0.0
        max_phases = {}
        for ctx in contexts:
            pending, by_phase = ctx._drain_compute()
            if pending > max_compute:
                max_compute, max_phases = pending, by_phase
        if max_compute > 0.0:
            trace.append(
                SuperstepRecord(
                    index=step,
                    op="__final__",
                    phase=self._dominant_phase(max_phases, contexts),
                    compute_by_phase=max_phases,
                    comm_seconds=0.0,
                    nbytes=0,
                    messages=0,
                    endpoints=p,
                )
            )

        return RunResult(
            returns=returns,
            trace=trace,
            stats=stats,
            makespan=trace.makespan,
        )

    @staticmethod
    def _dominant_phase(
        phase_seconds: dict[str, float], contexts: list[Context]
    ) -> str:
        """Label a superstep by where its critical-path time was spent."""
        if phase_seconds:
            return max(phase_seconds.items(), key=lambda kv: kv[1])[0]
        # No compute charged: use rank 0's current phase label.
        return contexts[0]._phase if contexts else _DEFAULT_PHASE
