"""Multicore-node layout for the shared-memory optimization (§6.1.1).

On real clusters multiple cores share a node's memory, so per-core messages
headed to the same destination node can be combined into one network message.
The paper reports this reduces all-to-all message counts by ``cores²`` (e.g.
50 cores/node ⇒ ~2500× fewer messages) and lets splitter determination run
over *nodes* rather than cores, shrinking the histogram by the same factor.

:class:`NodeLayout` captures the rank→node mapping.  The cost model consults
it when pricing all-to-all supersteps issued with ``node_combining=True``;
the HSS node-level driver (:mod:`repro.core.node_sort`) uses it to run the
two-level partitioning scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["NodeLayout"]


@dataclass(frozen=True)
class NodeLayout:
    """Maps ``nprocs`` simulated cores onto physical nodes, block-wise.

    Cores ``[i * cores_per_node, (i+1) * cores_per_node)`` live on node ``i``;
    the last node may be partially filled.

    Examples
    --------
    >>> layout = NodeLayout(nprocs=10, cores_per_node=4)
    >>> layout.nnodes
    3
    >>> layout.node_of(5)
    1
    >>> list(layout.ranks_on_node(2))
    [8, 9]
    """

    nprocs: int
    cores_per_node: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.nprocs, "nprocs")
        check_positive_int(self.cores_per_node, "cores_per_node")

    @property
    def nnodes(self) -> int:
        """Number of physical nodes."""
        return -(-self.nprocs // self.cores_per_node)

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range [0, {self.nprocs})")
        return rank // self.cores_per_node

    def ranks_on_node(self, node: int) -> range:
        """Ranks hosted on ``node``."""
        if not 0 <= node < self.nnodes:
            raise IndexError(f"node {node} out of range [0, {self.nnodes})")
        lo = node * self.cores_per_node
        hi = min(self.nprocs, lo + self.cores_per_node)
        return range(lo, hi)

    def node_leader(self, node: int) -> int:
        """The rank acting as the node's communication leader (first core)."""
        return self.ranks_on_node(node).start

    def is_leader(self, rank: int) -> bool:
        """Whether ``rank`` is its node's leader."""
        return self.node_leader(self.node_of(rank)) == rank

    def node_sizes(self) -> np.ndarray:
        """Array of core counts per node."""
        sizes = np.full(self.nnodes, self.cores_per_node, dtype=np.int64)
        remainder = self.nprocs - (self.nnodes - 1) * self.cores_per_node
        sizes[-1] = remainder
        return sizes

    def message_reduction_factor(self) -> float:
        """How many fewer network messages node-combined all-to-all needs.

        Core-level all-to-all injects ``p(p-1)`` messages; node-combined,
        ``n(n-1)``.  The paper quotes the ratio ``~cores²`` (§6.1.1).
        """
        p, n = self.nprocs, self.nnodes
        if n <= 1:
            return float(max(1, p * (p - 1)))
        return (p * (p - 1)) / (n * (n - 1))
