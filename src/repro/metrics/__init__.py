"""Output verification and quality metrics.

Every sorter in this library is checked with the same three predicates the
problem statement (§2.1) imposes:

* **globally sorted** — keys on rank ``k`` ≥ keys on rank ``k−1``, sorted
  within each rank;
* **permutation** — exactly the input multiset of keys, nothing lost or
  duplicated;
* **load balanced** — no rank holds more than ``N(1+ε)/p`` keys.
"""

from repro.metrics.verify import (
    check_globally_sorted,
    check_permutation,
    check_load_balance,
    verify_sorted_output,
    load_imbalance,
)

__all__ = [
    "check_globally_sorted",
    "check_permutation",
    "check_load_balance",
    "verify_sorted_output",
    "load_imbalance",
]
