"""Verification predicates for distributed sorted outputs."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import LoadBalanceError, VerificationError

__all__ = [
    "check_globally_sorted",
    "check_permutation",
    "check_load_balance",
    "verify_sorted_output",
    "load_imbalance",
]


def check_globally_sorted(shards: Sequence[np.ndarray]) -> None:
    """Raise unless shards form a global ascending order.

    Requires each shard sorted internally and every key on shard ``k`` to be
    ≥ the last key of the previous non-empty shard.
    """
    last = None
    for k, shard in enumerate(shards):
        if len(shard) == 0:
            continue
        if np.any(shard[1:] < shard[:-1]):
            raise VerificationError(f"shard {k} is not locally sorted")
        if last is not None and shard[0] < last:
            raise VerificationError(
                f"shard {k} starts below the previous shard's maximum "
                f"({shard[0]!r} < {last!r})"
            )
        last = shard[-1]


def check_permutation(
    inputs: Sequence[np.ndarray], outputs: Sequence[np.ndarray]
) -> None:
    """Raise unless outputs are exactly the input multiset of keys."""
    total_in = sum(len(x) for x in inputs)
    total_out = sum(len(x) for x in outputs)
    if total_in != total_out:
        raise VerificationError(
            f"key count changed: {total_in} in, {total_out} out"
        )
    if total_in == 0:
        return
    all_in = np.sort(np.concatenate([np.asarray(x) for x in inputs if len(x)]))
    all_out = np.sort(np.concatenate([np.asarray(x) for x in outputs if len(x)]))
    if not np.array_equal(all_in, all_out):
        raise VerificationError("output keys are not a permutation of the input")


def load_imbalance(shards: Sequence[np.ndarray]) -> float:
    """The paper's load-imbalance metric: max load / average load."""
    loads = np.array([len(s) for s in shards], dtype=np.float64)
    if loads.sum() == 0:
        return 1.0
    return float(loads.max() / loads.mean())


def check_load_balance(
    shards: Sequence[np.ndarray], eps: float, *, total_keys: int | None = None
) -> None:
    """Raise unless every shard holds ≤ ``N(1+ε)/p`` keys."""
    p = len(shards)
    n = total_keys if total_keys is not None else sum(len(s) for s in shards)
    cap = (1.0 + eps) * n / p
    for k, shard in enumerate(shards):
        if len(shard) > cap:
            raise LoadBalanceError(
                f"shard {k} holds {len(shard)} keys > cap {cap:.1f} "
                f"(N={n}, p={p}, eps={eps})"
            )


def verify_sorted_output(
    inputs: Sequence[np.ndarray],
    outputs: Sequence[np.ndarray],
    eps: float | None = None,
) -> None:
    """All three §2.1 checks in one call (eps=None skips load balance)."""
    check_globally_sorted(outputs)
    check_permutation(inputs, outputs)
    if eps is not None:
        check_load_balance(outputs, eps, total_keys=sum(len(x) for x in inputs))
