"""Heavy-duplicate workloads for the §4.3 implicit-tagging machinery.

Prior work (Shi & Schaeffer, cited in §4.3) shows sample sort's load balance
degrades *linearly* with duplicate multiplicity no matter how samples are
chosen — a splitter equal to a hot key cannot split the hot key's copies.
Implicit ``(key, PE, index)`` tagging restores a strict total order; these
generators produce the inputs that make the difference observable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import rng_or_default
from repro.workloads.registry import register_workload

__all__ = [
    "constant_shards",
    "few_distinct_shards",
    "hotspot_shards",
    "zipf_duplicate_shards",
]


@register_workload(
    "constant",
    description="Every key identical — the degenerate worst case for untagged sorters",
    paper_section="4.3",
)
def constant_shards(
    p: int, n_per: int, rng: np.random.Generator | int | None = 0, value: int = 42
) -> list[np.ndarray]:
    """Every key identical — the degenerate worst case for untagged sorters."""
    del rng
    return [np.full(n_per, value, dtype=np.int64) for _ in range(p)]


@register_workload(
    "few-distinct",
    description="Uniform draws from a tiny alphabet (fewer values than processors)",
    paper_section="4.3",
)
def few_distinct_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    distinct: int = 4,
) -> list[np.ndarray]:
    """Uniform draws from a tiny alphabet (fewer values than processors)."""
    if distinct < 1:
        raise WorkloadError(f"distinct must be >= 1, got {distinct}")
    rng = rng_or_default(rng)
    values = np.sort(rng.choice(2**40, size=distinct, replace=False)).astype(np.int64)
    return [values[rng.integers(0, distinct, size=n_per)] for _ in range(p)]


@register_workload(
    "hotspot",
    description="One hot key holding most of the mass, unique keys elsewhere",
    paper_section="4.3",
)
def hotspot_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    hot_fraction: float = 0.7,
) -> list[np.ndarray]:
    """One hot key holding ``hot_fraction`` of the mass, unique keys elsewhere."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = rng_or_default(rng)
    n = p * n_per
    hot_key = np.int64(2**41)
    n_hot = int(hot_fraction * n)
    cold = rng.integers(0, 2**40, size=n - n_hot, dtype=np.int64)
    keys = np.concatenate((np.full(n_hot, hot_key), cold + 2**42))
    rng.shuffle(keys)
    return [chunk.copy() for chunk in np.array_split(keys, p)]


@register_workload(
    "zipf-duplicates",
    description="Zipf-distributed draws from a small alphabet (realistic duplicates)",
    paper_section="4.3",
)
def zipf_duplicate_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    alphabet: int = 1000,
    exponent: float = 1.5,
) -> list[np.ndarray]:
    """Zipf-distributed draws from a small alphabet (realistic duplicates)."""
    if alphabet < 1:
        raise WorkloadError(f"alphabet must be >= 1, got {alphabet}")
    rng = rng_or_default(rng)
    weights = np.arange(1, alphabet + 1, dtype=np.float64) ** (-exponent)
    weights /= weights.sum()
    values = np.sort(rng.choice(2**50, size=alphabet, replace=False)).astype(np.int64)
    n = p * n_per
    keys = values[rng.choice(alphabet, size=n, p=weights)]
    return [chunk.copy() for chunk in np.array_split(keys, p)]
