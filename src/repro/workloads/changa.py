"""Synthetic ChaNGa-like particle workloads (§6.3 substitute).

ChaNGa sorts particles by space-filling-curve key every simulation step; its
Dwarf and Lambb datasets are proprietary simulation snapshots we cannot
ship.  What the *sorting* algorithm sees, though, is only the key
distribution, and for tree codes that distribution is fully characterized
by: (a) strong spatial clustering (halos), (b) huge dynamic range, and
(c) Morton/Peano keys that map spatial density directly onto key-space
density.  We synthesize both regimes:

* :func:`dwarf_like_shards` — a single dominant Plummer-sphere halo plus a
  thin background: extreme central concentration (the "dwarf galaxy"
  snapshot regime).  Most keys collapse into a tiny fraction of key space.
* :func:`lambb_like_shards` — a cosmological-web analog: many halos with a
  power-law mass function, filaments connecting them, and a diffuse
  background (the "Lambda-CDM box" regime): multi-scale clustering.

Both map positions to 63-bit Morton keys with
:func:`repro.utils.bits.morton_encode_3d` and deal particles to ranks
randomly (ChaNGa's virtual processors are placed arbitrarily — §6.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.records import RecordSchema
from repro.utils.bits import morton_encode_3d
from repro.utils.rng import rng_or_default
from repro.workloads.registry import register_workload

#: The record layout a ChaNGa particle exchange actually moves: the Morton
#: key routes the particle, the payload columns ride along (24 payload
#: bytes; 32-byte records with the 8-byte key).
PARTICLE_SCHEMA = RecordSchema.from_mapping(
    {"mass": "f8", "vx": "f4", "vy": "f4", "vz": "f4", "id": "u4"}
)

__all__ = [
    "plummer_positions",
    "soneira_peebles_positions",
    "morton_keys_from_positions",
    "dwarf_like_shards",
    "lambb_like_shards",
    "fractal_dwarf_shards",
    "fractal_lambb_shards",
]


def plummer_positions(
    n: int,
    rng: np.random.Generator,
    *,
    center: tuple[float, float, float] = (0.5, 0.5, 0.5),
    scale: float = 0.01,
) -> np.ndarray:
    """Sample ``n`` positions from a Plummer sphere (standard halo model).

    Radius is drawn by inverting the Plummer cumulative mass profile
    ``M(r) ∝ r³/(r²+a²)^{3/2}``: ``r = a/√(u^{-2/3} − 1)``; directions are
    isotropic.  Positions are clipped into the unit box.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    u = rng.random(n)
    u = np.clip(u, 1e-12, 1 - 1e-12)
    r = scale / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    # Isotropic directions.
    cos_t = rng.uniform(-1.0, 1.0, n)
    sin_t = np.sqrt(1.0 - cos_t**2)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    xyz = np.stack(
        (r * sin_t * np.cos(phi), r * sin_t * np.sin(phi), r * cos_t), axis=1
    )
    xyz += np.asarray(center, dtype=np.float64)
    return np.clip(xyz, 0.0, 1.0)


def soneira_peebles_positions(
    n: int,
    rng: np.random.Generator,
    *,
    levels: int = 7,
    eta: int = 4,
    ratio: float = 0.4,
    center: tuple[float, float, float] = (0.5, 0.5, 0.5),
    size: float = 0.45,
) -> np.ndarray:
    """Hierarchically clustered positions (Soneira & Peebles 1978).

    The classic fractal galaxy-distribution model: starting from one sphere
    of radius ``size``, each level places ``eta`` child spheres of radius
    ``ratio`` times the parent's at random positions inside it; particles
    scatter inside the leaf spheres.  Real N-body snapshots are hierarchical
    like this (halos within halos within filaments), which is exactly what
    makes key-space bisection expensive: every zoom level re-exposes skew.
    A single-scale halo underestimates that cost — this model is the
    faithful substitute for Fig 6.2's datasets.

    ``eta**levels`` leaf clusters are materialized; keep ``levels ≤ 9`` for
    ``eta = 4``.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if levels < 1 or eta < 1:
        raise WorkloadError("levels and eta must be >= 1")
    if not 0.0 < ratio < 1.0:
        raise WorkloadError(f"ratio must be in (0, 1), got {ratio}")
    if eta**levels > 2_000_000:
        raise WorkloadError(
            f"eta**levels = {eta**levels} leaf clusters is too many"
        )

    centers = np.asarray([center], dtype=np.float64)
    radius = size
    for _ in range(levels):
        child_r = radius * ratio
        # eta children per current center, uniformly inside the parent.
        dirs = rng.normal(size=(len(centers), eta, 3))
        dirs /= np.linalg.norm(dirs, axis=2, keepdims=True)
        dist = (radius - child_r) * rng.random((len(centers), eta, 1)) ** (1 / 3)
        centers = (centers[:, None, :] + dirs * dist).reshape(-1, 3)
        radius = child_r

    leaf = rng.integers(0, len(centers), n)
    pts = centers[leaf] + rng.normal(0.0, radius / 2.0, size=(n, 3))
    return np.clip(pts, 0.0, 1.0)


def _filament_positions(
    n: int,
    rng: np.random.Generator,
    a: np.ndarray,
    b: np.ndarray,
    thickness: float,
) -> np.ndarray:
    """Particles scattered around the segment ``a→b`` (a cosmic filament)."""
    t = rng.random((n, 1))
    pts = a + t * (b - a)
    pts += rng.normal(0.0, thickness, size=(n, 3))
    return np.clip(pts, 0.0, 1.0)


def morton_keys_from_positions(xyz: np.ndarray) -> np.ndarray:
    """63-bit Morton keys for an ``(n, 3)`` position array in the unit box."""
    xyz = np.asarray(xyz, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise WorkloadError(f"positions must be (n, 3), got {xyz.shape}")
    return morton_encode_3d(xyz[:, 0], xyz[:, 1], xyz[:, 2])


def _deal_keys(
    keys: np.ndarray, p: int, rng: np.random.Generator
) -> list[np.ndarray]:
    rng.shuffle(keys)
    return [chunk.copy() for chunk in np.array_split(keys, p)]


@register_workload(
    "changa-dwarf",
    description="Single-halo particle Morton keys (extreme central concentration)",
    paper_section="6.3",
    record_schema=PARTICLE_SCHEMA,
)
def dwarf_like_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    *,
    halo_fraction: float = 0.9,
    halo_scale: float = 0.004,
) -> list[np.ndarray]:
    """Single-halo ("Dwarf") particle keys: extreme central concentration.

    ``halo_fraction`` of particles sit in one Plummer sphere of scale radius
    ``halo_scale`` (fraction of the box); the rest are a uniform background.
    With the defaults, ~90% of keys land in ≪1% of key space.
    """
    rng = rng_or_default(rng)
    n = p * n_per
    n_halo = int(halo_fraction * n)
    halo = plummer_positions(n_halo, rng, scale=halo_scale)
    background = rng.random((n - n_halo, 3))
    keys = morton_keys_from_positions(np.vstack((halo, background)))
    return _deal_keys(keys, p, rng)


@register_workload(
    "changa-lambb",
    description="Cosmological-web particle Morton keys (multi-scale clustering)",
    paper_section="6.3",
    record_schema=PARTICLE_SCHEMA,
)
def lambb_like_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    *,
    nhalos: int = 48,
    halo_fraction: float = 0.6,
    filament_fraction: float = 0.25,
    mass_slope: float = 1.8,
) -> list[np.ndarray]:
    """Cosmological-web ("Lambb") particle keys: multi-scale clustering.

    ``nhalos`` Plummer halos with power-law masses (``∝ rank^{-mass_slope}``)
    hold ``halo_fraction`` of the particles; ``filament_fraction`` trace
    segments between nearby halos; the remainder is a diffuse background.
    """
    rng = rng_or_default(rng)
    if nhalos < 2:
        raise WorkloadError(f"nhalos must be >= 2, got {nhalos}")
    n = p * n_per
    n_halo = int(halo_fraction * n)
    n_fil = int(filament_fraction * n)
    n_bg = n - n_halo - n_fil

    centers = rng.random((nhalos, 3))
    masses = (np.arange(1, nhalos + 1, dtype=np.float64)) ** (-mass_slope)
    masses /= masses.sum()
    counts = rng.multinomial(n_halo, masses)
    scales = 0.002 + 0.02 * masses / masses.max()

    chunks: list[np.ndarray] = []
    for h in range(nhalos):
        if counts[h]:
            chunks.append(
                plummer_positions(
                    int(counts[h]),
                    rng,
                    center=tuple(centers[h]),
                    scale=float(scales[h]),
                )
            )

    # Filaments between each halo and its nearest more-massive neighbour.
    if n_fil:
        per_fil = np.full(nhalos - 1, n_fil // (nhalos - 1), dtype=np.int64)
        per_fil[: n_fil % (nhalos - 1)] += 1
        for h in range(1, nhalos):
            if per_fil[h - 1] == 0:
                continue
            d = np.linalg.norm(centers[:h] - centers[h], axis=1)
            mate = int(np.argmin(d))
            chunks.append(
                _filament_positions(
                    int(per_fil[h - 1]), rng, centers[h], centers[mate], 0.004
                )
            )

    if n_bg:
        chunks.append(rng.random((n_bg, 3)))

    keys = morton_keys_from_positions(np.vstack(chunks))
    return _deal_keys(keys, p, rng)


@register_workload(
    "fractal-dwarf",
    description="Fig 6.2 Dwarf analog: one deep Soneira-Peebles hierarchy",
    paper_section="6.2",
    record_schema=PARTICLE_SCHEMA,
)
def fractal_dwarf_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    *,
    levels: int = 9,
    cluster_fraction: float = 0.92,
) -> list[np.ndarray]:
    """Fig 6.2 "Dwarf" analog: one deep Soneira–Peebles hierarchy.

    ``levels = 9`` with ``ratio = 0.4`` spans a density contrast of
    ``(1/0.4³)⁹ ≈ 10¹²`` — the hierarchical-substructure regime of a real
    dwarf-galaxy snapshot, which is what Fig 6.2's "Old" histogram sort
    pays for round by round.
    """
    rng = rng_or_default(rng)
    n = p * n_per
    n_cluster = int(cluster_fraction * n)
    pts = soneira_peebles_positions(n_cluster, rng, levels=levels, eta=4, ratio=0.4)
    background = rng.random((n - n_cluster, 3))
    keys = morton_keys_from_positions(np.vstack((pts, background)))
    return _deal_keys(keys, p, rng)


@register_workload(
    "fractal-lambb",
    description="Fig 6.2 Lambb analog: shallow hierarchies plus filaments",
    paper_section="6.2",
    record_schema=PARTICLE_SCHEMA,
)
def fractal_lambb_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    *,
    nclusters: int = 6,
    levels: int = 6,
) -> list[np.ndarray]:
    """Fig 6.2 "Lambb" analog: several shallower hierarchies + filaments.

    A cosmological box has many moderately deep structures rather than one
    very deep one, so its key distribution is *less* adversarial for
    key-space bisection than the dwarf's — the ordering Fig 6.2 shows.
    """
    rng = rng_or_default(rng)
    n = p * n_per
    n_cluster = int(0.62 * n)
    n_fil = int(0.18 * n)
    centers = rng.random((nclusters, 3))
    counts = rng.multinomial(n_cluster, np.full(nclusters, 1.0 / nclusters))
    chunks = [
        soneira_peebles_positions(
            int(c),
            rng,
            levels=levels,
            eta=4,
            ratio=0.42,
            center=tuple(centers[i]),
            size=0.12,
        )
        for i, c in enumerate(counts)
        if c
    ]
    per_fil = max(1, n_fil // max(1, nclusters - 1))
    for i in range(1, nclusters):
        chunks.append(
            _filament_positions(per_fil, rng, centers[i - 1], centers[i], 0.004)
        )
    placed = sum(len(c) for c in chunks)
    if n - placed > 0:
        chunks.append(rng.random((n - placed, 3)))
    keys = morton_keys_from_positions(np.vstack(chunks)[:n])
    return _deal_keys(keys, p, rng)
