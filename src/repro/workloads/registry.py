"""The workload plugin registry — fourth registry axis of the repo.

Algorithms, machines and execution backends already resolve through typed
spec registries; this module gives input workloads the same treatment.  A
:class:`WorkloadSpec` couples the generator function with its description,
paper-section tag and (when the workload models record-carrying inputs,
like the ChaNGa particle sets) its natural :class:`~repro.records.RecordSchema`.

Generator modules self-register::

    @register_workload(
        "uniform",
        description="Uniform 62-bit integer keys",
        paper_section="6.2",
    )
    def uniform_shards(p, n_per, rng=0): ...

``WORKLOADS`` — the catalog every existing call site resolves names
against — remains a mapping of ``name -> generator``, now live-backed by
the registry, so ``name in WORKLOADS`` / ``sorted(WORKLOADS)`` /
``WORKLOADS[name](p, n_per, rng)`` all keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.errors import WorkloadError
from repro.records import RecordSchema

__all__ = [
    "WorkloadSpec",
    "WORKLOAD_SPECS",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "available_workloads",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload generator plus its declarative metadata."""

    #: Registry name (``repro sort --workload <name>``).
    name: str
    #: Generator with the catalog call shape ``fn(p, n_per, rng, **kwargs)``
    #: returning ``p`` per-rank key arrays.
    fn: Callable
    #: One-line description (the README workloads table row).
    description: str
    #: Paper section the workload reproduces/stresses ("6.2", "4.3", ...).
    paper_section: str = ""
    #: Natural record layout for record-carrying runs, or None for
    #: key-only workloads.  ``Dataset.from_workload(..., payloads=True)``
    #: resolves to this schema.
    record_schema: RecordSchema | None = field(default=None)

    def generate(self, p: int, n_per: int, rng=0, **kwargs):
        """Generate the per-rank key shards."""
        return self.fn(p, n_per, rng, **kwargs)


#: name -> spec; populated by :func:`register_workload` at import time of
#: the generator modules (the package ``__init__`` imports them all).
WORKLOAD_SPECS: dict[str, WorkloadSpec] = {}


def register_workload(
    name: str,
    *,
    description: str,
    paper_section: str = "",
    record_schema: Mapping[str, str] | RecordSchema | None = None,
):
    """Decorator registering a generator function under ``name``."""
    if record_schema is not None and not isinstance(record_schema, RecordSchema):
        record_schema = RecordSchema.from_mapping(record_schema)

    def decorate(fn: Callable) -> Callable:
        if name in WORKLOAD_SPECS:
            raise WorkloadError(f"workload {name!r} is already registered")
        WORKLOAD_SPECS[name] = WorkloadSpec(
            name=name,
            fn=fn,
            description=description,
            paper_section=paper_section,
            record_schema=record_schema,
        )
        return fn

    return decorate


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a registered workload spec by name."""
    try:
        return WORKLOAD_SPECS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOAD_SPECS)}"
        ) from None


def available_workloads() -> list[str]:
    """Sorted names of every registered workload."""
    return sorted(WORKLOAD_SPECS)


class _CatalogView(Mapping):
    """Live ``name -> generator`` view over :data:`WORKLOAD_SPECS`.

    The pre-registry catalog was a plain dict of generator functions;
    every call site that used it (CLI lookups, scenario validation,
    ``make_workload``) works against this view unchanged.
    """

    def __getitem__(self, name: str) -> Callable:
        return WORKLOAD_SPECS[name].fn

    def __iter__(self) -> Iterator[str]:
        return iter(WORKLOAD_SPECS)

    def __len__(self) -> int:
        return len(WORKLOAD_SPECS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WORKLOADS({sorted(WORKLOAD_SPECS)})"


WORKLOADS = _CatalogView()
