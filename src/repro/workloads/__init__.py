"""Input generators for experiments and tests.

* :mod:`repro.workloads.distributions` — parametric key distributions from
  benign (uniform) to adversarial (staircase skew, nearly-sorted), each
  returning per-rank shards.
* :mod:`repro.workloads.changa` — synthetic cosmological particle sets
  standing in for ChaNGa's Dwarf and Lambb datasets (§6.3): clustered 3-D
  matter mapped to Morton space-filling-curve keys.
* :mod:`repro.workloads.duplicates` — heavy-duplicate inputs for the §4.3
  tagging machinery.
"""

from repro.workloads.distributions import (
    DISTRIBUTIONS,
    make_distributed,
    uniform_shards,
    normal_shards,
    exponential_shards,
    lognormal_shards,
    staircase_shards,
    nearly_sorted_shards,
    reversed_shards,
)
from repro.workloads.changa import (
    dwarf_like_shards,
    lambb_like_shards,
    plummer_positions,
    morton_keys_from_positions,
    fractal_dwarf_shards,
    fractal_lambb_shards,
)
from repro.workloads.duplicates import (
    constant_shards,
    few_distinct_shards,
    hotspot_shards,
    zipf_duplicate_shards,
)

#: Unified catalog of every named workload — the parametric distributions
#: plus the ChaNGa-like particle sets and the duplicate-heavy generators.
#: Every entry has the same call shape ``fn(p, n_per, rng, **kwargs)`` and
#: returns ``p`` per-rank key arrays; this is what
#: :meth:`repro.algorithms.Dataset.from_workload` resolves names against.
WORKLOADS = {
    **DISTRIBUTIONS,
    "changa-dwarf": dwarf_like_shards,
    "changa-lambb": lambb_like_shards,
    "fractal-dwarf": fractal_dwarf_shards,
    "fractal-lambb": fractal_lambb_shards,
    "constant": constant_shards,
    "few-distinct": few_distinct_shards,
    "hotspot": hotspot_shards,
    "zipf-duplicates": zipf_duplicate_shards,
}


def make_workload(name, p, n_per, rng=0, **kwargs):
    """Generate per-rank shards for any catalogued workload by name."""
    from repro.errors import WorkloadError

    if name not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name](p, n_per, rng, **kwargs)


__all__ = [
    "DISTRIBUTIONS",
    "WORKLOADS",
    "make_distributed",
    "make_workload",
    "uniform_shards",
    "normal_shards",
    "exponential_shards",
    "lognormal_shards",
    "staircase_shards",
    "nearly_sorted_shards",
    "reversed_shards",
    "dwarf_like_shards",
    "lambb_like_shards",
    "fractal_dwarf_shards",
    "fractal_lambb_shards",
    "plummer_positions",
    "morton_keys_from_positions",
    "constant_shards",
    "few_distinct_shards",
    "hotspot_shards",
    "zipf_duplicate_shards",
]
