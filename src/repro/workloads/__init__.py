"""Input generators for experiments and tests — the workload registry.

* :mod:`repro.workloads.distributions` — parametric key distributions from
  benign (uniform) to adversarial (staircase skew, nearly-sorted), each
  returning per-rank shards.
* :mod:`repro.workloads.changa` — synthetic cosmological particle sets
  standing in for ChaNGa's Dwarf and Lambb datasets (§6.3): clustered 3-D
  matter mapped to Morton space-filling-curve keys.
* :mod:`repro.workloads.duplicates` — heavy-duplicate inputs for the §4.3
  tagging machinery.
* :mod:`repro.chaos.workloads` — adversarial and *time-evolving* inputs
  (drifting mixtures, duplicate-heavy staircases, replayed multi-timestep
  traces) that stress the splitter-cache/fingerprint path under drift.

Every generator self-registers through
:func:`~repro.workloads.registry.register_workload`, which couples it with
a description, a paper-section tag and (for record-carrying workloads like
the particle sets) its natural record schema — the same plugin-registry
treatment algorithms, machines and backends already get.  ``repro
workloads`` lists the catalog; :data:`WORKLOADS` remains the
``name -> generator`` mapping all existing call sites resolve against.
"""

from repro.workloads.registry import (
    WORKLOAD_SPECS,
    WORKLOADS,
    WorkloadSpec,
    available_workloads,
    get_workload,
    register_workload,
)
from repro.workloads.distributions import (
    DISTRIBUTIONS,
    make_distributed,
    uniform_shards,
    normal_shards,
    exponential_shards,
    lognormal_shards,
    staircase_shards,
    nearly_sorted_shards,
    reversed_shards,
)
from repro.workloads.changa import (
    PARTICLE_SCHEMA,
    dwarf_like_shards,
    lambb_like_shards,
    plummer_positions,
    morton_keys_from_positions,
    fractal_dwarf_shards,
    fractal_lambb_shards,
)
from repro.workloads.duplicates import (
    constant_shards,
    few_distinct_shards,
    hotspot_shards,
    zipf_duplicate_shards,
)

# The chaos subsystem's adversarial/time-evolving generators register on
# import.  Module import only (never a from-import): repro.chaos.workloads
# itself imports this package, and mid-cycle the partially initialized
# module resolves through sys.modules while its attributes do not — the
# same benign-cycle rule as repro.runtime's chaos import.
import repro.chaos.workloads as _chaos_workloads  # noqa: E402

_CHAOS_GENERATORS = (
    "changa_drift_shards",
    "drifting_mixture_shards",
    "staircase_duplicate_shards",
)


def __getattr__(name):
    # PEP 562: lazy re-export, resolved only after the cycle closes.
    if name in _CHAOS_GENERATORS:
        return getattr(_chaos_workloads, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def make_workload(name, p, n_per, rng=0, **kwargs):
    """Generate per-rank shards for any registered workload by name."""
    return get_workload(name).generate(p, n_per, rng, **kwargs)


__all__ = [
    "DISTRIBUTIONS",
    "PARTICLE_SCHEMA",
    "WORKLOADS",
    "WORKLOAD_SPECS",
    "WorkloadSpec",
    "available_workloads",
    "get_workload",
    "register_workload",
    "make_distributed",
    "make_workload",
    "uniform_shards",
    "normal_shards",
    "exponential_shards",
    "lognormal_shards",
    "staircase_shards",
    "nearly_sorted_shards",
    "reversed_shards",
    "dwarf_like_shards",
    "lambb_like_shards",
    "fractal_dwarf_shards",
    "fractal_lambb_shards",
    "plummer_positions",
    "morton_keys_from_positions",
    "constant_shards",
    "few_distinct_shards",
    "hotspot_shards",
    "zipf_duplicate_shards",
    "changa_drift_shards",
    "drifting_mixture_shards",
    "staircase_duplicate_shards",
]
