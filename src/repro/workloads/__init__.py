"""Input generators for experiments and tests.

* :mod:`repro.workloads.distributions` — parametric key distributions from
  benign (uniform) to adversarial (staircase skew, nearly-sorted), each
  returning per-rank shards.
* :mod:`repro.workloads.changa` — synthetic cosmological particle sets
  standing in for ChaNGa's Dwarf and Lambb datasets (§6.3): clustered 3-D
  matter mapped to Morton space-filling-curve keys.
* :mod:`repro.workloads.duplicates` — heavy-duplicate inputs for the §4.3
  tagging machinery.
"""

from repro.workloads.distributions import (
    DISTRIBUTIONS,
    make_distributed,
    uniform_shards,
    normal_shards,
    exponential_shards,
    lognormal_shards,
    staircase_shards,
    nearly_sorted_shards,
    reversed_shards,
)
from repro.workloads.changa import (
    dwarf_like_shards,
    lambb_like_shards,
    plummer_positions,
    morton_keys_from_positions,
)
from repro.workloads.duplicates import (
    constant_shards,
    few_distinct_shards,
    hotspot_shards,
    zipf_duplicate_shards,
)

__all__ = [
    "DISTRIBUTIONS",
    "make_distributed",
    "uniform_shards",
    "normal_shards",
    "exponential_shards",
    "lognormal_shards",
    "staircase_shards",
    "nearly_sorted_shards",
    "reversed_shards",
    "dwarf_like_shards",
    "lambb_like_shards",
    "plummer_positions",
    "morton_keys_from_positions",
    "constant_shards",
    "few_distinct_shards",
    "hotspot_shards",
    "zipf_duplicate_shards",
]
