"""Parametric key distributions, distributed over ``p`` ranks.

Every generator returns ``p`` NumPy arrays of ``n_per`` keys each.  Keys are
drawn globally and dealt to ranks randomly (the paper's §2.1 model: evenly
sized but otherwise arbitrary local inputs), except for the structured
layouts (`nearly_sorted`, `reversed`) whose *placement* is the stress.

The continuous distributions intentionally span very different CDF shapes:
splitter-based algorithms that probe *key space* (classic histogram sort)
slow down as density concentrates, while sampling-based methods (HSS,
sample sort) are distribution-free — the contrast behind Fig 6.2.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import rng_or_default
from repro.workloads.registry import register_workload

__all__ = [
    "DISTRIBUTIONS",
    "make_distributed",
    "uniform_shards",
    "normal_shards",
    "exponential_shards",
    "lognormal_shards",
    "staircase_shards",
    "nearly_sorted_shards",
    "reversed_shards",
]

#: Span of integer key space used by default (keeps clear of int64 extremes
#: so dtype-sentinel splitter intervals stay safe).
KEY_SPAN = 2**62


def _deal(
    global_keys: np.ndarray, p: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Shuffle and deal a global key array into ``p`` equal shards."""
    rng.shuffle(global_keys)
    return [chunk.copy() for chunk in np.array_split(global_keys, p)]


def _to_int_keys(values: np.ndarray) -> np.ndarray:
    """Map continuous values monotonically onto the integer key span.

    Rank order is preserved exactly (stable argsort double-inversion), so
    distribution shape carries over to integer keys without collisions
    dominating.
    """
    lo, hi = float(values.min()), float(values.max())
    if hi <= lo:
        return np.zeros(len(values), dtype=np.int64)
    scaled = (values - lo) / (hi - lo) * (KEY_SPAN - 1)
    return scaled.astype(np.int64)


@register_workload(
    "uniform",
    description="Uniform 62-bit integer keys — the benign baseline",
    paper_section="6.2",
)
def uniform_shards(
    p: int, n_per: int, rng: np.random.Generator | int | None = 0
) -> list[np.ndarray]:
    """Uniform 62-bit integer keys — the benign baseline workload."""
    rng = rng_or_default(rng)
    keys = rng.integers(0, KEY_SPAN, size=p * n_per, dtype=np.int64)
    return _deal(keys, p, rng)


@register_workload(
    "normal",
    description="Gaussian-density keys (mild central concentration)",
    paper_section="6.2",
)
def normal_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    sigma: float = 1.0,
) -> list[np.ndarray]:
    """Gaussian-density keys (mild central concentration)."""
    rng = rng_or_default(rng)
    keys = _to_int_keys(rng.normal(0.0, sigma, size=p * n_per))
    return _deal(keys, p, rng)


@register_workload(
    "exponential",
    description="Exponential-density keys (one-sided skew)",
    paper_section="6.2",
)
def exponential_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    scale: float = 1.0,
) -> list[np.ndarray]:
    """Exponential-density keys (one-sided skew)."""
    rng = rng_or_default(rng)
    keys = _to_int_keys(rng.exponential(scale, size=p * n_per))
    return _deal(keys, p, rng)


@register_workload(
    "lognormal",
    description="Log-normal keys — heavy tail, strong density concentration",
    paper_section="6.2",
)
def lognormal_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    sigma: float = 3.0,
) -> list[np.ndarray]:
    """Log-normal keys — heavy right tail, strong density concentration."""
    rng = rng_or_default(rng)
    keys = _to_int_keys(rng.lognormal(0.0, sigma, size=p * n_per))
    return _deal(keys, p, rng)


@register_workload(
    "staircase",
    description="Adversarial staircase: mass clusters at exponentially spread scales",
    paper_section="6.2",
)
def staircase_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    steps: int = 8,
    ratio: float = 1e6,
) -> list[np.ndarray]:
    """Adversarial staircase: clusters of mass at exponentially spread scales.

    Step ``t`` holds ``1/steps`` of the keys uniformly inside a window
    ``ratio``× narrower than the span between steps.  Key-space bisection
    needs ~``log2(ratio)`` extra rounds per step to focus in; sampling-based
    splitter determination is unaffected.
    """
    if steps < 1:
        raise WorkloadError(f"steps must be >= 1, got {steps}")
    rng = rng_or_default(rng)
    n = p * n_per
    step_of = rng.integers(0, steps, size=n)
    base = (KEY_SPAN // (steps + 1)) * (step_of + 1)
    width = max(2, int(KEY_SPAN / (steps + 1) / ratio))
    keys = base + rng.integers(0, width, size=n)
    return _deal(keys.astype(np.int64), p, rng)


@register_workload(
    "nearly-sorted",
    description="Already-sorted placement with a sprinkling of out-of-place keys",
    paper_section="6.2",
)
def nearly_sorted_shards(
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    swap_fraction: float = 0.01,
) -> list[np.ndarray]:
    """Already-sorted placement with a sprinkling of out-of-place keys.

    Shard ``k`` holds (mostly) the ``k``-th quantile of the key space — the
    "nothing should move" best case that also exercises empty-message paths
    in the all-to-all.
    """
    rng = rng_or_default(rng)
    n = p * n_per
    keys = np.sort(rng.integers(0, KEY_SPAN, size=n, dtype=np.int64))
    nswap = int(swap_fraction * n)
    if nswap:
        a = rng.integers(0, n, size=nswap)
        b = rng.integers(0, n, size=nswap)
        keys[a], keys[b] = keys[b], keys[a]
    return [chunk.copy() for chunk in np.array_split(keys, p)]


@register_workload(
    "reversed",
    description="Globally descending placement — every key crosses the machine",
    paper_section="6.2",
)
def reversed_shards(
    p: int, n_per: int, rng: np.random.Generator | int | None = 0
) -> list[np.ndarray]:
    """Globally descending placement — every key must cross the machine."""
    rng = rng_or_default(rng)
    keys = np.sort(rng.integers(0, KEY_SPAN, size=p * n_per, dtype=np.int64))[::-1]
    return [chunk.copy() for chunk in np.array_split(keys, p)]


#: Registry used by shootout benchmarks and property tests.
DISTRIBUTIONS: dict[str, Callable[..., list[np.ndarray]]] = {
    "uniform": uniform_shards,
    "normal": normal_shards,
    "exponential": exponential_shards,
    "lognormal": lognormal_shards,
    "staircase": staircase_shards,
    "nearly-sorted": nearly_sorted_shards,
    "reversed": reversed_shards,
}


def make_distributed(
    name: str,
    p: int,
    n_per: int,
    rng: np.random.Generator | int | None = 0,
    **kwargs,
) -> list[np.ndarray]:
    """Generate shards for a registered distribution by name."""
    if name not in DISTRIBUTIONS:
        raise WorkloadError(
            f"unknown distribution {name!r}; choose from {sorted(DISTRIBUTIONS)}"
        )
    return DISTRIBUTIONS[name](p, n_per, rng, **kwargs)
