"""Sample sort with regular and with block-random sampling (§2.2, §4.1).

Both variants follow the three-phase skeleton of §2.2: sample locally,
gather the combined sample at a central processor which picks ``p−1``
splitters, broadcast, then the shared data-movement phase.  They differ only
in the sampling step:

* **regular sampling** (Shi & Schaeffer): ``s = ⌈p/ε⌉`` evenly spaced keys
  per processor; splitter ``i`` is the sample element of (1-based) rank
  ``s·i − p/2``, giving the deterministic ``(1+ε)`` guarantee of
  Lemma 4.1.1 at the price of a ``p²/ε`` total sample.
* **block random sampling** (Blelloch et al.): one uniform key from each of
  ``s`` blocks per processor; splitters are evenly spaced sample elements.
  Theorem 4.1.1 needs ``s = Θ(log N/ε²)`` for the w.h.p. guarantee — the
  default here — but any ``s`` may be forced via ``oversample`` to explore
  the sample-size/balance trade-off (used by the shootout benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.bsp.engine import Context
from repro.core.data_movement import exchange_and_merge, locally_sorted_shard
from repro.errors import ConfigError
from repro.sampling.random_blocks import block_random_sample
from repro.sampling.regular import regular_sample
from repro.utils.rng import RngTree

__all__ = [
    "SampleSortConfig",
    "SampleSortStats",
    "sample_sort_regular_program",
    "sample_sort_random_program",
]


@dataclass(frozen=True)
class SampleSortConfig:
    """Typed knobs for the single-round sample-sort baselines."""

    #: Load-imbalance target (guaranteed for regular, w.h.p. for random).
    eps: float = 0.05
    #: Sampling seed (block-random variant; regular is deterministic).
    seed: int = 0
    #: Per-processor sample size override (None = the variant's
    #: guarantee-preserving default).
    oversample: int | None = None


@dataclass
class SampleSortStats:
    """Sampling-phase accounting, comparable with HSS's SplitterStats."""

    oversample: int
    total_sample: int
    splitters: np.ndarray


def _central_splitters(
    ctx: Context,
    local_sample: np.ndarray,
    *,
    select: str,
    s: int,
) -> Generator:
    """Gather samples, choose ``p−1`` splitters at rank 0, broadcast.

    ``select='regular'`` picks (1-based) sample ranks ``s·i − p/2``
    (Theorem 4.1.2); ``select='even'`` picks evenly spaced elements
    ``⌈ps·i/p⌉`` (the random-sampling convention).
    """
    p = ctx.nprocs
    gathered = yield from ctx.gather(local_sample, root=0)
    if ctx.rank == 0:
        sample = np.sort(np.concatenate([g for g in gathered if len(g)]))
        m = len(sample)
        ctx.charge_sort(m, key_bytes=sample.dtype.itemsize)
        # Use the *achieved* per-processor sample count (the requested ``s``
        # may have been capped by small local inputs), else the selection
        # indices run past the gathered sample.
        s_eff = max(1, m // p)
        idx_1based = np.arange(1, p, dtype=np.int64) * s_eff
        if select == "regular":
            idx_1based = idx_1based - p // 2
        idx = np.clip(idx_1based - 1, 0, m - 1)
        splitters = sample[idx]
        total = m
    else:
        splitters, total = None, 0
    splitters = yield from ctx.bcast(splitters, root=0)
    total = yield from ctx.bcast(total, root=0)
    return splitters, total


@register_algorithm(
    name="sample-regular",
    config_cls=SampleSortConfig,
    supports_payloads=True,
    balanced=True,
    paper_section="4.1.2",
    description="sample sort, regular sampling (PSRS, central splitter pick)",
)
def sample_sort_regular_program(
    ctx: Context,
    keys: np.ndarray,
    payload: np.ndarray | None = None,
    *,
    eps: float = 0.05,
    seed: int = 0,
    oversample: int | None = None,
) -> Generator:
    """PSRS: sample sort with regular sampling; returns ``(Shard, stats)``.

    ``oversample`` defaults to the guarantee-preserving ``⌈p/ε⌉``.  An
    optional aligned ``payload`` array is permuted along with the keys.
    """
    del seed  # deterministic sampling
    p = ctx.nprocs
    s = int(oversample) if oversample is not None else max(1, math.ceil(p / eps))
    if s < 1:
        raise ConfigError(f"oversample must be >= 1, got {s}")

    with ctx.phase("local sort"):
        shard = locally_sorted_shard(ctx, keys, payload)
        keys = shard.keys

    with ctx.phase("splitting"):
        local_sample = regular_sample(keys, s)
        splitters, total = yield from _central_splitters(
            ctx, local_sample, select="regular", s=s
        )
        positions = np.searchsorted(keys, splitters, side="left").astype(np.int64)
        ctx.charge_binary_searches(p - 1, max(1, len(keys)))

    with ctx.phase("data exchange"):
        merged = yield from exchange_and_merge(ctx, shard, positions)
    return merged, SampleSortStats(s, total, splitters)


@register_algorithm(
    name="sample-random",
    config_cls=SampleSortConfig,
    supports_payloads=True,
    balanced=False,
    paper_section="4.1.1",
    description="sample sort, block random sampling (w.h.p. balance)",
)
def sample_sort_random_program(
    ctx: Context,
    keys: np.ndarray,
    payload: np.ndarray | None = None,
    *,
    eps: float = 0.05,
    seed: int = 0,
    oversample: int | None = None,
) -> Generator:
    """Sample sort with block random sampling; returns ``(Shard, stats)``.

    ``oversample`` defaults to Theorem 4.1.1's ``⌈4(1+ε)·ln N/ε²⌉`` (the
    constant making the failure probability ``1/N``), capped at the local
    size.  An optional aligned ``payload`` is permuted with the keys.
    """
    p = ctx.nprocs
    rng = RngTree(seed).generator("sample-sort-random", ctx.rank)

    with ctx.phase("local sort"):
        shard = locally_sorted_shard(ctx, keys, payload)
        keys = shard.keys

    with ctx.phase("splitting"):
        total_keys = int((yield from ctx.allreduce(np.int64(len(keys)))))
        if oversample is not None:
            s = int(oversample)
        else:
            s = max(
                1,
                math.ceil(
                    4.0 * (1.0 + eps) * math.log(max(2, total_keys)) / (eps * eps)
                ),
            )
        local_sample = block_random_sample(keys, s, rng)
        splitters, total = yield from _central_splitters(
            ctx, local_sample, select="even", s=s
        )
        positions = np.searchsorted(keys, splitters, side="left").astype(np.int64)
        ctx.charge_binary_searches(p - 1, max(1, len(keys)))

    with ctx.phase("data exchange"):
        merged = yield from exchange_and_merge(ctx, shard, positions)
    return merged, SampleSortStats(s, total, splitters)
