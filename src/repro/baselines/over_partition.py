"""Parallel sorting by over-partitioning (Li & Sevcik; §4.2).

The input is cut into ``p·k`` buckets (``k`` = over-partitioning ratio,
log p in the original paper) using ``p·k − 1`` splitters chosen from a
random sample.  Having many more buckets than processors lets the assignment
step smooth out bucket-size variance, achieving load balance with a far
smaller sample than one-shot sample sort.

The original algorithm assigns buckets to shared-memory processors through a
size-ordered task queue.  The paper notes *"it is not immediately clear how
to extend the idea of task queues for a distributed cluster"* — so, as our
distributed adaptation, the central processor computes global bucket sizes
(one reduction) and assigns **contiguous runs of buckets** to processors by
a greedy scan against the average-load target.  Contiguity preserves the
global order of the output (so the result is verifiable like every other
sorter here) while keeping the variance-smoothing benefit of
over-partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.bsp.engine import Context
from repro.core.data_movement import Shard, exchange_and_merge
from repro.errors import ConfigError
from repro.sampling.random_blocks import block_random_sample
from repro.utils.rng import RngTree

__all__ = [
    "OverPartitionConfig",
    "OverPartitionStats",
    "over_partition_program",
    "assign_buckets_greedy",
]


@dataclass(frozen=True)
class OverPartitionConfig:
    """Typed knobs for parallel sorting by over-partitioning."""

    #: Sampling seed.
    seed: int = 0
    #: Over-partitioning ratio ``k`` (buckets = ``k·p``); None = the
    #: Li & Sevcik default ``⌈log₂ p⌉ + 1``.
    ratio: int | None = None
    #: Sample keys per bucket used to pick the bucket splitters.
    oversample: int = 32


@dataclass
class OverPartitionStats:
    """Accounting for the over-partitioning run."""

    ratio: int
    oversample: int
    total_sample: int
    bucket_count: int
    buckets_per_proc: np.ndarray


def assign_buckets_greedy(bucket_sizes: np.ndarray, p: int) -> np.ndarray:
    """Assign ``len(bucket_sizes)`` contiguous buckets to ``p`` processors.

    Greedy scan: keep adding buckets to the current processor until its load
    reaches the running average of the *remaining* work; always leaves
    enough buckets for the remaining processors.  Returns the bucket-to-
    processor map (non-decreasing).
    """
    nb = len(bucket_sizes)
    if nb < p:
        raise ConfigError(f"need at least {p} buckets, got {nb}")
    owner = np.empty(nb, dtype=np.int64)
    remaining = float(bucket_sizes.sum())
    b = 0
    for proc in range(p):
        procs_left = p - proc
        target = remaining / procs_left
        load = 0.0
        start = b
        # Must leave (procs_left - 1) buckets for the remaining processors.
        while b < nb - (procs_left - 1):
            nxt = float(bucket_sizes[b])
            # Take the bucket if we're under target or taking it overshoots
            # less than stopping undershoots.
            if load + nxt - target <= target - load or load == 0.0:
                load += nxt
                b += 1
            else:
                break
        if proc == p - 1:
            b = nb
            load = float(bucket_sizes[start:].sum())
        owner[start:b] = proc
        remaining -= load
    return owner


@register_algorithm(
    name="over-partition",
    config_cls=OverPartitionConfig,
    balanced=False,
    paper_section="4.2",
    description="over-partitioning with contiguous greedy bucket assignment",
)
def over_partition_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    eps: float = 0.05,
    seed: int = 0,
    ratio: int | None = None,
    oversample: int = 32,
) -> Generator:
    """SPMD over-partitioning sort; returns ``(Shard, OverPartitionStats)``.

    Parameters
    ----------
    ratio:
        Over-partitioning ratio ``k`` (buckets = ``k·p``); defaults to
        ``⌈log₂ p⌉ + 1``, the setting Li & Sevcik found effective.
    oversample:
        Sample keys per *bucket* used to pick the ``k·p − 1`` splitters.
    """
    p = ctx.nprocs
    if ratio is None:
        ratio = max(2, int(np.ceil(np.log2(max(2, p)))) + 1)
    if ratio < 1 or oversample < 1:
        raise ConfigError("ratio and oversample must be >= 1")
    nbuckets = ratio * p
    rng = RngTree(seed).generator("over-partition", ctx.rank)

    with ctx.phase("local sort"):
        keys = np.sort(keys, kind="stable")
        ctx.charge_sort(len(keys), key_bytes=keys.dtype.itemsize)

    with ctx.phase("splitting"):
        # Sample: `ratio * oversample` keys per processor → `oversample`
        # per bucket overall.
        local_sample = block_random_sample(keys, ratio * oversample, rng)
        gathered = yield from ctx.gather(local_sample, root=0)
        if ctx.rank == 0:
            sample = np.sort(np.concatenate([g for g in gathered if len(g)]))
            ctx.charge_sort(len(sample), key_bytes=sample.dtype.itemsize)
            m = len(sample)
            idx = np.clip(
                (np.arange(1, nbuckets, dtype=np.int64) * m) // nbuckets,
                0,
                m - 1,
            )
            bucket_splitters = sample[idx]
            total_sample = m
        else:
            bucket_splitters, total_sample = None, 0
        bucket_splitters = yield from ctx.bcast(bucket_splitters, root=0)

        # Global bucket sizes via one reduction, then contiguous greedy
        # assignment at the root.
        bucket_pos = np.searchsorted(keys, bucket_splitters, side="left")
        ctx.charge_binary_searches(nbuckets - 1, max(1, len(keys)))
        local_sizes = np.diff(
            np.concatenate(([0], bucket_pos, [len(keys)]))
        ).astype(np.int64)
        global_sizes = yield from ctx.allreduce(local_sizes)
        owner = assign_buckets_greedy(global_sizes, p)

        # Processor boundaries = positions of the first bucket of each
        # processor; the corresponding splitter keys drive data movement.
        first_bucket = np.searchsorted(owner, np.arange(1, p), side="left")
        positions = np.concatenate(([0], bucket_pos, [len(keys)]))[first_bucket]
        buckets_per_proc = np.bincount(owner, minlength=p)

    with ctx.phase("data exchange"):
        merged = yield from exchange_and_merge(
            ctx, Shard(keys), positions.astype(np.int64)
        )
    return merged, OverPartitionStats(
        ratio=ratio,
        oversample=oversample,
        total_sample=int(total_sample),
        bucket_count=nbuckets,
        buckets_per_proc=buckets_per_proc,
    )
