"""Regular-sampling sample sort with a *parallel* sample sort (§4.1.2).

The paper notes the ``p²/ε`` sample makes central splitter selection the
scalability bottleneck of PSRS, and that "one way to make regular sampling
scalable is to sort the sample in parallel", citing Goodrich's
communication-efficient scheme.  This variant implements that idea over
the BSP engine:

1. every rank draws its ``s = ⌈p/ε⌉`` regular sample and keeps it local —
   the ``p·s`` sample is never gathered anywhere;
2. the distributed sample is sorted *in place across ranks* with block
   bitonic merge (padding ragged blocks with key-space-max sentinels);
3. splitter ``i`` is the sample element of global rank ``s·i − p/2``
   (Theorem 4.1.2's rule); its owner rank is computed arithmetically from
   the sorted block layout and the ``p−1`` chosen keys are shared with a
   single allgather.

Compared to the central variant, the maximum per-rank memory and the
gather hotspot drop from ``Θ(p²/ε)`` to ``Θ(p/ε)`` — the point of the
exercise — at the price of ``Θ(log² p)`` extra (small) exchange rounds.

Requires a power-of-two ``p`` (bitonic's precondition); integer or float
keys strictly below the dtype maximum (reserved as the padding sentinel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.baselines.sample_sort import SampleSortConfig
from repro.bsp.engine import Context
from repro.core.data_movement import Shard, exchange_and_merge
from repro.errors import ConfigError
from repro.sampling.regular import regular_sample

__all__ = ["ParallelSampleSortStats", "sample_sort_regular_parallel_program"]


@dataclass
class ParallelSampleSortStats:
    """Accounting for the distributed sample-sorting phase."""

    oversample: int
    total_sample: int
    sample_block: int
    bitonic_exchanges: int
    splitters: np.ndarray


def _sentinel(dtype: np.dtype):
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _keep_half(mine: np.ndarray, theirs: np.ndarray, keep_low: bool) -> np.ndarray:
    n = len(mine)
    merged = np.concatenate((mine, theirs))
    merged.sort(kind="stable")
    return merged[:n] if keep_low else merged[len(theirs):]


@register_algorithm(
    name="sample-regular-parallel",
    config_cls=SampleSortConfig,
    balanced=True,
    paper_section="4.1.2",
    description="PSRS with the sample sorted in parallel (Goodrich-style)",
)
def sample_sort_regular_parallel_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    eps: float = 0.05,
    seed: int = 0,
    oversample: int | None = None,
) -> Generator:
    """SPMD parallel-PSRS; returns ``(Shard, ParallelSampleSortStats)``."""
    del seed
    p = ctx.nprocs
    if p & (p - 1):
        raise ConfigError(
            f"parallel sample sorting uses bitonic merge: p must be a "
            f"power of two, got {p}"
        )
    s = int(oversample) if oversample is not None else max(1, math.ceil(p / eps))
    dtype = keys.dtype
    pad = _sentinel(dtype)

    with ctx.phase("local sort"):
        keys = np.sort(keys, kind="stable")
        ctx.charge_sort(len(keys), key_bytes=dtype.itemsize)

    with ctx.phase("splitting"):
        sample = regular_sample(keys, s)
        if np.any(sample == pad):
            raise ConfigError(
                "keys collide with the padding sentinel (dtype max); "
                "shift the key range or use the central variant"
            )
        # Equal blocks for bitonic: pad to the global max sample length.
        sizes = yield from ctx.allgather(np.int64(len(sample)))
        block = int(max(int(x) for x in sizes))
        total_real = int(sum(int(x) for x in sizes))
        padded = np.full(block, pad, dtype=dtype)
        padded[: len(sample)] = sample

        exchanges = 0
        if p > 1 and block > 0:
            log_p = p.bit_length() - 1
            for i in range(log_p):
                for j in range(i, -1, -1):
                    partner = ctx.rank ^ (1 << j)
                    ascending = ((ctx.rank >> (i + 1)) & 1) == 0
                    theirs = yield from ctx.exchange(partner, padded)
                    padded = _keep_half(
                        padded, theirs, (ctx.rank < partner) == ascending
                    )
                    ctx.charge_merge(
                        2 * block, 2, key_bytes=dtype.itemsize
                    )
                    exchanges += 1

        # The distributed sample is now globally sorted with all sentinels
        # at the tail.  Splitter i = global sample rank s_eff*i - p/2
        # (1-based); owners compute their splitters locally.
        s_eff = max(1, total_real // p)
        wanted = np.clip(
            np.arange(1, p, dtype=np.int64) * s_eff - p // 2 - 1,
            0,
            total_real - 1,
        )
        my_lo = ctx.rank * block
        mine_mask = (wanted >= my_lo) & (wanted < my_lo + block)
        my_pairs = [
            (int(i), padded[int(g - my_lo)])
            for i, g in zip(np.where(mine_mask)[0], wanted[mine_mask])
        ]
        shared = yield from ctx.allgather(my_pairs)
        chosen: dict[int, object] = {}
        for pairs in shared:
            for i, key in pairs:
                chosen[i] = key
        splitters = np.array(
            [chosen[i] for i in range(p - 1)], dtype=dtype
        )
        positions = np.searchsorted(keys, splitters, side="left").astype(np.int64)
        ctx.charge_binary_searches(p - 1, max(1, len(keys)))

    with ctx.phase("data exchange"):
        merged = yield from exchange_and_merge(ctx, Shard(keys), positions)
    return merged, ParallelSampleSortStats(
        oversample=s,
        total_sample=total_real,
        sample_block=block,
        bitonic_exchanges=exchanges,
        splitters=splitters,
    )
