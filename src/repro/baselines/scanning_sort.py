"""Full sort built on the scanning algorithm (§3.2, Theorem 3.2.1).

One Bernoulli sampling pass at probability ``2p/(εN)``, one histogramming
round to learn the sample's exact ranks, then the greedy scan chooses
splitters.  This is the strongest *one-round* method in the paper — better
constants than one-round HSS — and serves as the bridge baseline between
sample sort (one round, huge sample) and multi-round HSS (tiny samples).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.algorithms.spec import AlgorithmSpec
from repro.bsp.engine import Context
from repro.core.config import HSSConfig
from repro.core.data_movement import Shard, exchange_and_merge
from repro.core.hss import (
    HSS_PHASE_EXCHANGE,
    HSS_PHASE_HISTOGRAM,
    HSS_PHASE_LOCAL_SORT,
    hss_splitter_program,
)
from repro.core.keyspace import make_keyspace
from repro.utils.rng import RngTree

__all__ = ["scanning_sort_program"]


def scanning_sort_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    cfg: HSSConfig,
) -> Generator:
    """SPMD scanning sort for one rank; returns ``(Shard, SplitterStats)``."""
    rng = RngTree(cfg.seed).generator("scanning-sample", ctx.rank)
    keyspace = make_keyspace(keys.dtype, cfg.tag_duplicates)

    with ctx.phase(HSS_PHASE_LOCAL_SORT):
        keys = np.sort(keys, kind="stable")
        ctx.charge_sort(len(keys), key_bytes=keys.dtype.itemsize)

    with ctx.phase(HSS_PHASE_HISTOGRAM):
        splitters, stats = yield from hss_splitter_program(
            ctx,
            keys,
            nparts=ctx.nprocs,
            cfg=cfg,
            keyspace=keyspace,
            rng=rng,
            method="scanning",
        )
        positions = keyspace.bucket_positions(keys, ctx.rank, splitters)

    with ctx.phase(HSS_PHASE_EXCHANGE):
        merged = yield from exchange_and_merge(
            ctx, Shard(keys), positions, node_combining=cfg.node_level
        )
    return merged, stats


register_algorithm(
    AlgorithmSpec(
        name="scanning",
        program=scanning_sort_program,
        config_cls=HSSConfig,
        config_style="cfg",
        balanced=True,
        duplicate_tolerant=True,
        paper_section="3.2",
        description="one-round sample + Axtmann scanning splitters",
        excluded_config_keys=("schedule", "initial_intervals"),
    )
)
