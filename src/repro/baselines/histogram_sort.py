"""Classic histogram sort (Kale & Krishnan; §2.3) — the "Old" of Fig 6.2.

No sampling: the central processor maintains candidate probe keys and
refines them by *bisecting key space*.  Each round it broadcasts probes,
collects the reduced global histogram (exact probe ranks), tightens every
splitter's ``[L, U]`` interval, and emits new probes spread evenly across
each still-open interval's key range.

The round count is bounded by ``log(key range)`` and — unlike HSS — depends
on the *key distribution*: a skewed input packs most ranks into a narrow key
span, so equally spaced key-space probes learn little per round.  The
ChaNGa benchmark (Fig 6.2) exercises exactly this weakness.

Shares :class:`~repro.core.splitters.SplitterState` with HSS, so the two
algorithms differ *only* in probe generation — the cleanest possible
ablation of "sampling vs bisection".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.bsp.engine import Context
from repro.core.data_movement import exchange_and_merge, locally_sorted_shard
from repro.core.splitters import SplitterState
from repro.errors import ConfigError, VerificationError
from repro.utils.arrays import sorted_unique, sorted_unique_pairs

__all__ = [
    "HistogramSortConfig",
    "HistogramSortStats",
    "histogram_sort_program",
    "keyspace_probes",
]


@dataclass(frozen=True)
class HistogramSortConfig:
    """Typed knobs for classic (no-sampling) histogram sort."""

    #: Load-imbalance target for splitter finalization.
    eps: float = 0.05
    #: Probes generated per still-open splitter each bisection round.
    probes_per_splitter: int = 3
    #: Round budget before the run fails with VerificationError.
    max_rounds: int = 128
    #: Warm-start hints: ``((lo, hi), ...)`` key pairs from a previous run
    #: (see :class:`~repro.core.config.HSSConfig.initial_intervals`).  The
    #: first round probes the pair endpoints instead of spreading probes
    #: across the whole key range; ``None`` is a cold start, bit-identical
    #: to the historical path.
    initial_intervals: tuple | None = None

    def __post_init__(self) -> None:
        if self.initial_intervals is not None:
            pairs = tuple(
                (pair[0], pair[1]) for pair in self.initial_intervals
            )
            if not pairs:
                raise ConfigError(
                    "initial_intervals must contain at least one (lo, hi) "
                    "pair (pass None for a cold start)"
                )
            if any(hi < lo for lo, hi in pairs):
                raise ConfigError(
                    "initial_intervals pairs must satisfy lo <= hi"
                )
            object.__setattr__(self, "initial_intervals", pairs)


@dataclass
class HistogramSortStats:
    """Per-round accounting for classic histogram sort."""

    rounds: int = 0
    probes_per_round: list[int] = field(default_factory=list)
    all_finalized: bool = False
    max_rank_error: int = 0

    @property
    def total_probes(self) -> int:
        return sum(self.probes_per_round)


def keyspace_probes(
    state: SplitterState,
    probes_per_splitter: int,
    key_min,
    key_max,
    *,
    adaptive: bool = False,
) -> np.ndarray:
    """Generate the next round's probes by key-space subdivision.

    The classic algorithm (Kale & Krishnan 1993, §2.3): the *first* probe
    set is spread evenly across the whole key range (one probe group per
    splitter); afterwards every unfinalized splitter refines its own
    interval with ``probes_per_splitter`` evenly spaced interior points.
    Splitters sharing an interval generate *identical* probe positions, so
    the broadcast histogram stays ``O(p)`` but a dense key region shared by
    many splitters is refined no faster than one held by a single splitter
    — the distribution sensitivity HSS removes.

    ``adaptive=True`` enables a strictly stronger variant (not in the
    paper): each distinct open interval receives probes proportional to the
    number of splitters inside it, pooling refinement effort into dense
    regions.  Exposed for the refinement-policy ablation.

    Intervals are clipped to the observed key range, since the initial
    sentinels span the whole dtype.
    """
    open_mask = ~state.finalized_mask()
    if not np.any(open_mask):
        return np.empty(0, dtype=state.key_dtype)
    integer_keys = not np.issubdtype(state.key_dtype, np.floating)
    first_round = state.rounds_completed == 0

    lo = state.lo_key[open_mask]
    hi = state.hi_key[open_mask]
    lo = np.maximum(lo, np.asarray(key_min, dtype=state.key_dtype))
    hi = np.minimum(hi, np.asarray(key_max, dtype=state.key_dtype))
    l_arr, h_arr, counts = sorted_unique_pairs(lo, hi)
    valid = h_arr > l_arr
    l_arr, h_arr, counts = l_arr[valid], h_arr[valid], counts[valid]
    if len(l_arr) == 0:
        return np.empty(0, dtype=state.key_dtype)
    if adaptive or first_round:
        m_per = counts.astype(np.int64) * probes_per_splitter
    else:
        m_per = np.full(len(l_arr), probes_per_splitter, dtype=np.int64)

    # Flatten the per-interval probe grids into one batch: position j of
    # interval i is fraction (j+1)/(m_i+1) of the interval's width.  A round
    # can hold thousands of open intervals, so per-interval little arrays
    # would dominate; everything below is one pass over the concatenation.
    total = int(m_per.sum())
    starts = np.concatenate(([0], np.cumsum(m_per)[:-1]))
    ordinal = np.arange(1, total + 1, dtype=np.float64) - np.repeat(
        starts, m_per
    )
    fracs = ordinal / np.repeat(m_per + 1, m_per)
    if integer_keys:
        # Integer-exact interior probes: float spacing would quantize
        # (float64 resolves 63-bit keys only to ~2^11) and stall the
        # bisection once intervals shrink below that granularity.  Widths
        # and offsets live in uint64: for h > l the modular difference is
        # the true width even when a signed subtraction would wrap (e.g. a
        # first-round interval spanning [-2^62, 2^62]), and the final
        # lo + offset wraps back to the correct signed key the same way.
        u_lo = l_arr.astype(np.uint64)
        widths = h_arr.astype(np.uint64) - u_lo
        rep_widths = np.repeat(widths, m_per)
        offsets = np.floor(rep_widths.astype(np.float64) * fracs).astype(np.uint64)
        offsets = np.clip(
            offsets,
            np.uint64(1),
            np.maximum(np.uint64(1), rep_widths - np.uint64(1)),
        )
        # Stay in an integer dtype end-to-end (an int64/float64 mix would
        # upcast to float64 and reintroduce the quantization).
        pts = (np.repeat(u_lo, m_per) + offsets).astype(state.key_dtype)
    else:
        rep_lo = np.repeat(l_arr, m_per)
        pts = rep_lo + np.repeat(h_arr - l_arr, m_per) * fracs
    return sorted_unique(pts.astype(state.key_dtype))


@register_algorithm(
    name="histogram",
    config_cls=HistogramSortConfig,
    supports_payloads=True,
    balanced=True,
    supports_warm_start=True,
    excluded_config_keys=("initial_intervals",),
    paper_section="2.3",
    description="classic histogram sort, key-space bisection (no sampling)",
)
def histogram_sort_program(
    ctx: Context,
    keys: np.ndarray,
    payload: np.ndarray | None = None,
    *,
    eps: float = 0.05,
    seed: int = 0,
    probes_per_splitter: int = 3,
    max_rounds: int = 128,
    initial_intervals: tuple | None = None,
) -> Generator:
    """SPMD classic histogram sort; returns ``(Shard, HistogramSortStats)``.

    Only numeric key dtypes are supported (probe generation needs key
    arithmetic — an inherent limitation of key-space bisection that the
    sampling-based methods do not share).  An optional aligned ``payload``
    array is permuted along with the keys.
    """
    del seed  # deterministic
    if probes_per_splitter < 1:
        raise ConfigError(
            f"probes_per_splitter must be >= 1, got {probes_per_splitter}"
        )
    p = ctx.nprocs
    root = 0

    with ctx.phase("local sort"):
        shard = locally_sorted_shard(ctx, keys, payload)
        keys = shard.keys

    with ctx.phase("histogramming"):
        total_keys = int((yield from ctx.allreduce(np.int64(len(keys)))))
        local_min = keys[0] if len(keys) else np.inf
        local_max = keys[-1] if len(keys) else -np.inf
        key_min = yield from ctx.allreduce(local_min, op="min")
        key_max = yield from ctx.allreduce(local_max, op="max")

        state = (
            SplitterState(
                total_keys,
                p,
                eps,
                key_dtype=keys.dtype,
                initial_intervals=initial_intervals,
            )
            if ctx.rank == root
            else None
        )
        stats = HistogramSortStats() if ctx.rank == root else None

        rounds = 0
        while True:
            if ctx.rank == root:
                if state.all_finalized() or rounds >= max_rounds:
                    command = {"done": True, "splitters": state.final_splitters()}
                elif rounds == 0 and state.initial_intervals is not None:
                    # Warm probe round: cached interval endpoints replace
                    # the first whole-range probe spread.  Their exact
                    # ranks flow through state.update() like any probe, so
                    # a stale cache costs one round but never correctness.
                    command = {"done": False, "probes": state.hint_probes()}
                else:
                    probes = keyspace_probes(
                        state, probes_per_splitter, key_min, key_max
                    )
                    command = {"done": False, "probes": probes}
            else:
                command = None
            command = yield from ctx.bcast(command, root=root)
            if command["done"]:
                splitters = command["splitters"]
                break
            probes = command["probes"]
            counts = np.searchsorted(keys, probes, side="left").astype(np.int64)
            ctx.charge_binary_searches(len(probes), max(1, len(keys)))
            ranks = yield from ctx.reduce(counts, op="sum", root=root)
            rounds += 1
            if ctx.rank == root:
                state.update(probes, ranks)
                stats.rounds = rounds
                stats.probes_per_round.append(len(probes))

        if ctx.rank == root:
            stats.all_finalized = state.all_finalized()
            stats.max_rank_error = state.max_rank_error()
            if not stats.all_finalized:
                raise VerificationError(
                    f"histogram sort did not finalize all splitters within "
                    f"{max_rounds} rounds (max rank error "
                    f"{stats.max_rank_error})"
                )
        stats = yield from ctx.bcast(stats, root=root)
        positions = np.searchsorted(keys, splitters, side="left").astype(np.int64)
        ctx.charge_binary_searches(p - 1, max(1, len(keys)))

    with ctx.phase("data exchange"):
        merged = yield from exchange_and_merge(ctx, shard, positions)
    return merged, stats
