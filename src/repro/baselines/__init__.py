"""Baseline parallel sorting algorithms the paper compares against or reviews.

Every baseline is an SPMD program over the same BSP engine and the same
data-movement phase as HSS, so measured differences isolate the *splitter
determination* strategy — exactly the comparison the paper makes.

=====================================  ===================================
module                                 algorithm (paper section)
=====================================  ===================================
:mod:`repro.baselines.sample_sort`     sample sort with regular (§4.1.2)
                                       and block-random (§4.1.1) sampling
:mod:`repro.baselines.histogram_sort`  classic histogram sort (§2.3) —
                                       key-space probe bisection, the
                                       "Old" series of Fig 6.2
:mod:`repro.baselines.scanning_sort`   one-round sample + scan (§3.2)
:mod:`repro.baselines.over_partition`  over-partitioning (§4.2), with a
                                       contiguous greedy bucket assignment
                                       in place of the shared-memory task
                                       queue (the paper itself notes the
                                       task queue does not extend to
                                       distributed memory)
:mod:`repro.baselines.bitonic`         Batcher bitonic sort (§4.2)
:mod:`repro.baselines.radix`           distributed LSD radix sort (§4.2)
=====================================  ===================================
"""

from repro.baselines.sample_sort import (
    sample_sort_regular_program,
    sample_sort_random_program,
)
from repro.baselines.histogram_sort import histogram_sort_program
from repro.baselines.scanning_sort import scanning_sort_program
from repro.baselines.over_partition import over_partition_program
from repro.baselines.bitonic import bitonic_sort_program
from repro.baselines.radix import radix_sort_program

__all__ = [
    "sample_sort_regular_program",
    "sample_sort_random_program",
    "histogram_sort_program",
    "scanning_sort_program",
    "over_partition_program",
    "bitonic_sort_program",
    "radix_sort_program",
]
