"""Distributed LSD radix sort (§4.2).

Keys are routed by successive digit groups, least-significant first; every
pass performs a full personalized all-to-all — the ``Θ(b/log p)`` rounds of
complete data movement that the paper gives as radix sort's scalability
problem (besides being restricted to integer keys).  Each pass is *stable*
(ranks partition their current data in order; receivers concatenate source
runs in rank order), so after the most-significant pass the data is globally
sorted.

Digits are ``⌊log₂ p⌋`` bits wide so the ``2^b`` digit values map onto the
``p`` processors one-to-one per pass; ``key_bits`` is detected from the
data by default (a global max-reduction), so small key ranges take few
passes — benchmark configs can force the full 64-bit behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.bsp.engine import Context
from repro.errors import ConfigError

__all__ = ["RadixConfig", "RadixStats", "radix_sort_program"]


@dataclass(frozen=True)
class RadixConfig:
    """Typed knobs for distributed LSD radix sort (integer keys only)."""

    #: Significant bits to process; None = detected from the data (a
    #: global max/min reduction).  Benchmarks force 64 for worst-case runs.
    key_bits: int | None = None


@dataclass
class RadixStats:
    """Pass count and movement accounting for a radix run."""

    passes: int
    bits_per_pass: int
    key_bits: int


def _to_unsigned(keys: np.ndarray) -> tuple[np.ndarray, bool]:
    """Map signed integers to order-preserving unsigned (flip the sign bit)."""
    if keys.dtype.kind == "u":
        return keys, False
    if keys.dtype.kind != "i":
        raise ConfigError(
            f"radix sort needs integer keys, got dtype {keys.dtype}"
        )
    bits = keys.dtype.itemsize * 8
    unsigned = keys.astype(np.dtype(f"uint{bits}"))
    return unsigned ^ np.uint64(1 << (bits - 1)).astype(unsigned.dtype), True


def _from_unsigned(keys: np.ndarray, was_signed: bool, dtype: np.dtype) -> np.ndarray:
    if not was_signed:
        return keys.astype(dtype, copy=False)
    bits = dtype.itemsize * 8
    return (keys ^ np.uint64(1 << (bits - 1)).astype(keys.dtype)).astype(dtype)


@register_algorithm(
    name="radix",
    config_cls=RadixConfig,
    balanced=False,
    duplicate_tolerant=True,
    paper_section="4.2",
    description="parallel LSD radix sort (integer keys, full data movement)",
)
def radix_sort_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    eps: float = 0.05,
    seed: int = 0,
    key_bits: int | None = None,
) -> Generator:
    """SPMD LSD radix sort; returns ``(np.ndarray, RadixStats)``.

    ``key_bits`` limits the digit passes (default: detected from the global
    maximum key — the number of significant bits actually present).
    """
    del eps, seed  # radix is deterministic; balance is input-determined
    p = ctx.nprocs
    dtype = keys.dtype
    work, was_signed = _to_unsigned(keys)

    if p == 1:
        out = np.sort(work, kind="stable")
        ctx.charge_sort(len(out), key_bytes=dtype.itemsize)
        return _from_unsigned(out, was_signed, dtype), RadixStats(0, 0, 0)

    bits_per_pass = max(1, int(np.log2(p)))
    if (1 << bits_per_pass) > p:
        bits_per_pass -= 1
    nbuckets = 1 << bits_per_pass

    max_bits = dtype.itemsize * 8
    if key_bits is None:
        # Only bits where keys actually differ need processing: bits above
        # bit_length(max XOR min) are constant across the input, and a pass
        # over a constant digit would route every key to one rank.
        local_max = work.max() if len(work) else work.dtype.type(0)
        local_min = work.min() if len(work) else ~work.dtype.type(0)
        global_max = yield from ctx.allreduce(local_max, op="max")
        global_min = yield from ctx.allreduce(local_min, op="min")
        key_bits = max(1, (int(global_max) ^ int(global_min)).bit_length())
    key_bits = min(key_bits, max_bits)
    passes = -(-key_bits // bits_per_pass)

    with ctx.phase("radix passes"):
        shift = 0
        for _ in range(passes):
            digits = (work >> work.dtype.type(shift)) & work.dtype.type(
                nbuckets - 1
            )
            # Stable partition by digit: counting sort order.
            order = np.argsort(digits, kind="stable")
            work = work[order]
            digits = digits[order]
            ctx.charge_sort(len(work), key_bytes=dtype.itemsize)
            bounds = np.searchsorted(digits, np.arange(nbuckets + 1))
            parts = [
                work[bounds[d]: bounds[d + 1]] for d in range(nbuckets)
            ]
            # Digit d goes to rank d (nbuckets <= p); pad with empties.
            parts.extend(
                np.empty(0, dtype=work.dtype) for _ in range(p - nbuckets)
            )
            received = yield from ctx.alltoall(parts)
            work = (
                np.concatenate([r for r in received if len(r)])
                if any(len(r) for r in received)
                else work[:0]
            )
            ctx.charge_bytes(len(work) * dtype.itemsize)
            shift += bits_per_pass

    return (
        _from_unsigned(work, was_signed, dtype),
        RadixStats(passes=passes, bits_per_pass=bits_per_pass, key_bits=key_bits),
    )
