"""Batcher bitonic sort on a hypercube of processors (§4.2).

The classical merge-based baseline: ``log₂p·(log₂p+1)/2`` compare-exchange
stages, each exchanging a rank's *entire* local array with a partner — the
``Θ(log p)`` full-data movements that make merge-based sorts uncompetitive
when ``N ≫ p``, which is the paper's stated reason for focusing on
splitter-based algorithms.  Including it lets the shootout benchmark show
that crossover directly.

Implementation: the standard block-bitonic scheme — each rank keeps its
local array sorted; a compare-exchange with partner ``rank ^ (1<<j)`` merges
the two arrays and keeps the lower or upper half according to the stage's
direction bit.  Requires ``p`` a power of two and equal local sizes (the
textbook preconditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.bsp.engine import Context
from repro.errors import ConfigError

__all__ = ["BitonicConfig", "bitonic_sort_program"]


@dataclass(frozen=True)
class BitonicConfig:
    """Bitonic sort has no knobs: deterministic, exactly balanced blocks."""


def _keep_half(
    mine: np.ndarray, theirs: np.ndarray, keep_low: bool
) -> np.ndarray:
    """Merge two sorted arrays, keep the lower or upper ``len(mine)`` keys."""
    n = len(mine)
    if keep_low:
        # The n smallest of the union: merge from the front.
        merged = np.concatenate((mine, theirs))
        merged.sort(kind="stable")
        return merged[:n]
    merged = np.concatenate((mine, theirs))
    merged.sort(kind="stable")
    return merged[len(theirs):]


@register_algorithm(
    name="bitonic",
    config_cls=BitonicConfig,
    balanced=False,
    duplicate_tolerant=True,
    paper_section="4.2",
    description="Batcher bitonic sort on a hypercube (power-of-two p)",
)
def bitonic_sort_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    eps: float = 0.05,
    seed: int = 0,
) -> Generator:
    """SPMD bitonic sort; returns the rank's sorted block (``np.ndarray``).

    Raises :class:`~repro.errors.ConfigError` unless ``p`` is a power of two
    and all ranks hold the same number of keys.
    """
    del eps, seed  # bitonic sort is deterministic and exactly balanced
    p = ctx.nprocs
    if p & (p - 1):
        raise ConfigError(f"bitonic sort requires a power-of-two p, got {p}")

    sizes = yield from ctx.allgather(np.int64(len(keys)))
    if len(set(int(s) for s in sizes)) != 1:
        raise ConfigError(
            f"bitonic sort requires equal local sizes, "
            f"got {sorted(set(int(s) for s in sizes))}"
        )

    with ctx.phase("local sort"):
        keys = np.sort(keys, kind="stable")
        ctx.charge_sort(len(keys), key_bytes=keys.dtype.itemsize)

    if p == 1:
        return keys

    log_p = p.bit_length() - 1
    with ctx.phase("bitonic merge"):
        for i in range(log_p):
            for j in range(i, -1, -1):
                partner = ctx.rank ^ (1 << j)
                ascending = ((ctx.rank >> (i + 1)) & 1) == 0
                theirs = yield from ctx.exchange(partner, keys)
                keep_low = (ctx.rank < partner) == ascending
                keys = _keep_half(keys, theirs, keep_low)
                ctx.charge_merge(2 * len(keys), 2, key_bytes=keys.dtype.itemsize)
    return keys
