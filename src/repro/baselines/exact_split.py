"""Exact splitting à la Cheng, Edelman, Gilbert & Shah (§2.1).

The paper's problem statement cites an algorithm that finds *exact*
splitters — perfect ``N/p`` load balance — using ``O(p·log N)`` rounds of
communication, noting it is "largely of theoretical interest" because no
practical application demands zero imbalance.  We implement it as the
``ε → 0`` limit of the histogramming machinery: iterative parallel
multi-selection that refines every splitter's key interval by median-rank
probing until the key of rank exactly ``⌈N·i/p⌉`` is identified.

Each round histograms one probe per open splitter, chosen as the key-space
midpoint of the splitter's current interval, so the rank interval at least
halves in expectation for continuous-ish key distributions and the *key*
interval halves deterministically — giving the ``log(key range)`` round
bound the paper quotes for bisection-style refinement.

This is the extreme point of the sample-size/rounds trade-off the paper
maps: scanning (1 round, ``2p/ε`` sample) … HSS (``log log p/ε`` rounds,
``O(p)``/round) … exact splitting (``log N`` rounds, ``p``/round, ε = 0).

Only numeric key dtypes are supported (interval midpoints need key
arithmetic), and the input must be duplicate-free for exact targets to be
achievable (use §4.3 tagging upstream otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.algorithms.registry import register_algorithm
from repro.bsp.engine import Context
from repro.core.data_movement import Shard, exchange_and_merge
from repro.errors import VerificationError

__all__ = ["ExactSplitConfig", "ExactSplitStats", "exact_split_sort_program"]


@dataclass(frozen=True)
class ExactSplitConfig:
    """Typed knobs for exact splitting (ε = 0 multi-selection)."""

    #: Verification budget only — the algorithm itself always targets
    #: perfect balance.
    eps: float = 0.05
    #: Bisection-round budget.
    max_rounds: int = 256


@dataclass
class ExactSplitStats:
    """Round accounting for the exact-splitting run."""

    rounds: int = 0
    probes_total: int = 0
    all_exact: bool = False

    @property
    def num_rounds(self) -> int:
        return self.rounds


def _midpoint(lo, hi, dtype):
    """Overflow-safe key-space midpoint (works on the width)."""
    if np.issubdtype(dtype, np.floating):
        return lo + (hi - lo) / 2.0
    width = int(hi) - int(lo)
    return dtype.type(int(lo) + width // 2)


@register_algorithm(
    name="exact-split",
    config_cls=ExactSplitConfig,
    balanced=True,
    paper_section="2.1",
    description="exact splitters / perfect balance (Cheng et al.)",
)
def exact_split_sort_program(
    ctx: Context,
    keys: np.ndarray,
    *,
    eps: float = 0.05,
    seed: int = 0,
    max_rounds: int = 256,
) -> Generator:
    """SPMD exact-splitting sort; returns ``(Shard, ExactSplitStats)``.

    ``eps`` is accepted for registry-signature uniformity but ignored —
    this algorithm always targets perfect balance (splitter ``i`` is the
    key of exact rank ``⌈N·i/p⌉``; output loads differ by at most one key).
    """
    del eps, seed
    p = ctx.nprocs
    root = 0
    dtype = keys.dtype

    with ctx.phase("local sort"):
        keys = np.sort(keys, kind="stable")
        ctx.charge_sort(len(keys), key_bytes=dtype.itemsize)

    with ctx.phase("exact selection"):
        total = int((yield from ctx.allreduce(np.int64(len(keys)))))
        local_min = keys[0] if len(keys) else None
        local_max = keys[-1] if len(keys) else None
        key_min = yield from ctx.allreduce(
            local_min if local_min is not None else np.inf, op="min"
        )
        key_max = yield from ctx.allreduce(
            local_max if local_max is not None else -np.inf, op="max"
        )

        if ctx.rank == root:
            targets = -(-(np.arange(1, p, dtype=np.int64) * total) // p)  # ceil
            lo_key = np.full(p - 1, key_min, dtype=dtype)
            hi_key = np.full(p - 1, key_max, dtype=dtype)
            lo_rank = np.zeros(p - 1, dtype=np.int64)
            hi_rank = np.full(p - 1, total, dtype=np.int64)
            found_key = np.empty(p - 1, dtype=dtype)
            found = np.zeros(p - 1, dtype=bool)
            stats = ExactSplitStats()
        else:
            stats = None

        rounds = 0
        while True:
            if ctx.rank == root:
                open_idx = np.where(~found)[0]
                if len(open_idx) == 0 or rounds >= max_rounds:
                    command = {"done": True, "splitters": found_key.copy()}
                else:
                    probes = np.array(
                        [
                            _midpoint(lo_key[i], hi_key[i], dtype)
                            for i in open_idx
                        ],
                        dtype=dtype,
                    )
                    order = np.argsort(probes, kind="stable")
                    command = {
                        "done": False,
                        "probes": probes[order],
                        "open": open_idx[order],
                    }
            else:
                command = None
            command = yield from ctx.bcast(command, root=root)
            if command["done"]:
                splitters = command["splitters"]
                break

            probes = command["probes"]
            counts = np.searchsorted(keys, probes, side="left").astype(np.int64)
            ctx.charge_binary_searches(len(probes), max(1, len(keys)))
            ranks = yield from ctx.reduce(counts, op="sum", root=root)
            rounds += 1

            if ctx.rank == root:
                stats.rounds = rounds
                stats.probes_total += len(probes)
                for probe, rank, i in zip(probes, ranks, command["open"]):
                    target = targets[i]
                    # <=/>= on the rank comparisons: a probe tying the
                    # current bound still tightens the *key* interval (the
                    # midpoint is strictly interior), which is what drives
                    # the pinch below.
                    if rank >= target and rank <= hi_rank[i]:
                        hi_rank[i] = rank
                        hi_key[i] = probe
                    if rank < target and rank >= lo_rank[i]:
                        lo_rank[i] = rank
                        lo_key[i] = probe
                    # Exact hit: the smallest key with global rank >= target
                    # has rank == target exactly when the probe interval
                    # pinches to width <= 1 in key space or the rank lands.
                    if rank == target:
                        found[i] = True
                        found_key[i] = probe
                    elif not np.issubdtype(dtype, np.floating) and int(
                        hi_key[i]
                    ) - int(lo_key[i]) <= 1:
                        found[i] = True
                        found_key[i] = hi_key[i]

        if ctx.rank == root:
            stats.all_exact = bool(np.all(found))
            if not stats.all_exact:
                raise VerificationError(
                    f"exact splitting did not converge in {max_rounds} rounds "
                    "(duplicate keys? tag upstream)"
                )
        stats = yield from ctx.bcast(stats, root=root)
        positions = np.searchsorted(keys, splitters, side="left").astype(np.int64)
        ctx.charge_binary_searches(p - 1, max(1, len(keys)))

    with ctx.phase("data exchange"):
        merged = yield from exchange_and_merge(ctx, Shard(keys), positions)
    return merged, stats
