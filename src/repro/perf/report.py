"""Text renderers for figure/table data produced by the benchmark harness.

The paper's figures are plots; our harness prints the same series as
aligned text tables so ``pytest benchmarks/`` output is directly comparable
against the paper (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_series_table", "format_stacked_table"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str = "",
) -> str:
    """Render one-line-per-x table with one column per series (Fig 4.1 style)."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values, expected {len(x_values)}"
            )
    headers = [x_label] + list(series)
    rows = [headers]
    for i, x in enumerate(x_values):
        rows.append([_fmt(x)] + [_fmt(series[name][i]) for name in series])
    widths = [max(len(r[c]) for r in rows) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    return "\n".join(lines)


def format_stacked_table(
    x_label: str,
    x_values: Sequence[object],
    stacks: Sequence[Mapping[str, float]],
    title: str = "",
) -> str:
    """Render stacked-bar data (Fig 6.1 style): one row per x, one column per
    stack component, totals last."""
    if len(stacks) != len(x_values):
        raise ValueError("stacks must align with x_values")
    components: list[str] = []
    for stack in stacks:
        for key in stack:
            if key not in components:
                components.append(key)
    series = {
        comp: [stack.get(comp, 0.0) for stack in stacks] for comp in components
    }
    return format_series_table(x_label, x_values, series, title=title)
