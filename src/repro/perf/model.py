"""Phase-time models for weak scaling (Fig 6.1) and ChaNGa splitting (Fig 6.2).

Every formula here mirrors what the BSP engine charges for the real SPMD
programs — same :class:`~repro.bsp.cost_model.CostModel` collective prices,
same comparison/byte computation charges — just evaluated at machine scales
the simulator cannot materialize (``N = p·10⁶`` keys).  The inputs that
depend on algorithm behaviour (round counts, per-round sample sizes) are
*measured* from rank-space executions, not assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.bsp.cost_model import CostModel
from repro.bsp.machine import MachineModel
from repro.bsp.node import NodeLayout
from repro.core.hss import SplitterStats
from repro.machines import MachineSpec, machine_summary, resolve_machine

__all__ = [
    "PhaseTimes",
    "histogram_round_cost",
    "model_splitting_time",
    "model_weak_scaling",
]


@dataclass(frozen=True)
class PhaseTimes:
    """Seconds per phase — the stacked bars of Fig 6.1."""

    local_sort: float
    histogramming: float
    data_exchange: float
    within_node: float = 0.0
    #: Resolved machine the phases were priced on
    #: (``{name, topology, cores_per_node}``); empty for hand-built values.
    machine: Mapping[str, object] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.local_sort
            + self.histogramming
            + self.data_exchange
            + self.within_node
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "local sort": self.local_sort,
            "histogramming": self.histogramming,
            "data exchange": self.data_exchange,
            "within-node sort": self.within_node,
            "total": self.total,
        }


def histogram_round_cost(
    cost_model: CostModel,
    machine: MachineModel,
    *,
    sample_keys: int,
    open_intervals: int,
    local_keys: float,
    key_bytes: int,
    style: str = "hss",
) -> float:
    """Modeled seconds for one histogramming round.

    ``style="hss"`` prices the four collectives of an HSS round (interval
    broadcast, sample gather, probe broadcast, histogram reduction) plus
    the computation the SPMD program charges (interval location, central
    sample sort, local histogram binary searches).

    ``style="bisect"`` prices a classic histogram-sort round (§2.3): the
    central processor *generates* probes by key-space subdivision, so there
    is no sampling gather and no interval broadcast — just the probe
    broadcast and the histogram reduction.
    """
    if style not in ("hss", "bisect"):
        raise ValueError(f"unknown round style {style!r}")
    S = sample_keys * key_bytes
    H = sample_keys * 8  # int64 counts
    intervals_bytes = open_intervals * 2 * key_bytes

    if style == "hss":
        ops = (
            ("bcast", intervals_bytes),
            ("gather", S),
            ("bcast", S),
            ("reduce", H),
        )
    else:
        ops = (("bcast", S), ("reduce", H))

    comm = 0.0
    for op, nbytes in ops:
        cost = cost_model.price(op, max_bytes=nbytes, total_bytes=nbytes)
        comm += cost.comm_seconds + cost.compute_seconds

    compute = 0.0
    lg_local = math.log2(max(2.0, local_keys))
    if style == "hss":
        # Sampling: locate intervals in the sorted local input.
        compute += machine.key_compare_seconds(
            2 * max(1, open_intervals) * lg_local
        )
        # Central sample sort.
        if sample_keys > 1:
            compute += machine.key_compare_seconds(
                sample_keys * math.log2(sample_keys)
            )
            compute += machine.copy_seconds(2 * S)
    else:
        # Central probe generation: linear in the probe count.
        compute += machine.copy_seconds(2 * S)
    # Local histogram: one binary search per probe over the local input.
    compute += machine.key_compare_seconds(sample_keys * lg_local)
    # Per-round runtime synchronization (quiescence between refinement
    # rounds); see MachineModel.round_sync_per_level.
    sync = machine.round_sync_per_level * math.log2(max(2, cost_model.nprocs))
    return comm + compute + sync


def model_splitting_time(
    machine: str | MachineSpec | MachineModel,
    *,
    nprocs: int,
    nbuckets: int,
    rounds: list[tuple[int, int]],
    local_keys: float,
    key_bytes: int = 8,
    node_layout: NodeLayout | None = None,
    style: str = "hss",
) -> float:
    """Total splitter-determination seconds.

    ``rounds`` is a list of ``(sample_keys, open_intervals)`` per round —
    taken from a measured :class:`SplitterStats` (HSS; ``style="hss"``) or
    probe counts (classic histogram sort; ``style="bisect"``, where
    ``sample_keys`` plays the probe-count role).  ``machine`` may be a
    registered machine name, a spec, or a pre-built model.
    """
    machine = resolve_machine(machine)
    cost_model = CostModel(machine, nprocs, node_layout)
    total = 0.0
    for sample_keys, open_intervals in rounds:
        total += histogram_round_cost(
            cost_model,
            machine,
            sample_keys=sample_keys,
            open_intervals=max(1, open_intervals),
            local_keys=local_keys,
            key_bytes=key_bytes,
            style=style,
        )
    # Final splitter broadcast.
    cost = cost_model.price(
        "bcast",
        max_bytes=(nbuckets - 1) * key_bytes,
        total_bytes=(nbuckets - 1) * key_bytes,
    )
    return total + cost.comm_seconds


def model_weak_scaling(
    machine: str | MachineSpec | MachineModel,
    *,
    nprocs: int,
    keys_per_core: float,
    splitter_stats: SplitterStats,
    key_bytes: int = 8,
    payload_bytes: int = 4,
    node_level: bool = True,
) -> PhaseTimes:
    """Model the three stacked phases of Fig 6.1 for one machine point.

    Parameters
    ----------
    machine:
        Machine reference — a registered name (``"mira-like-bgq"``), a
        :class:`~repro.machines.MachineSpec`, or a pre-built
        :class:`~repro.bsp.machine.MachineModel`.
    nprocs:
        Total cores ``p``.
    keys_per_core:
        Weak-scaling grain (10⁶ in the paper).
    splitter_stats:
        Measured splitter-phase behaviour for this configuration, e.g. from
        :class:`~repro.core.rankspace.RankSpaceSimulator` with
        ``nparts = nnodes`` when ``node_level``.
    node_level:
        Apply the §6.1 optimizations (node-level partitioning + message
        combining + within-node sample sort).
    """
    machine = resolve_machine(machine)
    record = key_bytes + payload_bytes
    layout = (
        NodeLayout(nprocs, machine.cores_per_node)
        if node_level and machine.cores_per_node > 1
        else None
    )
    cost_model = CostModel(machine, nprocs, layout)
    n_local = float(keys_per_core)

    # --- local sort -------------------------------------------------------
    local_sort = machine.compare_seconds(
        n_local * math.log2(max(2.0, n_local))
    ) + machine.copy_seconds(2 * n_local * record)

    # --- histogramming (measured rounds) -----------------------------------
    histogramming = model_splitting_time(
        machine,
        nprocs=nprocs,
        nbuckets=splitter_stats.nparts,
        rounds=[
            (r.sample_size, max(1, r.open_intervals_after))
            for r in splitter_stats.rounds
        ],
        local_keys=n_local,
        key_bytes=key_bytes,
        node_layout=layout,
    )

    # --- data exchange ------------------------------------------------------
    V = n_local * record  # per-core send (≈ receive) volume
    cost = cost_model.price(
        "alltoallv",
        max_bytes=int(2 * V),
        total_bytes=int(V * nprocs),
        node_combining=node_level and layout is not None,
    )
    merge = machine.compare_seconds(
        n_local * math.log2(max(2, nprocs))
    ) + machine.copy_seconds(2 * n_local * record)
    data_exchange = cost.comm_seconds + cost.compute_seconds + merge

    # --- within-node redistribution (shared memory) -------------------------
    within = 0.0
    if node_level and layout is not None and machine.cores_per_node > 1:
        c = machine.cores_per_node
        # Regular-sampling sample sort over c cores in shared memory: one
        # node-local gather/bcast/alltoall plus a merge pass.
        within += machine.copy_seconds(2 * n_local * record)
        within += machine.compare_seconds(n_local * math.log2(max(2, c)))
        within += machine.resolved().node_alpha * 3 * math.log2(max(2, c))

    return PhaseTimes(
        local_sort=local_sort,
        histogramming=histogramming,
        data_exchange=data_exchange,
        within_node=within,
        machine=machine_summary(machine),
    )
