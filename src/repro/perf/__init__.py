"""Performance modeling for the paper's time-based figures (6.1, 6.2).

The splitter phase's *event counts* (rounds, per-round sample sizes) come
from real algorithm executions — the rank-space simulator at scale — and
are exact.  The *seconds* for each phase come from the same α–β/γ cost
model (:mod:`repro.bsp.cost_model`) the BSP engine charges, evaluated at the
paper's machine scale (32K cores of a 5-D-torus BG/Q with 10⁶ keys/core,
which cannot be materialized directly).  Shapes — which phase dominates,
how each grows with ``p`` — are therefore driven by measured algorithm
behaviour plus the analysis the paper itself uses.
"""

from repro.perf.model import (
    PhaseTimes,
    model_weak_scaling,
    model_splitting_time,
    histogram_round_cost,
)
from repro.perf.report import format_series_table, format_stacked_table

__all__ = [
    "PhaseTimes",
    "model_weak_scaling",
    "model_splitting_time",
    "histogram_round_cost",
    "format_series_table",
    "format_stacked_table",
]
