"""Argument-validation helpers used across the library.

These exist so configuration mistakes fail loudly at construction time with a
:class:`repro.errors.ConfigError`, rather than surfacing as confusing numeric
errors deep inside a simulated superstep.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError

__all__ = ["require", "check_positive_int", "check_probability", "check_epsilon"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ConfigError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue != value or ivalue < 1:
        raise ConfigError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_probability(value: Any, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it as ``float``."""
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")
    return fvalue


def check_epsilon(value: Any, name: str = "eps") -> float:
    """Validate a load-imbalance threshold ``0 < eps <= 1``.

    The paper treats eps as a small constant (2%–5% in the experiments).
    Values above 1 would make several sampling-ratio formulas degenerate
    (ratios below one key per processor), so we reject them.
    """
    fvalue = float(value)
    if not 0.0 < fvalue <= 1.0:
        raise ConfigError(f"{name} must lie in (0, 1], got {value!r}")
    return fvalue
