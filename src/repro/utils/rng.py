"""Deterministic random-number-generator management.

Parallel algorithms that sample independently on every simulated processor
need *statistically independent but reproducible* random streams.  NumPy's
``SeedSequence.spawn`` gives exactly that: child sequences are independent by
construction and fully determined by the parent seed.  Everything random in
this library flows through :class:`RngTree` so a single integer seed pins the
entire experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngTree", "spawn_rngs"]


class RngTree:
    """A tree of named, reproducible random generators.

    Each distinct ``name`` (optionally with an integer index, e.g. a rank)
    deterministically maps to an independent :class:`numpy.random.Generator`.
    Requesting the same name twice returns generators seeded identically, so
    components can re-derive their stream without threading generator objects
    through every call.

    Examples
    --------
    >>> tree = RngTree(1234)
    >>> g1 = tree.generator("sampling", 0)
    >>> g2 = tree.generator("sampling", 1)
    >>> bool(g1.integers(100) == RngTree(1234).generator("sampling", 0).integers(100))
    True
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)

    @property
    def seed(self) -> int | None:
        """The root seed this tree was constructed with."""
        return self._seed

    def _child(self, *key: object) -> np.random.SeedSequence:
        # Hash the key path into spawn_key-compatible integers.  We avoid
        # Python's salted ``hash`` for strings; use a stable FNV-1a instead.
        ints: list[int] = []
        for part in key:
            if isinstance(part, (int, np.integer)):
                ints.append(int(part) & 0xFFFFFFFF)
            else:
                h = 0xCBF29CE484222325
                for byte in str(part).encode():
                    h ^= byte
                    h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
                ints.append(h & 0xFFFFFFFF)
                ints.append((h >> 32) & 0xFFFFFFFF)
        return np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key) + tuple(ints),
        )

    def generator(self, name: str, index: int = 0) -> np.random.Generator:
        """Return the generator for stream ``(name, index)``."""
        return np.random.default_rng(self._child(name, index))

    def generators(self, name: str, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent generators for ranks ``0..count-1``."""
        return [self.generator(name, i) for i in range(count)]

    def subtree(self, name: str) -> "RngTree":
        """Derive an independent child tree (for nested components)."""
        child = RngTree.__new__(RngTree)
        child._seed = None
        child._root = self._child("subtree", name)
        return child


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed.

    Convenience wrapper used where a flat list of per-rank generators is all
    that is needed.
    """
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def rng_or_default(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    """Coerce ``rng`` into a Generator (int = seed, None = fresh default)."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
