"""Small shared utilities: seeded RNG trees, bit tricks, validation helpers."""

from repro.utils.rng import RngTree, spawn_rngs
from repro.utils.bits import (
    interleave_bits_3d,
    deinterleave_bits_3d,
    morton_encode_3d,
    morton_decode_3d,
    part1by2,
    compact1by2,
)
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_epsilon,
    require,
)

__all__ = [
    "RngTree",
    "spawn_rngs",
    "interleave_bits_3d",
    "deinterleave_bits_3d",
    "morton_encode_3d",
    "morton_decode_3d",
    "part1by2",
    "compact1by2",
    "check_positive_int",
    "check_probability",
    "check_epsilon",
    "require",
]
