"""Small vectorized array helpers shared by the hot paths."""

from __future__ import annotations

import numpy as np

__all__ = ["sorted_unique", "sorted_unique_pairs"]


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` via sort + adjacent-diff dedup.

    NumPy's hash-based ``np.unique`` is dramatically slower than a plain
    sort for the million-element integer draws the sampling hot paths
    produce (~50x measured on numpy 2.4); callers only ever need the
    sorted-set semantics, so use the cheap construction.

    Handles structured dtypes too (the §4.3 tagged probe arrays): the
    sort is lexicographic by field, matching ``np.unique``; only the
    adjacent comparison needs the operator form (the ``not_equal`` ufunc
    rejects void dtypes).
    """
    if len(values) <= 1:
        return values.copy()
    ordered = np.sort(values)
    mask = np.empty(len(ordered), dtype=bool)
    mask[0] = True
    if ordered.dtype.names is not None:
        mask[1:] = ordered[1:] != ordered[:-1]
    else:
        np.not_equal(ordered[1:], ordered[:-1], out=mask[1:])
    return ordered[mask]


def sorted_unique_pairs(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique ``(lo, hi)`` pairs with multiplicities, sorted lexicographically.

    Equivalent to ``np.unique(np.column_stack((lo, hi)), axis=0,
    return_counts=True)`` — which stacks, void-views and hash-buckets —
    but built from one ``lexsort`` plus an adjacent-diff scan, the same
    construction as :func:`sorted_unique`.  Returns ``(lo_u, hi_u,
    counts)`` as three aligned arrays.
    """
    if len(lo) == 0:
        return lo.copy(), hi.copy(), np.zeros(0, dtype=np.int64)
    order = np.lexsort((hi, lo))  # last key is primary: lo, then hi
    lo_s, hi_s = lo[order], hi[order]
    new = np.empty(len(lo_s), dtype=bool)
    new[0] = True
    np.logical_or(
        lo_s[1:] != lo_s[:-1], hi_s[1:] != hi_s[:-1], out=new[1:]
    )
    starts = np.flatnonzero(new)
    counts = np.diff(np.append(starts, len(lo_s))).astype(np.int64)
    return lo_s[starts], hi_s[starts], counts
