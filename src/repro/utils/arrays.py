"""Small vectorized array helpers shared by the hot paths."""

from __future__ import annotations

import numpy as np

__all__ = ["sorted_unique"]


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` via sort + adjacent-diff dedup.

    NumPy's hash-based ``np.unique`` is dramatically slower than a plain
    sort for the million-element integer draws the sampling hot paths
    produce (~50x measured on numpy 2.4); callers only ever need the
    sorted-set semantics, so use the cheap construction.
    """
    if len(values) <= 1:
        return values.copy()
    ordered = np.sort(values)
    mask = np.empty(len(ordered), dtype=bool)
    mask[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=mask[1:])
    return ordered[mask]
