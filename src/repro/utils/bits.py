"""Bit-interleaving utilities (Morton / Z-order space-filling curve keys).

ChaNGa (§6.3 of the paper) sorts particles by space-filling-curve keys derived
from 3-D positions.  We reproduce that key structure with 63-bit Morton codes:
21 bits per coordinate interleaved as ``z20 y20 x20 ... z0 y0 x0``.  All
routines are fully vectorized over NumPy uint64 arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "part1by2",
    "compact1by2",
    "interleave_bits_3d",
    "deinterleave_bits_3d",
    "morton_encode_3d",
    "morton_decode_3d",
    "MORTON_BITS_PER_DIM",
    "MORTON_COORD_MAX",
]

#: Bits of resolution per spatial dimension (3 * 21 = 63 bits total).
MORTON_BITS_PER_DIM = 21

#: Largest representable integer coordinate.
MORTON_COORD_MAX = (1 << MORTON_BITS_PER_DIM) - 1

# Magic-number spreading constants for 21-bit -> 63-bit dilation, the standard
# "part-1-by-2" sequence extended to 64-bit lanes.
_SPREAD_MASKS = (
    (np.uint64(0x1F00000000FFFF), np.uint64(32)),
    (np.uint64(0x1F0000FF0000FF), np.uint64(16)),
    (np.uint64(0x100F00F00F00F00F), np.uint64(8)),
    (np.uint64(0x10C30C30C30C30C3), np.uint64(4)),
    (np.uint64(0x1249249249249249), np.uint64(2)),
)


def part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element, inserting two zeros between bits.

    ``b20 b19 ... b0`` becomes ``b20 0 0 b19 0 0 ... b0``.

    Parameters
    ----------
    x : array of uint64 (or castable), values must fit in 21 bits.

    Returns
    -------
    uint64 array of the same shape.
    """
    x = np.asarray(x, dtype=np.uint64) & np.uint64(MORTON_COORD_MAX)
    for mask, shift in _SPREAD_MASKS:
        x = (x | (x << shift)) & mask
    return x


def compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`part1by2`: gather every third bit back together."""
    x = np.asarray(x, dtype=np.uint64) & np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(MORTON_COORD_MAX)
    return x


def interleave_bits_3d(
    ix: np.ndarray, iy: np.ndarray, iz: np.ndarray
) -> np.ndarray:
    """Interleave three 21-bit integer coordinate arrays into Morton codes."""
    return (
        part1by2(ix)
        | (part1by2(iy) << np.uint64(1))
        | (part1by2(iz) << np.uint64(2))
    )


def deinterleave_bits_3d(
    code: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split Morton codes back into their three coordinate arrays."""
    code = np.asarray(code, dtype=np.uint64)
    return (
        compact1by2(code),
        compact1by2(code >> np.uint64(1)),
        compact1by2(code >> np.uint64(2)),
    )


def morton_encode_3d(
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    *,
    lo: float = 0.0,
    hi: float = 1.0,
) -> np.ndarray:
    """Encode floating-point 3-D positions into 63-bit Morton keys.

    Positions are clipped to ``[lo, hi]``, quantized to 21 bits per dimension
    and bit-interleaved.  This mirrors how tree-based N-body codes (ChaNGa,
    PKDGRAV) derive sort keys from particle coordinates: nearby particles get
    nearby keys, so clustered matter produces *heavily skewed* key
    distributions — the stress case that motivates histogramming over plain
    sample sort.

    Returns
    -------
    uint64 array of Morton keys in ``[0, 2**63)``.
    """
    span = hi - lo
    if span <= 0:
        raise ValueError(f"empty coordinate range: lo={lo} hi={hi}")
    scale = MORTON_COORD_MAX / span

    def quantize(v: np.ndarray) -> np.ndarray:
        q = np.clip((np.asarray(v, dtype=np.float64) - lo) * scale, 0, MORTON_COORD_MAX)
        return q.astype(np.uint64)

    return interleave_bits_3d(quantize(x), quantize(y), quantize(z))


def morton_decode_3d(
    code: np.ndarray, *, lo: float = 0.0, hi: float = 1.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode Morton keys back to (approximate) cell-corner positions."""
    ix, iy, iz = deinterleave_bits_3d(code)
    scale = (hi - lo) / MORTON_COORD_MAX
    return (
        ix.astype(np.float64) * scale + lo,
        iy.astype(np.float64) * scale + lo,
        iz.astype(np.float64) * scale + lo,
    )
