"""Human-readable renderings of bench documents and comparisons.

``benchmarks/results/*.txt`` artifacts are produced by each suite's
registered renderer from the *same* :class:`CaseResult` data that lands in
``bench.json`` — :func:`render_suite` is the bridge.  :func:`render_document`
summarizes a whole run and :func:`render_comparison` formats the regression
gate's verdict for CI logs.
"""

from __future__ import annotations

from repro.bench.compare import CompareReport
from repro.bench.registry import get_suite
from repro.bench.schema import BenchDocument, SuiteRun
from repro.perf.report import format_series_table

__all__ = ["render_suite", "render_document", "render_comparison"]


def render_suite(run: SuiteRun) -> str:
    """Render one suite's cases as its text-table artifact body."""
    bench = get_suite(run.suite)
    return bench.render(run.cases, run.params)


def render_document(doc: BenchDocument) -> str:
    """One summary table for a whole run (suite, cases, headline walls)."""
    names = doc.suite_names()
    rows = {
        "tier": [doc.suite(n).tier for n in names],
        "cases": [len(doc.suite(n).cases) for n in names],
        "wall (s)": [round(doc.suite(n).wall_s, 2) for n in names],
    }
    header = (
        f"repro bench — tier={doc.tier}, {len(doc.suites)} suites, "
        f"{sum(len(s.cases) for s in doc.suites)} cases, "
        f"{len(doc.algorithms())} algorithms, wall {doc.wall_s:.1f}s"
    )
    prov = doc.provenance
    if prov:
        header += (
            f"\n(python {prov.get('python', '?')}, numpy "
            f"{prov.get('numpy', '?')}, {prov.get('platform', '?')})"
        )
    return header + "\n\n" + format_series_table("suite", names, rows)


def render_comparison(report: CompareReport, *, verbose: bool = False) -> str:
    """Format the regression gate's outcome for terminal/CI output."""
    lines = [report.summary()]
    for suite in report.missing_suites:
        lines.append(f"  missing suite: {suite}")
    for case in report.missing_cases:
        lines.append(f"  missing case: {case}")
    for metric in report.missing_metrics:
        lines.append(f"  missing gated metric: {metric}")
    for delta in report.regressions:
        lines.append(f"  REGRESSED {delta.describe()}")
    if report.improvements:
        lines.append("improvements:")
        for delta in report.improvements:
            lines.append(f"  {delta.describe()}")
    if report.new_suites:
        lines.append(
            "new suites (not in baseline, not gated — refresh the baseline): "
            + ", ".join(report.new_suites)
        )
    if report.new_cases:
        lines.append(f"new cases (not gated): {len(report.new_cases)}")
        if verbose:
            for case in report.new_cases:
                lines.append(f"  + {case}")
    if verbose and report.deltas:
        lines.append("all gated deltas:")
        for delta in report.deltas:
            if delta.gated:
                lines.append(f"  {delta.describe()}")
    return "\n".join(lines)
