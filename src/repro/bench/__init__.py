"""repro.bench — the registered, machine-readable benchmark subsystem.

The pieces:

- :mod:`repro.bench.schema` — the versioned ``bench.json`` document format.
- :mod:`repro.bench.registry` — named suites with ``quick``/``full`` tiers.
- :mod:`repro.bench.suites` — the figure/table/ablation measurement loops
  (imported lazily; they self-register).
- :mod:`repro.bench.runner` — execute suites into a document.
- :mod:`repro.bench.compare` — the regression gate between two documents.
- :mod:`repro.bench.report` — text renderings (artifacts, summaries, CI logs).

Typical use::

    from repro.bench import run_suites, compare_documents, BenchDocument

    doc = run_suites(["shootout"], tier="quick")
    doc.save("bench.json")
    baseline = BenchDocument.load("benchmarks/results/bench.json")
    report = compare_documents(baseline, doc)
    assert report.ok, report.summary()

The CLI front-end is ``python -m repro bench`` (see :mod:`repro.cli`).
"""

from repro.bench.compare import (
    DEFAULT_TOLERANCES,
    CompareReport,
    MetricDelta,
    compare_documents,
)
from repro.bench.registry import Benchmark, get_suite, register, suite_names
from repro.bench.runner import (
    ParallelRunner,
    resolve_suites,
    run_suite,
    run_suites,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchDocument,
    CaseResult,
    SchemaError,
    SuiteRun,
    strip_volatile,
    validate_document,
)

__all__ = [
    "SCHEMA_VERSION",
    "BenchDocument",
    "Benchmark",
    "CaseResult",
    "CompareReport",
    "DEFAULT_TOLERANCES",
    "MetricDelta",
    "ParallelRunner",
    "SchemaError",
    "SuiteRun",
    "compare_documents",
    "get_suite",
    "register",
    "resolve_suites",
    "run_suite",
    "run_suites",
    "strip_volatile",
    "suite_names",
    "validate_document",
]
